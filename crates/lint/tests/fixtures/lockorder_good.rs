// Known-good fixture for the lock-order pass: the same shapes as the
// bad fixture, written the way the canonical order demands. Zero
// findings expected.

/// Copy-out discipline: release `check` before taking `core`.
fn check_released_before_core(shared: &Shared) -> u64 {
    let copied = {
        let state = shared.check.lock();
        state.snapshots.len() as u64
    };
    let core = shared.core.lock();
    copied + core.seq
}

/// Rank-increasing nesting is fine: core -> regions -> mem_lock.
fn descending_the_order(shared: &Shared, region: &Region) {
    let _core = shared.core.lock();
    let _regions = shared.regions.read();
    let _mem = region.mem_lock.write();
}

/// A plain `if` condition's temporary guard drops at the `{`, so the
/// `core` acquisition inside the block is NOT nested under `check`.
fn plain_if_drops_guard(shared: &Shared) {
    if shared.check.lock().snapshots.is_empty() {
        let _core = shared.core.lock();
    }
}

/// An explicit `drop` ends the guard early.
fn explicit_drop(shared: &Shared) {
    let state = shared.check.lock();
    let n = state.snapshots.len();
    drop(state);
    let _core = shared.core.lock();
    consume(n);
}

/// Code inside `spawn(...)` runs on another thread: not "held across".
fn spawn_is_not_holding(shared: &Shared) {
    let _pv = shared.check.lock();
    std::thread::spawn(move || {
        let _core = shared.core.lock();
    });
}
