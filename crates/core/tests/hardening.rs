//! Hardening tests: wire-format stability, tuning-knob behaviour,
//! segment-table limits, and adversarial log images.

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, RvmError, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{Device, MemDevice};

fn world() -> (Arc<MemDevice>, MemResolver) {
    (Arc::new(MemDevice::with_len(2 << 20)), MemResolver::new())
}

fn boot(log: &Arc<MemDevice>, segs: &MemResolver) -> Rvm {
    Rvm::initialize(
        Options::new(log.clone())
            .resolver(segs.clone().into_resolver())
            .create_if_empty(),
    )
    .unwrap()
}

fn boot_tuned(log: &Arc<MemDevice>, segs: &MemResolver, tuning: Tuning) -> Rvm {
    Rvm::initialize(
        Options::new(log.clone())
            .resolver(segs.clone().into_resolver())
            .tuning(tuning)
            .create_if_empty(),
    )
    .unwrap()
}

/// The on-disk format must not drift: a fixed transaction must encode to
/// fixed bytes at fixed offsets. If this test fails, bump the format
/// version in the status block instead of silently breaking old logs.
#[test]
fn wire_format_golden_values() {
    use rvm::log::record::{encode_txn, RecordRange, HEADER_SIZE, LOG_BLOCK, TRAILER_SIZE};
    use rvm::segment::SegmentId;

    assert_eq!(HEADER_SIZE, 40);
    assert_eq!(TRAILER_SIZE, 24);
    assert_eq!(LOG_BLOCK, 512);

    let buf = encode_txn(
        7,
        42,
        &[RecordRange {
            seg: SegmentId::new(3),
            offset: 0x1122_3344,
            data: vec![0xAA, 0xBB],
        }],
    );
    assert_eq!(buf.len(), 512, "one small range fits one block");
    // Header magic "RVM1" little-endian.
    assert_eq!(&buf[0..4], &0x5256_4D31u32.to_le_bytes());
    assert_eq!(buf[4], 1, "kind = txn");
    assert_eq!(&buf[8..16], &7u64.to_le_bytes(), "seq");
    assert_eq!(&buf[16..24], &42u64.to_le_bytes(), "tid");
    assert_eq!(&buf[24..28], &1u32.to_le_bytes(), "num_ranges");
    // Range entry at 40: seg id, offset, len.
    assert_eq!(&buf[40..44], &3u32.to_le_bytes());
    assert_eq!(&buf[48..56], &0x1122_3344u64.to_le_bytes());
    assert_eq!(&buf[56..64], &2u64.to_le_bytes());
    // Data follows the table.
    assert_eq!(&buf[64..66], &[0xAA, 0xBB]);
    // Trailer magic "RVMT" + padded length at the block end.
    assert_eq!(&buf[488..492], &0x5256_4D54u32.to_le_bytes());
    assert_eq!(&buf[504..512], &512u64.to_le_bytes());
}

#[test]
fn status_area_layout_is_stable() {
    use rvm::log::status::{LOG_AREA_START, STATUS_A_OFFSET, STATUS_BLOCK_SIZE, STATUS_B_OFFSET};
    assert_eq!(STATUS_BLOCK_SIZE, 8192);
    assert_eq!(STATUS_A_OFFSET, 0);
    assert_eq!(STATUS_B_OFFSET, 8192);
    assert_eq!(LOG_AREA_START, 16384);
}

#[test]
fn spool_max_bytes_triggers_automatic_flush() {
    let (log, segs) = world();
    let rvm = boot_tuned(
        &log,
        &segs,
        Tuning {
            spool_max_bytes: 2_000,
            ..Tuning::default()
        },
    );
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    // Each no-flush commit spools ~600+ record bytes; the fourth must
    // push past 2000 and auto-flush.
    for i in 0..4u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, i * 600, &[1; 512]).unwrap();
        txn.commit(CommitMode::NoFlush).unwrap();
    }
    let q = rvm.query();
    assert!(q.stats.spool_flushes >= 1, "{:?}", q.stats);
    assert!(q.spool_bytes < 2_000);
}

#[test]
fn set_options_changes_behaviour_at_runtime() {
    let (log, segs) = world();
    let rvm = boot(&log, &segs);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();

    // Intra optimization on: duplicates coalesce.
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    let saved_before = rvm.stats().bytes_saved_intra;
    assert_eq!(saved_before, 100);

    // Turn it off: duplicates are logged verbatim.
    let mut tuning = rvm.options();
    tuning.intra_optimization = false;
    rvm.set_options(tuning);
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.set_range(&region, 0, 100).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(
        rvm.stats().bytes_saved_intra,
        saved_before,
        "no new savings"
    );
}

#[test]
fn many_segments_fill_and_overflow_the_table() {
    let (log, segs) = world();
    let rvm = boot(&log, &segs);
    // Names of ~40 bytes each consume ~56 bytes of table; the 8 KiB
    // status block holds ~140 such entries.
    let mut mapped = 0u32;
    let err = loop {
        let name = format!("segment-{mapped:04}-{}", "x".repeat(24));
        match rvm.map(&RegionDescriptor::new(&name, 0, PAGE_SIZE)) {
            Ok(_) => mapped += 1,
            Err(e) => break e,
        }
        assert!(mapped < 500, "table never filled");
    };
    assert!(matches!(err, RvmError::SegmentTableFull));
    assert!(mapped > 100, "plenty of segments fit first: {mapped}");

    // The instance keeps working on existing segments.
    let region = rvm
        .map(&RegionDescriptor::new(
            "segment-0000-xxxxxxxxxxxxxxxxxxxxxxxx",
            PAGE_SIZE,
            PAGE_SIZE,
        ))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1; 8]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
}

#[test]
fn garbage_log_device_is_rejected_without_create_flag() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    log.write_at(0, &[0xAB; 1024]).unwrap();
    let err = Rvm::initialize(Options::new(log)).expect_err("must fail");
    assert!(matches!(err, RvmError::BadLog(_)));
}

#[test]
fn truncated_log_device_is_rejected() {
    // Status claims a bigger area than the device holds (device shrank).
    let (log, segs) = world();
    {
        let rvm = boot(&log, &segs);
        rvm.terminate().unwrap();
    }
    log.set_len(64 * 1024).unwrap();
    let err = Rvm::initialize(
        Options::new(log)
            .resolver(segs.into_resolver())
            .create_if_empty(),
    )
    .expect_err("shrunken device must be rejected");
    assert!(matches!(err, RvmError::BadLog(_)), "{err}");
}

#[test]
fn adversarial_random_bytes_in_record_area_never_replay() {
    // Fill the record area with pseudo-random garbage: recovery must
    // find an empty log (seq/CRC checks), not crash or apply junk.
    let (log, segs) = world();
    {
        let rvm = boot(&log, &segs);
        rvm.terminate().unwrap();
    }
    let mut junk = vec![0u8; 256 * 1024];
    let mut x = 0x9E3779B97F4A7C15u64;
    for b in junk.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    log.write_at(16384, &junk).unwrap();
    let rvm = boot(&log, &segs);
    assert_eq!(rvm.recovery_report().records_replayed, 0);
}

#[test]
fn query_region_page_accounting() {
    let (log, segs) = world();
    let rvm = boot(&log, &segs);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();
    assert_eq!(region.num_pages(), 4);
    assert!(region.dirty_pages().is_empty());

    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, PAGE_SIZE + 10, &[1; 8]).unwrap();
    assert!(region.dirty_pages().is_empty(), "uncommitted isn't dirty");
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.dirty_pages(), vec![1]);

    rvm.truncate().unwrap();
    assert!(region.dirty_pages().is_empty(), "truncation cleaned it");
}

#[test]
fn zero_length_reads_are_fine_but_writes_are_rejected() {
    let (log, segs) = world();
    let rvm = boot(&log, &segs);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    // A zero-length declaration declares nothing and almost always means
    // a length computation went wrong: rejected eagerly, by name.
    assert!(matches!(
        region.write(&mut txn, 100, &[]),
        Err(RvmError::EmptyRange { offset: 100 })
    ));
    assert!(matches!(
        txn.set_range(&region, 100, 0),
        Err(RvmError::EmptyRange { offset: 100 })
    ));
    // The rejection is non-destructive: the transaction still works.
    region.write(&mut txn, 100, &[7; 4]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.read_vec(100, 0).unwrap(), Vec::<u8>::new());
    // Edge of the region is readable at zero length.
    assert_eq!(region.read_vec(PAGE_SIZE, 0).unwrap(), Vec::<u8>::new());
}

#[test]
fn transactions_spanning_the_whole_region_commit() {
    let (log, segs) = world();
    let rvm = Rvm::initialize(
        Options::new(Arc::new(MemDevice::with_len(8 << 20)))
            .resolver(segs.clone().into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm
        .map(&RegionDescriptor::new("big", 0, 256 * PAGE_SIZE))
        .unwrap();
    let blob: Vec<u8> = (0..region.len()).map(|i| (i % 253) as u8).collect();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &blob).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    rvm.truncate().unwrap();
    let seg = segs.get("big").unwrap();
    let mut buf = vec![0u8; 16];
    seg.read_at(255 * PAGE_SIZE, &mut buf).unwrap();
    assert_eq!(buf, blob[255 * PAGE_SIZE as usize..][..16].to_vec());
    drop(log);
}

#[test]
fn interleaved_transactions_commit_independently() {
    let (log, segs) = world();
    let rvm = boot(&log, &segs);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();

    let mut t1 = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let mut t2 = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut t1, 0, &[1; 16]).unwrap();
    region.write(&mut t2, 256, &[2; 16]).unwrap();
    assert_eq!(region.uncommitted_transactions(), 2);
    t1.commit(CommitMode::Flush).unwrap();
    assert_eq!(region.uncommitted_transactions(), 1);
    t2.abort().unwrap();
    assert_eq!(region.uncommitted_transactions(), 0);
    assert_eq!(region.read_vec(0, 4).unwrap(), vec![1; 4]);
    assert_eq!(region.read_vec(256, 4).unwrap(), vec![0; 4]);
}

#[test]
fn rvm_log_on_a_mirrored_device_survives_replica_failure() {
    // Figure 2's media-failure layer in action: the write-ahead log lives
    // on a two-way mirror; one replica dies mid-run; committed data stays
    // recoverable from the survivor.
    use rvm_storage::MirrorDevice;

    let replica_a = Arc::new(MemDevice::with_len(1 << 20));
    let replica_b = Arc::new(MemDevice::with_len(1 << 20));
    let mirror = Arc::new(
        MirrorDevice::new(vec![
            replica_a.clone() as Arc<dyn Device>,
            replica_b.clone() as Arc<dyn Device>,
        ])
        .unwrap(),
    );
    let segs = MemResolver::new();

    {
        let rvm = Rvm::initialize(
            Options::new(mirror.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 0, b"before failure").unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        // Media failure on replica A; RVM keeps running on B.
        mirror.fail_replica(0);
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, 64, b"after failure").unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        std::mem::forget(rvm); // crash on top of the media failure
    }

    // Reboot from the surviving replica alone.
    let rvm = Rvm::initialize(
        Options::new(replica_b as Arc<dyn Device>)
            .resolver(segs.into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    assert_eq!(rvm.recovery_report().records_replayed, 2);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.read_vec(0, 14).unwrap(), b"before failure");
    assert_eq!(region.read_vec(64, 13).unwrap(), b"after failure");
}
