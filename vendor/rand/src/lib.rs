//! Offline shim for `rand`, providing exactly the surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`]. Backed by xoshiro256**, seeded via
//! SplitMix64 — real pseudo-randomness, deterministic per seed, just not
//! the upstream stream. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (object-safe).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Back-compat alias: upstream `rand` exposed these methods on `Rng`.
pub use RngExt as Rng;

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small RNG is the standard one.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(1);
        let mut c = rngs::StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
