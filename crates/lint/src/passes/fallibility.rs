//! Pass 2 — device fallibility: no `Device`/WAL/status-block `Result`
//! may be silently discarded or unwrapped outside tests.
//!
//! PR 1 established the bounded-retry discipline: every device touchpoint
//! either retries with backoff or propagates, and commit-path failures
//! poison the instance rather than panic. This pass convicts the three
//! ways that discipline erodes:
//!
//! * `let _ = dev.sync()` — the error is constructed and thrown away;
//! * `dev.sync().ok();` (or a bare `dev.sync();` statement) — same, with
//!   less honesty;
//! * `dev.sync().unwrap()` / `.expect(...)` outside test code — a
//!   transient fault becomes a crash in a library that promises to
//!   tolerate transient faults.
//!
//! Calls are recognized by method/function name (no type information),
//! against the closed list of fallible storage entry points below.

use std::collections::HashSet;

use crate::findings::{Finding, IdSpace, Pass};
use crate::items::FileModel;
use crate::lexer::{Kind, Tok};
use crate::passes::paren_match;

/// Fallible storage entry points: the `Device` trait surface plus the
/// WAL / status-block / checksum-catalog operations layered directly on
/// it. Names are unambiguous in this workspace (no non-`Result` method
/// shares them).
pub const FALLIBLE: &[&str] = &[
    // Device trait.
    "read_at",
    "write_at",
    "sync",
    "set_len",
    "read_verified",
    // WAL.
    "force",
    "append_txn",
    "append_with_space",
    // Status block.
    "read_status",
    "write_status",
    // Checksum catalogs.
    "persist",
];

/// What happened to the `Result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sink {
    Handled,
    DiscardLetUnderscore,
    DiscardOk,
    DiscardBareStmt,
    Unwrap,
    Expect,
}

/// Walks the start of the call expression backwards from the call-name
/// ident: over `.`-chains, `::` paths, and call/index suffix groups.
fn expr_start(toks: &[Tok], name_idx: usize) -> usize {
    let mut j = name_idx;
    loop {
        if j < 2 {
            return j.min(name_idx);
        }
        let before = if toks[j - 1].is_punct('.') {
            j - 2
        } else if toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            if j < 3 {
                return j;
            }
            j - 3
        } else {
            return j;
        };
        let b = &toks[before];
        if b.kind == Kind::Ident {
            j = before;
        } else if b.is_punct(')') || b.is_punct(']') {
            // Back-match the group, then absorb a preceding name.
            let (open_c, close_c) = if b.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i32;
            let mut k = before;
            loop {
                if toks[k].is_punct(close_c) {
                    depth += 1;
                } else if toks[k].is_punct(open_c) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if k > 0 && toks[k - 1].kind == Kind::Ident {
                j = k - 1;
            } else {
                return k;
            }
        } else {
            return j;
        }
    }
}

/// Start token index of the statement containing `i` — the token after
/// the previous `;`, `{`, or `}` at the same nesting (approximated by a
/// backwards scan balancing parens).
fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return j;
        }
        j -= 1;
    }
    0
}

/// Classifies what the surrounding code does with the call's `Result`.
/// `cp` is the call's closing-paren token index.
fn classify(toks: &[Tok], name_idx: usize, mut cp: usize) -> Sink {
    // Follow harmless suffix combinators to the real sink.
    loop {
        let next = toks.get(cp + 1);
        let next2 = toks.get(cp + 2);
        match (next, next2) {
            (Some(n), Some(n2)) if n.is_punct('.') && n2.kind == Kind::Ident => {
                match n2.text.as_str() {
                    "unwrap" => return Sink::Unwrap,
                    "expect" => return Sink::Expect,
                    "ok" => {
                        // `.ok()` then `;` discards; `.ok()` feeding
                        // anything else is a conversion.
                        let after = paren_match(toks, cp + 3);
                        if toks.get(after + 1).is_some_and(|t| t.is_punct(';')) {
                            return Sink::DiscardOk;
                        }
                        cp = after;
                    }
                    // Combinators that keep or transform the error:
                    // follow the chain.
                    "map_err" | "map" | "and_then" | "or_else" | "inspect_err" | "err"
                    | "is_ok" | "is_err" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default"
                    | "ok_or" | "ok_or_else" | "context" | "and" | "or" => match toks.get(cp + 3) {
                        Some(t) if t.is_punct('(') => cp = paren_match(toks, cp + 3),
                        _ => return Sink::Handled,
                    },
                    _ => return Sink::Handled,
                }
            }
            (Some(n), _) if n.is_punct('?') => return Sink::Handled,
            (Some(n), _) if n.is_punct(';') => {
                // Statement-terminal: inspect the statement head.
                let ss = stmt_start(toks, name_idx);
                let st = &toks[ss];
                if st.is_ident("let") {
                    let mut j = ss + 1;
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_ident("_")) {
                        return Sink::DiscardLetUnderscore;
                    }
                    return Sink::Handled; // bound; #[must_use] travels with it
                }
                // A bare `dev.sync();` statement: the expression must
                // *be* the statement (start where the expr starts).
                if expr_start(toks, name_idx) == ss {
                    return Sink::DiscardBareStmt;
                }
                return Sink::Handled;
            }
            _ => return Sink::Handled,
        }
    }
}

/// Runs the pass over `files`.
pub fn run(files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut ids = IdSpace::default();
    for fm in files {
        let toks = &fm.lexed.toks;
        for f in fm.fns.iter().filter(|f| !f.is_test) {
            let Some((open, close)) = f.body else {
                continue;
            };
            let mut seen: HashSet<usize> = HashSet::new();
            for i in open + 1..close {
                let t = &toks[i];
                if t.kind != Kind::Ident
                    || !FALLIBLE.contains(&t.text.as_str())
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                // Skip definitions (`fn read_at(...)`) and struct paths.
                if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('#')) {
                    continue;
                }
                if !seen.insert(i) {
                    continue;
                }
                let cp = paren_match(toks, i + 1);
                let sink = classify(toks, i, cp);
                let (detail, msg) = match sink {
                    Sink::Handled => continue,
                    Sink::DiscardLetUnderscore => (
                        format!("{}|let-underscore", t.text),
                        format!(
                            "`let _ =` discards the Result of fallible `{}()` — propagate, retry \
                             via RetryPolicy, or record why the error is unrecoverable",
                            t.text
                        ),
                    ),
                    Sink::DiscardOk => (
                        format!("{}|ok-discard", t.text),
                        format!(
                            "`.ok()` discards the Result of fallible `{}()` with no reader — \
                             propagate or handle the error",
                            t.text
                        ),
                    ),
                    Sink::DiscardBareStmt => (
                        format!("{}|bare-stmt", t.text),
                        format!(
                            "Result of fallible `{}()` dropped at statement position — propagate \
                             or handle the error",
                            t.text
                        ),
                    ),
                    Sink::Unwrap => (
                        format!("{}|unwrap", t.text),
                        format!(
                            "`.unwrap()` on fallible `{}()` outside tests — a transient device \
                             fault becomes a panic; use bounded retry or propagate",
                            t.text
                        ),
                    ),
                    Sink::Expect => (
                        format!("{}|expect", t.text),
                        format!(
                            "`.expect()` on fallible `{}()` outside tests — a transient device \
                             fault becomes a panic; use bounded retry or propagate",
                            t.text
                        ),
                    ),
                };
                if fm.lexed.allowed(Pass::DeviceFallibility.slug(), t.line) {
                    continue;
                }
                findings.push(Finding {
                    id: ids.id(Pass::DeviceFallibility, &fm.path, &f.qual, &detail),
                    pass: Pass::DeviceFallibility,
                    file: fm.path.clone(),
                    line: t.line,
                    function: f.qual.clone(),
                    message: msg,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    fn run_on(src: &str) -> Vec<Finding> {
        let m = FileModel::build("t.rs", src, false);
        run(&[&m])
    }

    #[test]
    fn convicts_discards_and_unwraps() {
        let f = run_on(
            "fn a(d: &D) { let _ = d.sync(); }\n\
             fn b(d: &D) { d.sync().ok(); }\n\
             fn c(d: &D) { d.write_at(0, b).unwrap(); }\n\
             fn e(d: &D) { d.force(); }",
        );
        assert_eq!(f.len(), 4, "{f:#?}");
    }

    #[test]
    fn passes_handled_results_and_tests() {
        let f = run_on(
            "fn a(d: &D) -> R { d.sync()?; Ok(()) }\n\
             fn b(d: &D) -> R { let r = d.sync(); r }\n\
             fn c(d: &D) { if d.sync().is_err() { x(); } }\n\
             fn g(d: &D) { retry(|| d.sync()).map_err(log_it); }\n\
             #[cfg(test)] mod t { fn u(d: &D) { d.sync().unwrap(); } }",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn inline_allow_suppresses() {
        let f = run_on(
            "fn a(d: &D) {\n    // lint:allow(device-fallibility): crash-sim rollback\n    let _ = d.write_at(0, b);\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }
}
