//! Crash-state model checking, end to end (`rvm-crashmc`).
//!
//! These tests run real RVM workloads against traced in-memory devices,
//! enumerate every crash image the sector-granular disk model permits,
//! recover each image with the real recovery path, and assert the
//! committed-prefix invariant. They also prove the checker has teeth:
//! a seeded mutation that skips the group-commit log force must be
//! convicted as a durability violation.

use proptest::prelude::*;
use rvm::MutationHooks;
use rvm_crashmc::enumerate::{enumerate_images, EnumConfig};
use rvm_crashmc::oracle::{check_recovery_determinism, parts_from_images};
use rvm_crashmc::workload::{run_workload, Workload};
use rvm_crashmc::{check_trace, check_trace_with_rot, Report};

fn checked(label: &str, workload: Workload) -> Report {
    let trace = run_workload(workload, MutationHooks::default());
    let report = check_trace(&trace, &EnumConfig::default());
    assert!(report.is_clean(), "{label}:\n{}", report.render());
    report
}

/// Tentpole acceptance: the group-commit workload must be checked
/// *exhaustively* and span more than 1000 distinct crash states, with
/// zero violations. Group formation depends on thread timing, so a
/// poorly batched run (every commit forced solo) is retried — but a
/// violation on any attempt is an immediate failure.
#[test]
fn group_commit_state_space_is_exhaustive_and_clean() {
    let mut last = None;
    for _ in 0..4 {
        let report = checked("group commit", Workload::GroupCommit);
        if report.exhaustive && report.images_unique > 1000 {
            return;
        }
        last = Some(report);
    }
    let report = last.unwrap();
    panic!(
        "group commit never batched well enough for a large exhaustive \
         state space:\n{}",
        report.render()
    );
}

/// Pipelined log writer: buffer B's records are submitted while buffer
/// A's force is in flight, so the enumerated crash images include every
/// state between A's completion and B's submission. Recovery must stop
/// at the committed prefix in all of them. Like group formation, batch
/// overlap depends on thread timing, so a run whose state space stayed
/// small is retried — but a violation on any attempt fails immediately.
#[test]
fn pipelined_commits_survive_every_crash_image() {
    // The staging buffer coalesces a whole batch into one contiguous log
    // write, so at the default 512-byte sector a crash point offers few
    // torn-write pieces. Enumerate at finer granularity to keep the
    // per-point image space large while staying exhaustive.
    let cfg = EnumConfig {
        sector: 128,
        max_pieces_per_write: 8,
        ..EnumConfig::default()
    };
    let mut last = None;
    for _ in 0..4 {
        let trace = run_workload(Workload::Pipeline, MutationHooks::default());
        let report = check_trace(&trace, &cfg);
        assert!(report.is_clean(), "pipeline:\n{}", report.render());
        if report.exhaustive && report.images_unique > 1000 {
            return;
        }
        last = Some(report);
    }
    let report = last.unwrap();
    panic!(
        "pipelined commits never batched well enough for a large \
         exhaustive state space:\n{}",
        report.render()
    );
}

#[test]
fn truncation_epochs_survive_every_crash_image() {
    let report = checked("truncation", Workload::Truncation);
    assert!(report.exhaustive, "{}", report.render());
    assert!(report.images_unique > 100, "{}", report.render());
}

#[test]
fn no_flush_spool_crashes_lose_only_unacked_work() {
    let report = checked("no-flush spool", Workload::NoFlushSpool);
    assert!(report.exhaustive, "{}", report.render());
}

#[test]
fn aborted_transactions_never_surface_in_any_crash_image() {
    let report = checked("abort mix", Workload::AbortMix);
    assert!(report.exhaustive, "{}", report.render());
}

/// The checker must have teeth: skipping the group-commit log force
/// (a seeded mutation in the real commit path) acknowledges
/// transactions whose records were never forced, and some crash image
/// must expose that as a durability violation.
#[test]
fn model_checker_catches_a_skipped_group_force() {
    let hooks = MutationHooks {
        skip_group_force: true,
        ..MutationHooks::default()
    };
    let trace = run_workload(Workload::GroupCommit, hooks);
    let report = check_trace(&trace, &EnumConfig::default());
    assert!(
        !report.is_clean(),
        "skip_group_force mutation went undetected:\n{}",
        report.render()
    );
    let detail = &report.violations[0].detail;
    assert!(
        detail.contains("acknowledged") && detail.contains("lost"),
        "unexpected violation shape: {detail}"
    );
}

/// Media-failure satellite: the bit-rot workload never truncates, so
/// every committed byte stays covered by the live log span. The checker
/// flips one byte of committed segment data — plus one byte of each
/// checksum-catalog sidecar — in every enumerated crash image; recovery
/// must heal the rot (committed-prefix oracle), and afterwards the
/// persisted catalog must match the recovered bytes, so recovery and
/// scrub converge on the same image.
#[test]
fn recovery_and_scrub_converge_on_bit_rotted_crash_images() {
    let trace = run_workload(Workload::BitRot, MutationHooks::default());
    let report = check_trace_with_rot(&trace, &EnumConfig::default());
    assert!(report.exhaustive, "{}", report.render());
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.images_unique > 10, "{}", report.render());
}

/// Satellite: recovery determinism. Recovering the same crash image
/// twice yields byte-identical segments and log, and a recovery that
/// itself crashes partway (then recovers again) converges to the same
/// state. Checked over real crash images produced by the enumerator.
#[test]
fn recovery_is_deterministic_across_repeated_and_interrupted_runs() {
    let trace = run_workload(Workload::Truncation, MutationHooks::default());
    let cfg = EnumConfig::default();
    let mut picked = Vec::new();
    let mut count = 0u64;
    enumerate_images(&trace, &cfg, |point, _, _, images| {
        if count.is_multiple_of(31) && picked.len() < 8 {
            picked.push((point, images.to_vec()));
        }
        count += 1;
        true
    });
    assert!(picked.len() >= 4, "expected several crash images to test");
    for (point, images) in &picked {
        let parts = parts_from_images(&trace, images);
        check_recovery_determinism(&parts, &[1, 4, 9])
            .unwrap_or_else(|e| panic!("crash image at op {point}: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Randomized workloads (mixed flush/no-flush commits, aborts,
    /// explicit flushes, truncations) stay crash-consistent under a
    /// slightly reduced per-point enumeration budget.
    #[test]
    fn seeded_workloads_have_no_crash_consistency_violations(seed in 1u64..200) {
        let trace = run_workload(Workload::Seeded(seed), MutationHooks::default());
        let cfg = EnumConfig {
            exhaustive_piece_cap: 8,
            samples_per_point: 16,
            ..EnumConfig::default()
        };
        let report = check_trace(&trace, &cfg);
        prop_assert!(report.is_clean(), "seed {seed}:\n{}", report.render());
    }
}
