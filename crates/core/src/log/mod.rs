//! Write-ahead log: record format, status block, and the circular writer
//! with forward and backward scanning (§5.1).

pub mod record;
pub mod status;
pub mod wal;
