/*
 * rvm.h — C interface to rvm-rs, a Rust implementation of
 * "Lightweight Recoverable Virtual Memory" (SOSP '93).
 *
 * Link against the `rvm_capi` cdylib/staticlib produced by
 * `cargo build -p rvm-capi --release`.
 */
#ifndef RVM_RS_H
#define RVM_RS_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct RvmHandle rvm_t;
typedef struct RegionHandle rvm_region_t;
typedef struct TidHandle rvm_tid_t;

typedef enum {
    RVM_SUCCESS = 0,
    RVM_EINVALID = 1,
    RVM_ELOG = 2,
    RVM_EMAPPING = 3,
    RVM_ERANGE = 4,
    RVM_ENOT_MAPPED = 5,
    RVM_EBUSY = 6,
    RVM_ETID_ENDED = 7,
    RVM_ENO_RESTORE = 8,
    RVM_ELOG_FULL = 9,
    RVM_ETXNS_OUTSTANDING = 10,
    RVM_EIO = 11,
    RVM_ETERMINATED = 12,
    RVM_EPANIC = 13,
    RVM_EPOISONED = 14,      /* instance poisoned by unrecoverable I/O */
    RVM_EIO_TRANSIENT = 15,  /* transient fault exhausted its retries */
} rvm_return_t;

#define RVM_RESTORE 0     /* begin_transaction restore_mode values */
#define RVM_NO_RESTORE 1
#define RVM_FLUSH 0       /* end_transaction commit_mode values */
#define RVM_NO_FLUSH 1

typedef struct {
    uint64_t active_transactions;
    uint64_t spooled_transactions;
    uint64_t log_used;
    uint64_t log_capacity;
    uint64_t txns_committed;
    uint64_t bytes_logged;
} rvm_query_t;

rvm_return_t rvm_create_log(const char *log_path, uint64_t len);
rvm_return_t rvm_initialize(const char *log_path, int create, rvm_t **out);
rvm_return_t rvm_map(rvm_t *h, const char *segment, uint64_t offset,
                     uint64_t len, rvm_region_t **out);
rvm_return_t rvm_unmap(rvm_t *h, rvm_region_t *region);
void rvm_free_region(rvm_region_t *region);
uint8_t *rvm_region_base(rvm_region_t *region);
uint64_t rvm_region_len(rvm_region_t *region);
rvm_return_t rvm_begin_transaction(rvm_t *h, int restore_mode, rvm_tid_t **out);
rvm_return_t rvm_set_range(rvm_tid_t *tid, rvm_region_t *region,
                           uint64_t offset, uint64_t len);
rvm_return_t rvm_set_range_ptr(rvm_tid_t *tid, rvm_region_t *region,
                               const uint8_t *addr, uint64_t len);
rvm_return_t rvm_end_transaction(rvm_tid_t *tid, int commit_mode);
rvm_return_t rvm_abort_transaction(rvm_tid_t *tid);
void rvm_free_tid(rvm_tid_t *tid);
rvm_return_t rvm_flush(rvm_t *h);
rvm_return_t rvm_truncate(rvm_t *h);
rvm_return_t rvm_query(rvm_t *h, rvm_query_t *out);
rvm_return_t rvm_terminate(rvm_t *h);
const char *rvm_strerror(rvm_return_t code);

#ifdef __cplusplus
}
#endif

#endif /* RVM_RS_H */
