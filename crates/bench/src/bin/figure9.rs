//! Regenerates **Figure 9** (amortized CPU cost per transaction, §7.2):
//! the scalability metric — total CPU usage divided by transactions,
//! including sporadic activities (truncation, fault service) — for RVM
//! and Camelot across the sweep.
//!
//! Usage: `figure9 [--quick] [--txns N] [--csv]`

use rvm_bench::report::{ascii_plot, Series};
use rvm_bench::tpca_run::{run_cell, SweepConfig, SystemKind};
use tpca::{rmem_pmem_percent, table1_account_sizes, AccessPattern};

fn main() {
    let mut cfg = SweepConfig {
        trials: 1,
        ..SweepConfig::default()
    };
    let mut sizes = table1_account_sizes();
    let mut csv_only = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg.txns_per_trial = 8_000;
                sizes = sizes.into_iter().step_by(3).collect();
            }
            "--txns" => {
                i += 1;
                cfg.txns_per_trial = args[i].parse().expect("--txns N");
            }
            "--csv" => csv_only = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let combos = [
        (SystemKind::Rvm, AccessPattern::Sequential),
        (SystemKind::Rvm, AccessPattern::Random),
        (SystemKind::Rvm, AccessPattern::Localized),
        (SystemKind::Camelot, AccessPattern::Sequential),
        (SystemKind::Camelot, AccessPattern::Random),
        (SystemKind::Camelot, AccessPattern::Localized),
    ];
    let mut data: Vec<Vec<(f64, f64)>> = vec![Vec::new(); combos.len()];
    println!("system,pattern,accounts,rmem_pmem_pct,cpu_ms_per_txn");
    for &accounts in &sizes {
        let pct = rmem_pmem_percent(accounts);
        for (ci, &(kind, pattern)) in combos.iter().enumerate() {
            let cell = run_cell(kind, accounts, pattern, &cfg);
            data[ci].push((pct, cell.mean_cpu()));
            println!(
                "{},{},{accounts},{pct:.1},{:.3}",
                kind.name(),
                pattern.name(),
                cell.mean_cpu()
            );
        }
    }
    if csv_only {
        return;
    }

    println!();
    let plot_a = ascii_plot(
        "Figure 9(a): Worst and Best Cases (CPU ms per transaction)",
        "Rmem/Pmem (percent)",
        "amortized CPU milliseconds per transaction",
        &[
            Series {
                label: "RVM Sequential",
                marker: 'R',
                points: data[0].clone(),
            },
            Series {
                label: "RVM Random",
                marker: 'r',
                points: data[1].clone(),
            },
            Series {
                label: "Camelot Sequential",
                marker: 'C',
                points: data[3].clone(),
            },
            Series {
                label: "Camelot Random",
                marker: 'c',
                points: data[4].clone(),
            },
        ],
        70,
        24,
    );
    println!("{plot_a}");
    let plot_b = ascii_plot(
        "Figure 9(b): Average Case (localized access, CPU ms per transaction)",
        "Rmem/Pmem (percent)",
        "amortized CPU milliseconds per transaction",
        &[
            Series {
                label: "RVM Localized",
                marker: 'R',
                points: data[2].clone(),
            },
            Series {
                label: "Camelot Localized",
                marker: 'C',
                points: data[5].clone(),
            },
        ],
        70,
        24,
    );
    println!("{plot_b}");
}
