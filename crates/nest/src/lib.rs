//! Nested transactions layered on RVM (§8).
//!
//! "Nested transactions could be implemented using RVM as a substrate for
//! bookkeeping state such as the undo logs of nested transactions. Only
//! top-level begin, commit, and abort operations would be visible to RVM.
//! Recovery would be simple, since the restoration of committed state
//! would be handled entirely by RVM."
//!
//! That is exactly the structure here: a [`NestedTxn`] wraps one RVM
//! top-level [`rvm::Transaction`]. Child transactions are *volatile*
//! frames holding their own undo records; a child abort restores its
//! frame's old values in memory (the enclosing levels continue), while a
//! child commit merges its undo into the parent so a later parent abort
//! still undoes it. Crash atomicity needs nothing new: until the
//! top-level commit, RVM has logged nothing.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use rvm::segment::MemResolver;
//! use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
//! use rvm_nest::NestedTxn;
//! use rvm_storage::MemDevice;
//!
//! let rvm = Rvm::initialize(
//!     Options::new(Arc::new(MemDevice::with_len(1 << 20)))
//!         .resolver(MemResolver::new().into_resolver())
//!         .create_if_empty(),
//! )
//! .unwrap();
//! let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
//!
//! let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
//! txn.write(&region, 0, b"outer").unwrap();
//! txn.enter(); // child
//! txn.write(&region, 16, b"inner").unwrap();
//! txn.abort_child().unwrap(); // only the child's effects vanish
//! txn.commit(CommitMode::Flush).unwrap();
//! assert_eq!(region.read_vec(0, 5).unwrap(), b"outer");
//! assert_eq!(region.read_vec(16, 5).unwrap(), vec![0; 5]);
//! ```

use rvm::{CommitMode, Region, Result, Rvm, RvmError, Transaction, TxnMode};

/// A volatile undo record of one child-level write.
struct UndoRecord {
    region: Region,
    offset: u64,
    old: Vec<u8>,
}

/// One nesting level's bookkeeping.
#[derive(Default)]
struct Frame {
    undo: Vec<UndoRecord>,
}

/// A transaction tree flattened onto one RVM top-level transaction.
///
/// Depth 1 is the top level; [`NestedTxn::enter`] pushes children.
/// Consuming operations ([`NestedTxn::commit`], [`NestedTxn::abort`]) are
/// only valid at depth 1.
pub struct NestedTxn {
    inner: Option<Transaction>,
    frames: Vec<Frame>,
}

impl NestedTxn {
    /// Begins a top-level transaction.
    pub fn begin(rvm: &Rvm, mode: TxnMode) -> Result<NestedTxn> {
        Ok(NestedTxn {
            inner: Some(rvm.begin_transaction(mode)?),
            frames: vec![Frame::default()],
        })
    }

    /// Current nesting depth (1 = top level).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Begins a child transaction.
    pub fn enter(&mut self) {
        self.frames.push(Frame::default());
    }

    /// Transactionally writes `data` at `offset` of `region` within the
    /// innermost open level.
    pub fn write(&mut self, region: &Region, offset: u64, data: &[u8]) -> Result<()> {
        // Volatile undo for child-level rollback; RVM keeps its own undo
        // for the top level.
        let old = region.read_vec(offset, data.len() as u64)?;
        let txn = self.inner.as_mut().expect("active");
        region.write(txn, offset, data)?;
        self.frames
            .last_mut()
            .expect("at least the top frame")
            .undo
            .push(UndoRecord {
                region: region.clone(),
                offset,
                old,
            });
        Ok(())
    }

    /// Declares a range in the innermost level and modifies it in place.
    pub fn modify<R>(
        &mut self,
        region: &Region,
        offset: u64,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let old = region.read_vec(offset, len)?;
        let txn = self.inner.as_mut().expect("active");
        let out = region.modify(txn, offset, len, f)?;
        self.frames
            .last_mut()
            .expect("top frame")
            .undo
            .push(UndoRecord {
                region: region.clone(),
                offset,
                old,
            });
        Ok(out)
    }

    /// Commits the innermost child: its effects are adopted by the parent
    /// (and undone if the parent later aborts).
    ///
    /// # Errors
    ///
    /// [`RvmError::TransactionEnded`] at top level — commit the top level
    /// with [`NestedTxn::commit`] instead.
    pub fn commit_child(&mut self) -> Result<()> {
        if self.frames.len() == 1 {
            return Err(RvmError::TransactionEnded);
        }
        let child = self.frames.pop().expect("checked depth");
        self.frames
            .last_mut()
            .expect("parent frame")
            .undo
            .extend(child.undo);
        Ok(())
    }

    /// Aborts the innermost child, restoring its old values in memory.
    ///
    /// # Errors
    ///
    /// [`RvmError::TransactionEnded`] at top level — abort the top level
    /// with [`NestedTxn::abort`] instead.
    pub fn abort_child(&mut self) -> Result<()> {
        if self.frames.len() == 1 {
            return Err(RvmError::TransactionEnded);
        }
        let child = self.frames.pop().expect("checked depth");
        let txn = self.inner.as_mut().expect("active");
        for record in child.undo.into_iter().rev() {
            // Restoring is itself a (re-)declared write, so the range
            // stays covered in the top-level RVM transaction.
            record.region.write(txn, record.offset, &record.old)?;
        }
        Ok(())
    }

    /// Commits the whole tree: the only commit RVM sees (§8).
    ///
    /// # Errors
    ///
    /// [`RvmError::TransactionsOutstanding`] if children are still open.
    pub fn commit(mut self, mode: CommitMode) -> Result<()> {
        if self.frames.len() != 1 {
            return Err(RvmError::TransactionsOutstanding(
                self.frames.len() as u64 - 1,
            ));
        }
        self.inner.take().expect("active").commit(mode)
    }

    /// Aborts the whole tree; RVM restores every level's changes.
    ///
    /// # Errors
    ///
    /// Propagates [`RvmError::CannotAbortNoRestore`] for no-restore
    /// top-level transactions.
    pub fn abort(mut self) -> Result<()> {
        self.inner.take().expect("active").abort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{Options, RegionDescriptor, PAGE_SIZE};
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn world() -> (Rvm, Region) {
        let rvm = Rvm::initialize(
            Options::new(Arc::new(MemDevice::with_len(1 << 20)))
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        (rvm, region)
    }

    #[test]
    fn child_commit_is_adopted_by_parent_commit() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        txn.write(&region, 0, &[1; 8]).unwrap();
        txn.enter();
        txn.write(&region, 8, &[2; 8]).unwrap();
        txn.commit_child().unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        assert_eq!(region.read_vec(0, 8).unwrap(), vec![1; 8]);
        assert_eq!(region.read_vec(8, 8).unwrap(), vec![2; 8]);
    }

    #[test]
    fn child_abort_undoes_only_the_child() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        txn.write(&region, 0, &[1; 8]).unwrap();
        txn.enter();
        txn.write(&region, 0, &[9; 4]).unwrap(); // overwrites parent data
        txn.write(&region, 100, &[9; 4]).unwrap();
        txn.abort_child().unwrap();
        // The parent's value is back, the child's new range is zeroed.
        assert_eq!(region.read_vec(0, 8).unwrap(), vec![1; 8]);
        assert_eq!(region.read_vec(100, 4).unwrap(), vec![0; 4]);
        txn.commit(CommitMode::Flush).unwrap();
        assert_eq!(region.read_vec(0, 8).unwrap(), vec![1; 8]);
    }

    #[test]
    fn parent_abort_undoes_committed_children() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        txn.enter();
        txn.write(&region, 0, &[5; 16]).unwrap();
        txn.commit_child().unwrap();
        txn.abort().unwrap();
        assert_eq!(region.read_vec(0, 16).unwrap(), vec![0; 16]);
    }

    #[test]
    fn deep_nesting_with_mixed_outcomes() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        txn.write(&region, 0, b"L1").unwrap();
        txn.enter();
        txn.write(&region, 8, b"L2").unwrap();
        txn.enter();
        txn.write(&region, 16, b"L3").unwrap();
        assert_eq!(txn.depth(), 3);
        txn.abort_child().unwrap(); // L3 gone
        txn.enter();
        txn.write(&region, 24, b"L4").unwrap();
        txn.commit_child().unwrap(); // L4 adopted by L2
        txn.commit_child().unwrap(); // L2 (with L4) adopted by L1
        txn.commit(CommitMode::Flush).unwrap();
        assert_eq!(region.read_vec(0, 2).unwrap(), b"L1");
        assert_eq!(region.read_vec(8, 2).unwrap(), b"L2");
        assert_eq!(region.read_vec(16, 2).unwrap(), vec![0; 2]);
        assert_eq!(region.read_vec(24, 2).unwrap(), b"L4");
    }

    #[test]
    fn top_level_guards() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        assert!(txn.commit_child().is_err(), "no child to commit");
        assert!(txn.abort_child().is_err(), "no child to abort");
        txn.enter();
        txn.write(&region, 0, &[1]).unwrap();
        let err = txn.commit(CommitMode::Flush);
        assert!(matches!(err, Err(RvmError::TransactionsOutstanding(1))));
    }

    #[test]
    fn modify_in_child_rolls_back() {
        let (rvm, region) = world();
        let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
        txn.write(&region, 0, &[10; 4]).unwrap();
        txn.enter();
        txn.modify(&region, 0, 4, |bytes| {
            bytes.iter_mut().for_each(|b| *b += 1)
        })
        .unwrap();
        assert_eq!(region.read_vec(0, 4).unwrap(), vec![11; 4]);
        txn.abort_child().unwrap();
        assert_eq!(region.read_vec(0, 4).unwrap(), vec![10; 4]);
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn crash_before_top_commit_loses_everything_cleanly() {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let segs = MemResolver::new();
        {
            let rvm = Rvm::initialize(
                Options::new(log.clone())
                    .resolver(segs.clone().into_resolver())
                    .create_if_empty(),
            )
            .unwrap();
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
                .unwrap();
            let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
            txn.write(&region, 0, &[1; 8]).unwrap();
            txn.enter();
            txn.write(&region, 8, &[2; 8]).unwrap();
            txn.commit_child().unwrap();
            drop(txn); // crash path: nothing reached the log
            std::mem::forget(rvm);
        }
        let rvm = Rvm::initialize(
            Options::new(log)
                .resolver(segs.into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        assert_eq!(rvm.recovery_report().records_replayed, 0);
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        assert_eq!(region.read_vec(0, 16).unwrap(), vec![0; 16]);
    }
}
