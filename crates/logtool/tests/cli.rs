//! End-to-end test of the `rvmlog` binary against a real log file.

use std::process::Command;
use std::sync::Arc;

use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_storage::FileDevice;

fn rvmlog() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmlog"))
}

fn build_log(dir: &std::path::Path) -> std::path::PathBuf {
    let log_path = dir.join("app.rvmlog");
    let seg_path = dir.join("objects.seg");
    let log = Arc::new(FileDevice::open_or_create(&log_path, 1 << 20).unwrap());
    let rvm = Rvm::initialize(Options::new(log).create_if_empty()).unwrap();
    let region = rvm
        .map(&RegionDescriptor::new(
            seg_path.to_str().unwrap(),
            0,
            PAGE_SIZE,
        ))
        .unwrap();
    for i in 0..3u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.put_u64(&mut txn, 128, i + 1).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    std::mem::forget(rvm); // keep the log un-truncated
    log_path
}

#[test]
fn summary_records_and_history_subcommands() {
    let dir = std::env::temp_dir().join(format!("rvmlog-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = build_log(&dir);
    let seg_name = dir.join("objects.seg");

    let out = rvmlog().arg(&log_path).arg("summary").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 live record(s)"), "{text}");
    assert!(text.contains("objects.seg"), "{text}");

    let out = rvmlog().arg(&log_path).arg("records").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("seq ").count(), 3, "{text}");

    let out = rvmlog()
        .arg(&log_path)
        .arg("records")
        .arg("--backward")
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = rvmlog()
        .arg(&log_path)
        .arg("history")
        .arg(seg_name.to_str().unwrap())
        .arg("128")
        .arg("8")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("[128..136)"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn doctor_subcommand_reports_damage() {
    let dir = std::env::temp_dir().join(format!("rvmlog-doctor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = build_log(&dir);

    // A healthy log: exit 0, no damage reported.
    let out = rvmlog().arg(&log_path).arg("doctor").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no damage found"), "{text}");
    assert!(text.contains("3 live record(s)"), "{text}");

    // Corrupt the second record's payload (the record area starts at
    // 16384; record 0 occupies the first block).
    let before = std::fs::read(&log_path).unwrap();
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap();
        f.seek(SeekFrom::Start(16384 + 512 + 48)).unwrap();
        f.write_all(&[0xEE; 8]).unwrap();
    }
    let out = rvmlog().arg(&log_path).arg("doctor").output().unwrap();
    assert!(!out.status.success(), "damage must exit non-zero: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DAMAGE"), "{text}");
    assert!(text.contains("torn record"), "{text}");

    // Doctor never mutates the image.
    let after = std::fs::read(&log_path).unwrap();
    let mut expected = before;
    expected[16384 + 512 + 48..16384 + 512 + 56].copy_from_slice(&[0xEE; 8]);
    assert_eq!(after, expected, "doctor is read-only");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_subcommand_convicts_what_doctor_acquits() {
    let dir = std::env::temp_dir().join(format!("rvmlog-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = build_log(&dir);

    // A healthy log: exit 0, every invariant holds.
    let out = rvmlog().arg(&log_path).arg("verify").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all invariants hold"), "{text}");

    // Poke the unchecksummed padding of the first record: its body is
    // 40 (header) + 24 (range entry) + 8 (data) = 72 bytes, its padded
    // extent one block, so byte 100 sits in the zero gap before the
    // trailer. Both CRCs still verify.
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap();
        f.seek(SeekFrom::Start(16384 + 100)).unwrap();
        f.write_all(&[0xBA]).unwrap();
    }
    let out = rvmlog().arg(&log_path).arg("doctor").output().unwrap();
    assert!(out.status.success(), "doctor is blind to this: {out:?}");
    let out = rvmlog().arg(&log_path).arg("verify").output().unwrap();
    assert!(!out.status.success(), "verify must exit non-zero: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VIOLATION"), "{text}");
    assert!(text.contains("reverse-displacement block"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashck_gen_then_crashck_round_trip() {
    let dir = std::env::temp_dir().join(format!("rvmlog-crashck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("spool.cmctrace");

    let out = rvmlog()
        .arg("crashck-gen")
        .arg(&trace_path)
        .arg("spool")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("transactions"), "{text}");

    let out = rvmlog().arg("crashck").arg(&trace_path).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violations:        0"), "{text}");
    assert!(text.contains("crash states:"), "{text}");

    // A corrupt trace file is rejected cleanly.
    std::fs::write(&trace_path, b"not a trace").unwrap();
    let out = rvmlog().arg("crashck").arg(&trace_path).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("cannot load trace"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Like [`build_log`] but the single commit covers segment page 0 end to
/// end, so the live log span can rebuild the whole page offline.
fn build_media_log(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    let log_path = dir.join("app.rvmlog");
    let seg_path = dir.join("objects.seg");
    let log = Arc::new(FileDevice::open_or_create(&log_path, 1 << 20).unwrap());
    let rvm = Rvm::initialize(Options::new(log).create_if_empty()).unwrap();
    let region = rvm
        .map(&RegionDescriptor::new(
            seg_path.to_str().unwrap(),
            0,
            2 * PAGE_SIZE,
        ))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region
        .write(&mut txn, 0, &vec![0x5A; PAGE_SIZE as usize])
        .unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    std::mem::forget(rvm); // keep the log un-truncated
    (log_path, seg_path)
}

#[test]
fn scrub_and_salvage_round_trip() {
    let dir = std::env::temp_dir().join(format!("rvmlog-scrub-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (log_path, seg_path) = build_media_log(&dir);

    // Healthy image: scrub verifies every covered page, exit 0.
    let out = rvmlog().arg(&log_path).arg("scrub").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all match"), "{text}");
    assert!(text.contains("0 mismatch(es)"), "{text}");

    // Doctor mentions how much of the segment checksums protect.
    let out = rvmlog().arg(&log_path).arg("doctor").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("checksum coverage:"), "{text}");
    assert!(text.contains("2/2 page(s)"), "{text}");

    // Rot a byte inside page 0, which the live log fully covers.
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .unwrap();
        f.seek(SeekFrom::Start(123)).unwrap();
        f.write_all(&[0xEE; 4]).unwrap();
    }
    let out = rvmlog().arg(&log_path).arg("scrub").output().unwrap();
    assert!(!out.status.success(), "rot must exit non-zero: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MISMATCH"), "{text}");

    // Salvage rebuilds the page from the log and exits 0...
    let out = rvmlog().arg(&log_path).arg("salvage").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rebuilt from the live log span"), "{text}");

    // ...after which scrub is clean again and the bytes are committed
    // data, not the rot.
    let out = rvmlog().arg(&log_path).arg("scrub").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let bytes = std::fs::read(&seg_path).unwrap();
    assert_eq!(&bytes[123..127], &[0x5A; 4]);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = rvmlog().output().unwrap();
    assert!(!out.status.success());
    let out = rvmlog()
        .arg("/nonexistent")
        .arg("summary")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("cannot open"), "{text}");
}
