//! Pass 3 — static unlogged-write triage: raw writes into mapped region
//! memory in functions that never declare a `set_range`.
//!
//! The paper's §6 war story — "mutation without set_range" — is caught
//! at commit time by `rvm-check`'s snapshot/diff detector (PR 2), but
//! only when the buggy path actually runs under a debug build. This pass
//! is the compile-time companion: in the API-consumer crates it flags
//! any function that
//!
//! 1. takes the raw view of region memory (`base_ptr()` /
//!    `from_raw_parts_mut`), **and**
//! 2. writes through it (`*p = ...`, `ptr::write`,
//!    `copy_nonoverlapping`, `copy_from_slice` on the raw view), **and**
//! 3. never declares any range in the same function (`set_range`,
//!    `set_range_ptr`, `modify`, `write`/`put_*` region helpers).
//!
//! The triage is intentionally function-local: a pointer smuggled across
//! a function boundary is invisible here and remains `rvm-check`'s job
//! at commit. Findings say so.

use crate::findings::{Finding, IdSpace, Pass};
use crate::items::FileModel;
use crate::lexer::{Kind, Tok};

/// Raw-view sources.
const RAW_SOURCES: &[&str] = &["base_ptr", "from_raw_parts_mut"];

/// Range-declaration markers (direct or via the logged write helpers).
const DECLARES: &[&str] = &[
    "set_range",
    "set_range_ptr",
    "modify",
    "put_u32",
    "put_u64",
    "write",
];

/// Raw-write markers that need no deref-assignment shape.
const RAW_WRITE_FNS: &[&str] = &[
    "copy_nonoverlapping",
    "write_volatile",
    "write_bytes",
    "copy_from_slice",
];

fn has_ident_call(toks: &[Tok], open: usize, close: usize, names: &[&str]) -> Option<u32> {
    has_call_where(toks, open, close, names, |_| true)
}

fn has_call_where(
    toks: &[Tok],
    open: usize,
    close: usize,
    names: &[&str],
    extra: impl Fn(usize) -> bool,
) -> Option<u32> {
    for i in open + 1..close {
        let t = &toks[i];
        if t.kind == Kind::Ident
            && names.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
            && extra(i)
        {
            return Some(t.line);
        }
    }
    None
}

/// Detects a deref assignment `*expr = ...` (not `==`, not `*=` which
/// has the `*` after an ident) or `ptr::write(...)`.
fn raw_write_line(toks: &[Tok], open: usize, close: usize) -> Option<u32> {
    if let Some(line) = has_ident_call(toks, open, close, RAW_WRITE_FNS) {
        return Some(line);
    }
    // `ptr::write(` — `write` is too common to match bare, so require
    // the `ptr::`/`std::ptr::` path prefix.
    for i in open + 3..close {
        let t = &toks[i];
        if t.kind == Kind::Ident
            && (t.text == "write" || t.text == "write_unaligned")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("ptr")
        {
            return Some(t.line);
        }
    }
    // Deref assignment: statement-ish `* <chain> = <...>` where the `=`
    // is not part of `==`/`<=`/`>=`/`!=` and the `*` is prefix (preceded
    // by a statement boundary, `=`, `;`, `{`, `(`, `,`, or `unsafe`).
    for i in open + 1..close {
        if !toks[i].is_punct('*') {
            continue;
        }
        let prefix_ok = i == 0
            || toks[i - 1].is_punct(';')
            || toks[i - 1].is_punct('{')
            || toks[i - 1].is_punct('}')
            || toks[i - 1].is_punct('(')
            || toks[i - 1].is_punct(',')
            || toks[i - 1].is_punct('=');
        if !prefix_ok {
            continue;
        }
        // Scan the deref target: idents, `.`, `::`, index/call groups.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && t.is_punct('=') {
                let is_cmp = toks.get(j + 1).is_some_and(|n| n.is_punct('='))
                    || toks[j - 1].is_punct('=')
                    || toks[j - 1].is_punct('!')
                    || toks[j - 1].is_punct('<')
                    || toks[j - 1].is_punct('>');
                if !is_cmp {
                    return Some(toks[i].line);
                }
                break;
            } else if depth == 0
                && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(','))
            {
                break;
            }
            j += 1;
        }
    }
    None
}

/// Runs the pass over the API-consumer files.
pub fn run(files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut ids = IdSpace::default();
    for fm in files {
        let toks = &fm.lexed.toks;
        for f in fm.fns.iter().filter(|f| !f.is_test) {
            let Some((open, close)) = f.body else {
                continue;
            };
            let Some(src_line) = has_ident_call(toks, open, close, RAW_SOURCES) else {
                continue;
            };
            let Some(write_line) = raw_write_line(toks, open, close) else {
                continue;
            };
            // `write` in DECLARES means the logged region helper
            // (`r.write(...)` / bare `write(...)`) — a path-qualified
            // `ptr::write(...)` is a *raw* write, not a declaration.
            let declares = has_call_where(toks, open, close, DECLARES, |i| {
                !(i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':'))
            });
            if declares.is_some() {
                continue;
            }
            if fm.lexed.allowed(Pass::UnloggedWrite.slug(), src_line)
                || fm.lexed.allowed(Pass::UnloggedWrite.slug(), write_line)
            {
                continue;
            }
            findings.push(Finding {
                id: ids.id(
                    Pass::UnloggedWrite,
                    &fm.path,
                    &f.qual,
                    "raw-write-no-set-range",
                ),
                pass: Pass::UnloggedWrite,
                file: fm.path.clone(),
                line: write_line,
                function: f.qual.clone(),
                message: format!(
                    "writes through raw region memory (base_ptr taken line {src_line}, raw \
                     write line {write_line}) but never declares a set_range in this function \
                     — the paper's §6 \"mutation without set_range\" bug; rvm-check would only \
                     catch this at commit time in a debug build"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    fn run_on(src: &str) -> Vec<Finding> {
        let m = FileModel::build("t.rs", src, false);
        run(&[&m])
    }

    #[test]
    fn convicts_raw_write_without_set_range() {
        let f = run_on("fn bad(r: &Region) { let p = r.base_ptr(); unsafe { *p.add(4) = 7; } }");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("set_range"));
    }

    #[test]
    fn passes_declared_and_safe_writers() {
        let f = run_on(
            "fn good(t: &mut T, r: &Region) { let p = r.base_ptr(); t.set_range_ptr(r, p, 8); unsafe { *p = 1; } }\n\
             fn also_good(t: &mut T, r: &Region) { r.put_u64(t, 0, 9); }\n\
             fn compare(r: &Region) -> bool { let p = r.base_ptr(); unsafe { *p == 3 } }",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn ptr_write_and_copy_nonoverlapping_convict() {
        let f = run_on(
            "fn b1(r: &Region) { let p = r.base_ptr(); unsafe { std::ptr::write(p, 0u8); } }\n\
             fn b2(r: &Region, s: &[u8]) { let p = r.base_ptr(); unsafe { std::ptr::copy_nonoverlapping(s.as_ptr(), p, s.len()); } }",
        );
        assert_eq!(f.len(), 2, "{f:#?}");
    }
}
