//! The Birrell et al. "simple database" (§9 related work).
//!
//! "Their design is even simpler than RVM's, and is based upon new-value
//! logging and full-database checkpointing. Each transaction is
//! constrained to update only a single data item. There is no support for
//! explicit transaction abort. Updates are recorded in a log file on
//! disk, then reflected in the in-memory database image. Periodically,
//! the entire memory image is checkpointed to disk, the log file deleted,
//! and the new checkpoint file renamed to be the current version of the
//! database. Log truncation occurs only during crash recovery, not during
//! normal operation."
//!
//! This crate implements that design over [`rvm_storage::Device`]s (a
//! checkpoint device with a dual-slot header standing in for the
//! atomic-rename, and a log device), so it can run over real files, the
//! in-memory devices, or the latency-modelled `simdisk` — making it a
//! workable comparator in ablation studies. Its limitations relative to
//! RVM are structural and visible in the API: single-item updates, no
//! abort, whole-database checkpoints.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rvm_storage::{Device, DeviceError};

/// Result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;

const LOG_MAGIC: u32 = 0x5344_4C47; // "SDLG"
const CKPT_MAGIC: u64 = 0x5344_4250_434B_5031; // "SDBPCKP1"
const HEADER_SLOT: u64 = 4096;

/// A key-value store with Birrell-style recovery.
///
/// Keys and values are small byte strings; every update is one
/// transaction, immediately forced to the log.
pub struct SimpleDb {
    ckpt_dev: Arc<dyn Device>,
    log_dev: Arc<dyn Device>,
    state: Mutex<DbState>,
    /// Checkpoint when the log exceeds this many bytes (the original
    /// checkpointed on a timer; a size trigger is deterministic).
    pub checkpoint_threshold: u64,
}

struct DbState {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    log_tail: u64,
    updates_since_ckpt: u64,
}

fn encode_pairs(map: &BTreeMap<Vec<u8>, Vec<u8>>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(map.len() as u64).to_le_bytes());
    for (k, v) in map {
        buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        buf.extend_from_slice(k);
        buf.extend_from_slice(v);
    }
    buf
}

fn decode_pairs(buf: &[u8], count: u64) -> Option<BTreeMap<Vec<u8>, Vec<u8>>> {
    let mut map = BTreeMap::new();
    let mut at = 0usize;
    for _ in 0..count {
        let klen = u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(buf.get(at + 4..at + 8)?.try_into().ok()?) as usize;
        let k = buf.get(at + 8..at + 8 + klen)?.to_vec();
        let v = buf.get(at + 8 + klen..at + 8 + klen + vlen)?.to_vec();
        map.insert(k, v);
        at += 8 + klen + vlen;
    }
    Some(map)
}

impl SimpleDb {
    /// Opens (recovering) or creates a database over the two devices.
    ///
    /// Recovery = load the checkpoint, then replay the log; replay stops
    /// at the first torn record. The log is then truncated — "log
    /// truncation occurs only during crash recovery".
    pub fn open(ckpt_dev: Arc<dyn Device>, log_dev: Arc<dyn Device>) -> Result<SimpleDb> {
        let map = Self::load_checkpoint(ckpt_dev.as_ref())?.unwrap_or_default();
        let db = SimpleDb {
            ckpt_dev,
            log_dev,
            state: Mutex::new(DbState {
                map,
                log_tail: 0,
                updates_since_ckpt: 0,
            }),
            checkpoint_threshold: 1 << 20,
        };
        db.replay_log()?;
        // Truncation at recovery: checkpoint and reset the log.
        db.checkpoint()?;
        Ok(db)
    }

    fn load_checkpoint(dev: &dyn Device) -> Result<Option<BTreeMap<Vec<u8>, Vec<u8>>>> {
        let mut header = [0u8; 28];
        if dev.len()? < HEADER_SLOT || dev.read_at(0, &mut header).is_err() {
            return Ok(None);
        }
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("slice"));
        if magic != CKPT_MAGIC {
            return Ok(None);
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("slice"));
        let bytes = u64::from_le_bytes(header[16..24].try_into().expect("slice"));
        let stored_crc = u32::from_le_bytes(header[24..28].try_into().expect("slice"));
        let mut buf = vec![0u8; bytes as usize];
        dev.read_at(HEADER_SLOT, &mut buf)?;
        if rvm::crc32(&buf) != stored_crc {
            return Ok(None);
        }
        Ok(decode_pairs(&buf, count))
    }

    fn replay_log(&self) -> Result<()> {
        let mut state = self.state.lock();
        let log_len = self.log_dev.len()?;
        let mut at = 0u64;
        loop {
            if at + 16 > log_len {
                break;
            }
            let mut header = [0u8; 16];
            self.log_dev.read_at(at, &mut header)?;
            let magic = u32::from_le_bytes(header[0..4].try_into().expect("slice"));
            if magic != LOG_MAGIC {
                break;
            }
            let klen = u32::from_le_bytes(header[4..8].try_into().expect("slice")) as u64;
            let vlen = u32::from_le_bytes(header[8..12].try_into().expect("slice")) as u64;
            let stored_crc = u32::from_le_bytes(header[12..16].try_into().expect("slice"));
            if at + 16 + klen + vlen > log_len {
                break;
            }
            let mut payload = vec![0u8; (klen + vlen) as usize];
            self.log_dev.read_at(at + 16, &mut payload)?;
            if rvm::crc32(&payload) != stored_crc {
                break; // torn record: end of valid log
            }
            let key = payload[..klen as usize].to_vec();
            let value = payload[klen as usize..].to_vec();
            state.map.insert(key, value);
            at += 16 + klen + vlen;
        }
        state.log_tail = at;
        Ok(())
    }

    /// Updates a single item — the only transaction shape supported.
    /// The record is forced to the log before the in-memory image
    /// changes; there is no abort.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut state = self.state.lock();
        let mut record = Vec::with_capacity(16 + key.len() + value.len());
        let mut payload = Vec::with_capacity(key.len() + value.len());
        payload.extend_from_slice(key);
        payload.extend_from_slice(value);
        record.extend_from_slice(&LOG_MAGIC.to_le_bytes());
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&(value.len() as u32).to_le_bytes());
        record.extend_from_slice(&rvm::crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        let needed = state.log_tail + record.len() as u64;
        if self.log_dev.len()? < needed {
            self.log_dev.set_len(needed.max(64 * 1024))?;
        }
        self.log_dev.write_at(state.log_tail, &record)?;
        self.log_dev.sync()?;
        state.log_tail += record.len() as u64;
        state.map.insert(key.to_vec(), value.to_vec());
        state.updates_since_ckpt += 1;

        if state.log_tail > self.checkpoint_threshold {
            drop(state);
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Reads a value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.state.lock().map.get(key).cloned()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Returns `true` if the database holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the entire image to the checkpoint device and resets the
    /// log — the full-database checkpoint that bounds this design to
    /// "applications which manage small amounts of recoverable data".
    pub fn checkpoint(&self) -> Result<()> {
        let mut state = self.state.lock();
        let body = encode_pairs(&state.map);
        // Body bytes land first...
        let needed = HEADER_SLOT + 8 + body.len() as u64;
        if self.ckpt_dev.len()? < needed {
            self.ckpt_dev.set_len(needed)?;
        }
        // encode_pairs places the count first; split it into the header.
        let count = state.map.len() as u64;
        let pairs = &body[8..];
        self.ckpt_dev.write_at(HEADER_SLOT, pairs)?;
        self.ckpt_dev.sync()?;
        // ...then the header commits the checkpoint (stand-in for the
        // original's rename).
        let mut header = Vec::with_capacity(28);
        header.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        header.extend_from_slice(&count.to_le_bytes());
        header.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
        header.extend_from_slice(&rvm::crc32(pairs).to_le_bytes());
        self.ckpt_dev.write_at(0, &header)?;
        self.ckpt_dev.sync()?;
        state.log_tail = 0;
        state.updates_since_ckpt = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    fn devices() -> (Arc<MemDevice>, Arc<MemDevice>) {
        (
            Arc::new(MemDevice::with_len(64 * 1024)),
            Arc::new(MemDevice::with_len(64 * 1024)),
        )
    }

    #[test]
    fn put_get_round_trip() {
        let (ckpt, log) = devices();
        let db = SimpleDb::open(ckpt, log).unwrap();
        db.put(b"k1", b"v1").unwrap();
        db.put(b"k2", b"v2").unwrap();
        db.put(b"k1", b"v1b").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), b"v1b");
        assert_eq!(db.get(b"k2").unwrap(), b"v2");
        assert!(db.get(b"k3").is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn recovery_replays_the_log() {
        let (ckpt, log) = devices();
        {
            let db = SimpleDb::open(ckpt.clone(), log.clone()).unwrap();
            db.put(b"a", b"1").unwrap();
            db.put(b"b", b"2").unwrap();
            // Crash without checkpoint.
        }
        let db = SimpleDb::open(ckpt, log).unwrap();
        assert_eq!(db.get(b"a").unwrap(), b"1");
        assert_eq!(db.get(b"b").unwrap(), b"2");
    }

    #[test]
    fn torn_log_record_is_dropped() {
        let (ckpt, log) = devices();
        {
            let db = SimpleDb::open(ckpt.clone(), log.clone()).unwrap();
            db.put(b"good", b"yes").unwrap();
            db.put(b"torn", b"maybe").unwrap();
        }
        // Corrupt the middle of the second record.
        log.write_at(30, &[0xFF; 4]).unwrap();
        let db = SimpleDb::open(ckpt, log).unwrap();
        assert_eq!(db.get(b"good").unwrap(), b"yes");
        assert!(db.get(b"torn").is_none());
    }

    #[test]
    fn checkpoint_then_more_updates_recover() {
        let (ckpt, log) = devices();
        {
            let db = SimpleDb::open(ckpt.clone(), log.clone()).unwrap();
            for i in 0..20u32 {
                db.put(format!("k{i}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            db.checkpoint().unwrap();
            db.put(b"post", b"ckpt").unwrap();
        }
        let db = SimpleDb::open(ckpt, log).unwrap();
        assert_eq!(db.len(), 21);
        assert_eq!(db.get(b"post").unwrap(), b"ckpt");
        assert_eq!(db.get(b"k19").unwrap(), 19u32.to_le_bytes());
    }

    #[test]
    fn size_triggered_checkpoint_resets_the_log() {
        let (ckpt, log) = devices();
        let mut db = SimpleDb::open(ckpt, log).unwrap();
        db.checkpoint_threshold = 256;
        for i in 0..50u32 {
            db.put(b"key", &i.to_le_bytes()).unwrap();
        }
        assert!(db.state.lock().log_tail < 256 + 64);
        assert_eq!(db.get(b"key").unwrap(), 49u32.to_le_bytes());
    }

    #[test]
    fn empty_database_opens_cleanly() {
        let (ckpt, log) = devices();
        let db = SimpleDb::open(ckpt, log).unwrap();
        assert!(db.is_empty());
    }
}
