//! On-disk log record format (paper Figure 5).
//!
//! One record holds one committed transaction: a header, a table of range
//! descriptors, the new-value data for every range, and a trailer. The
//! trailer carries the record's padded length — the paper's "reverse
//! displacement" — so the log can be read tail→head as well as head→tail.
//!
//! Records are padded to a multiple of [`LOG_BLOCK`] bytes so a record
//! never straddles the circular-area boundary awkwardly and so trailers sit
//! at predictable offsets. Integrity is guarded twice:
//!
//! * a header CRC lets a forward scan trust the record length before
//!   reading the payload;
//! * a whole-record CRC makes the record's mere presence its commit record:
//!   a torn force fails the CRC and the transaction never happened
//!   (no-undo/redo logging never needs to undo, §5.1.1).
//!
//! A record's sequence number must be exactly one greater than its
//! predecessor's; recovery stops at the first gap, which distinguishes the
//! live tail from stale records surviving from a previous lap of the
//! circular log.

use crate::crc::crc32;
use crate::segment::SegmentId;

/// Alignment quantum for records in the log area.
pub const LOG_BLOCK: u64 = 512;
/// Size of the fixed record header.
pub const HEADER_SIZE: u64 = 40;
/// Size of one range descriptor in the range table.
pub const RANGE_ENTRY_SIZE: u64 = 24;
/// Size of the fixed record trailer.
pub const TRAILER_SIZE: u64 = 24;
/// Smallest possible record (a pad record with empty payload).
pub const MIN_RECORD_SIZE: u64 = LOG_BLOCK;

const HEADER_MAGIC: u32 = 0x5256_4D31; // "RVM1"
const TRAILER_MAGIC: u32 = 0x5256_4D54; // "RVMT"

/// Discriminates record types in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed transaction's new-value records.
    Txn,
    /// Filler skipping unusable space at the end of a lap of the circular
    /// area.
    Pad,
}

impl RecordKind {
    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Txn => 1,
            RecordKind::Pad => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RecordKind::Txn),
            2 => Some(RecordKind::Pad),
            _ => None,
        }
    }
}

/// One modified range inside a transaction record: the new value of
/// `[offset, offset + data.len())` within segment `seg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRange {
    /// The segment the range belongs to.
    pub seg: SegmentId,
    /// Byte offset within the segment.
    pub offset: u64,
    /// New-value bytes.
    pub data: Vec<u8>,
}

/// A fully parsed transaction record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Transaction identifier (diagnostic only; uniqueness per session).
    pub tid: u64,
    /// Record sequence number in the log.
    pub seq: u64,
    /// Modified ranges with their new values.
    pub ranges: Vec<RecordRange>,
}

/// Header fields trusted after [`parse_header`] validates magic + CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderInfo {
    /// Record type.
    pub kind: RecordKind,
    /// Sequence number.
    pub seq: u64,
    /// Transaction id.
    pub tid: u64,
    /// Number of range descriptors.
    pub num_ranges: u32,
    /// Bytes of range table + data following the header.
    pub payload_len: u32,
}

impl HeaderInfo {
    /// Total bytes the record occupies in the log, padding included.
    pub fn padded_len(&self) -> u64 {
        padded_len(self.payload_len as u64)
    }
}

/// Trailer fields trusted after [`parse_trailer`] validates the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailerInfo {
    /// CRC over header + payload, cross-checked against the full record.
    pub record_crc: u32,
    /// Sequence number (repeated from the header).
    pub seq: u64,
    /// Total padded length of the record, for backward scans.
    pub padded_len: u64,
}

/// Rounds a payload length up to the record's total padded size.
pub fn padded_len(payload_len: u64) -> u64 {
    let raw = HEADER_SIZE + payload_len + TRAILER_SIZE;
    raw.div_ceil(LOG_BLOCK) * LOG_BLOCK
}

/// Padded size of a transaction record over ranges of the given data
/// lengths (used for space accounting before serialization).
pub fn txn_record_size(range_data_lens: impl Iterator<Item = u64>) -> u64 {
    let mut payload = 0u64;
    for len in range_data_lens {
        payload += RANGE_ENTRY_SIZE + len;
    }
    padded_len(payload)
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("slice length checked"))
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("slice length checked"))
}

fn encode(
    kind: RecordKind,
    seq: u64,
    tid: u64,
    ranges: &[RecordRange],
    payload_len: u64,
) -> Vec<u8> {
    let total = padded_len(payload_len) as usize;
    let mut buf = vec![0u8; total];

    // Header.
    put_u32(&mut buf, 0, HEADER_MAGIC);
    buf[4] = kind.to_u8();
    put_u64(&mut buf, 8, seq);
    put_u64(&mut buf, 16, tid);
    put_u32(&mut buf, 24, ranges.len() as u32);
    put_u32(&mut buf, 28, payload_len as u32);
    let header_crc = crc32(&buf[..32]);
    put_u32(&mut buf, 32, header_crc);

    // Range table, then data.
    let mut entry_at = HEADER_SIZE as usize;
    let mut data_at = HEADER_SIZE as usize + ranges.len() * RANGE_ENTRY_SIZE as usize;
    for range in ranges {
        put_u32(&mut buf, entry_at, range.seg.as_u32());
        put_u64(&mut buf, entry_at + 8, range.offset);
        put_u64(&mut buf, entry_at + 16, range.data.len() as u64);
        entry_at += RANGE_ENTRY_SIZE as usize;
        buf[data_at..data_at + range.data.len()].copy_from_slice(&range.data);
        data_at += range.data.len();
    }

    // Trailer at the very end of the padded extent.
    let record_crc = crc32(&buf[..HEADER_SIZE as usize + payload_len as usize]);
    let t = total - TRAILER_SIZE as usize;
    put_u32(&mut buf, t, TRAILER_MAGIC);
    put_u32(&mut buf, t + 4, record_crc);
    put_u64(&mut buf, t + 8, seq);
    put_u64(&mut buf, t + 16, total as u64);
    buf
}

/// Serializes a committed transaction as one padded record.
pub fn encode_txn(seq: u64, tid: u64, ranges: &[RecordRange]) -> Vec<u8> {
    let payload: u64 = ranges
        .iter()
        .map(|r| RANGE_ENTRY_SIZE + r.data.len() as u64)
        .sum();
    encode(RecordKind::Txn, seq, tid, ranges, payload)
}

/// Serializes a pad record of exactly `total_len` bytes (which must be a
/// multiple of [`LOG_BLOCK`] and at least [`MIN_RECORD_SIZE`]).
///
/// # Panics
///
/// Panics if `total_len` is not a valid pad size.
pub fn encode_pad(seq: u64, total_len: u64) -> Vec<u8> {
    assert!(
        total_len >= MIN_RECORD_SIZE && total_len.is_multiple_of(LOG_BLOCK),
        "invalid pad length {total_len}"
    );
    let payload = total_len - HEADER_SIZE - TRAILER_SIZE;
    encode(RecordKind::Pad, seq, 0, &[], payload)
}

/// Parses and validates a record header; `buf` must hold at least
/// [`HEADER_SIZE`] bytes. Returns `None` on any inconsistency.
pub fn parse_header(buf: &[u8]) -> Option<HeaderInfo> {
    if buf.len() < HEADER_SIZE as usize {
        return None;
    }
    if get_u32(buf, 0) != HEADER_MAGIC {
        return None;
    }
    if crc32(&buf[..32]) != get_u32(buf, 32) {
        return None;
    }
    let kind = RecordKind::from_u8(buf[4])?;
    Some(HeaderInfo {
        kind,
        seq: get_u64(buf, 8),
        tid: get_u64(buf, 16),
        num_ranges: get_u32(buf, 24),
        payload_len: get_u32(buf, 28),
    })
}

/// Parses and validates a record trailer; `buf` must hold exactly the last
/// [`TRAILER_SIZE`] bytes of a record. Returns `None` on any inconsistency.
pub fn parse_trailer(buf: &[u8]) -> Option<TrailerInfo> {
    if buf.len() < TRAILER_SIZE as usize {
        return None;
    }
    if get_u32(buf, 0) != TRAILER_MAGIC {
        return None;
    }
    let padded = get_u64(buf, 16);
    if padded == 0 || !padded.is_multiple_of(LOG_BLOCK) {
        return None;
    }
    Some(TrailerInfo {
        record_crc: get_u32(buf, 4),
        seq: get_u64(buf, 8),
        padded_len: padded,
    })
}

/// Fully validates a padded record image and, for transaction records,
/// decodes it. Returns `None` if any check fails; `Some((header, None))`
/// for a valid pad record.
pub fn parse_record(buf: &[u8]) -> Option<(HeaderInfo, Option<TxnRecord>)> {
    let header = parse_header(buf)?;
    let padded = header.padded_len();
    if buf.len() != padded as usize {
        return None;
    }
    let trailer = parse_trailer(&buf[buf.len() - TRAILER_SIZE as usize..])?;
    if trailer.padded_len != padded || trailer.seq != header.seq {
        return None;
    }
    let body_len = (HEADER_SIZE + header.payload_len as u64) as usize;
    if body_len + TRAILER_SIZE as usize > buf.len() {
        return None;
    }
    if crc32(&buf[..body_len]) != trailer.record_crc {
        return None;
    }
    if header.kind == RecordKind::Pad {
        return Some((header, None));
    }

    // Decode the range table.
    let table_len = header.num_ranges as u64 * RANGE_ENTRY_SIZE;
    if HEADER_SIZE + table_len > body_len as u64 {
        return None;
    }
    let mut ranges = Vec::with_capacity(header.num_ranges as usize);
    let mut entry_at = HEADER_SIZE as usize;
    let mut data_at = (HEADER_SIZE + table_len) as usize;
    for _ in 0..header.num_ranges {
        let seg = SegmentId::new(get_u32(buf, entry_at));
        let offset = get_u64(buf, entry_at + 8);
        let len = get_u64(buf, entry_at + 16) as usize;
        if data_at + len > body_len {
            return None;
        }
        ranges.push(RecordRange {
            seg,
            offset,
            data: buf[data_at..data_at + len].to_vec(),
        });
        entry_at += RANGE_ENTRY_SIZE as usize;
        data_at += len;
    }
    if data_at != body_len {
        return None;
    }
    Some((
        header,
        Some(TxnRecord {
            tid: header.tid,
            seq: header.seq,
            ranges,
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ranges() -> Vec<RecordRange> {
        vec![
            RecordRange {
                seg: SegmentId::new(1),
                offset: 4096,
                data: vec![0xAA; 100],
            },
            RecordRange {
                seg: SegmentId::new(2),
                offset: 0,
                data: vec![0x55; 7],
            },
        ]
    }

    #[test]
    fn txn_record_round_trips() {
        let ranges = sample_ranges();
        let buf = encode_txn(42, 7, &ranges);
        assert_eq!(buf.len() as u64 % LOG_BLOCK, 0);
        let (header, decoded) = parse_record(&buf).expect("record must parse");
        assert_eq!(header.kind, RecordKind::Txn);
        assert_eq!(header.seq, 42);
        assert_eq!(header.tid, 7);
        let decoded = decoded.expect("txn record decodes");
        assert_eq!(decoded.ranges, ranges);
        assert_eq!(decoded.seq, 42);
        assert_eq!(decoded.tid, 7);
    }

    #[test]
    fn empty_txn_record_round_trips() {
        let buf = encode_txn(1, 1, &[]);
        let (header, decoded) = parse_record(&buf).unwrap();
        assert_eq!(header.num_ranges, 0);
        assert!(decoded.unwrap().ranges.is_empty());
    }

    #[test]
    fn pad_record_round_trips() {
        for len in [MIN_RECORD_SIZE, 3 * LOG_BLOCK] {
            let buf = encode_pad(9, len);
            assert_eq!(buf.len() as u64, len);
            let (header, decoded) = parse_record(&buf).unwrap();
            assert_eq!(header.kind, RecordKind::Pad);
            assert_eq!(header.seq, 9);
            assert!(decoded.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "invalid pad length")]
    fn unaligned_pad_panics() {
        let _ = encode_pad(1, LOG_BLOCK + 1);
    }

    #[test]
    fn size_accounting_matches_encoding() {
        let ranges = sample_ranges();
        let predicted = txn_record_size(ranges.iter().map(|r| r.data.len() as u64));
        assert_eq!(predicted, encode_txn(1, 1, &ranges).len() as u64);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let buf = encode_txn(3, 3, &sample_ranges());
        // Flip each byte of the live portion and verify rejection. Bytes in
        // the padding gap are not covered by a CRC, so skip them.
        let body_len = {
            let h = parse_header(&buf).unwrap();
            (HEADER_SIZE + h.payload_len as u64) as usize
        };
        for i in (0..body_len).chain(buf.len() - TRAILER_SIZE as usize..buf.len()) {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x01;
            assert!(
                parse_record(&corrupt).is_none(),
                "corruption at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn truncated_record_is_rejected() {
        let buf = encode_txn(3, 3, &sample_ranges());
        for cut in [1, HEADER_SIZE as usize, buf.len() - 1] {
            assert!(parse_record(&buf[..cut]).is_none());
        }
    }

    #[test]
    fn header_parse_rejects_bad_magic_and_kind() {
        let mut buf = encode_txn(1, 1, &[]);
        let good = parse_header(&buf);
        assert!(good.is_some());
        buf[0] ^= 0xFF;
        assert!(parse_header(&buf).is_none());
        buf[0] ^= 0xFF;
        // An unknown kind byte invalidates the header CRC, so re-forge it.
        buf[4] = 99;
        let crc = crate::crc::crc32(&buf[..32]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        assert!(parse_header(&buf).is_none(), "unknown kind rejected");
    }

    #[test]
    fn trailer_parse_validates_alignment() {
        let buf = encode_txn(5, 5, &sample_ranges());
        let t = &buf[buf.len() - TRAILER_SIZE as usize..];
        let info = parse_trailer(t).unwrap();
        assert_eq!(info.seq, 5);
        assert_eq!(info.padded_len, buf.len() as u64);
        let mut bad = t.to_vec();
        bad[16] = 1; // unaligned padded_len
        assert!(parse_trailer(&bad).is_none());
    }

    #[test]
    fn zeroed_block_parses_as_nothing() {
        let zeros = vec![0u8; LOG_BLOCK as usize];
        assert!(parse_header(&zeros).is_none());
        assert!(parse_trailer(&zeros[..TRAILER_SIZE as usize]).is_none());
    }
}
