//! Item structure extraction: functions, impl blocks, test scopes.
//!
//! A single pass over the token stream recovers just enough structure to
//! attribute any token index to its enclosing function, decide whether
//! that function is test-only, and know its `impl` type and visibility.
//! Braces are matched with a scope stack; attributes are skipped as
//! opaque `#[...]` spans (noting `test` markers); everything else is
//! treated as expression soup.

use crate::lexer::{Kind, Lexed, Tok};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// `Type::name` when inside an `impl` block, else the bare name.
    pub qual: String,
    /// Unrestricted `pub` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` scope (or a test-only file).
    pub is_test: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token indices of the body `{` and its matching `}`, if any.
    pub body: Option<(usize, usize)>,
}

/// A lexed file plus its extracted functions.
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
}

impl FileModel {
    /// Builds the model. `file_is_test` marks every function as test
    /// scope (integration-test files, fixtures marked clean, ...).
    pub fn build(path: &str, src: &str, file_is_test: bool) -> FileModel {
        let lexed = crate::lexer::lex(src);
        let fns = extract_fns(&lexed.toks, file_is_test);
        FileModel {
            path: path.to_string(),
            lexed,
            fns,
        }
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o < i && i < c))
            .min_by_key(|f| {
                let (o, c) = f.body.unwrap();
                c - o
            })
    }
}

#[derive(Debug)]
struct Scope {
    /// Index into the `fns` vec when this brace is a function body.
    fn_slot: Option<usize>,
    /// Everything inside is test code.
    test: bool,
    /// Enclosing `impl` type name, inherited by plain blocks.
    impl_type: Option<String>,
}

/// True if an attribute token span marks test code: contains `test`
/// without `not` (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, loom))]`;
/// but not `#[cfg(not(test))]`).
fn attr_is_test(toks: &[Tok]) -> bool {
    let has = |s: &str| toks.iter().any(|t| t.is_ident(s));
    has("test") && !has("not")
}

/// Finds the matching `]` for an attribute starting at the `[` index.
fn skip_attr(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len() - 1
}

/// Extracts the `impl` type name from the tokens of an impl header
/// (everything between `impl` and the body `{`).
fn impl_type_name(header: &[Tok]) -> Option<String> {
    // `impl Trait for Type {` -> path after `for`; `impl Type {` -> the
    // path after the (optional) generic parameter list.
    let start = header
        .iter()
        .position(|t| t.is_ident("for"))
        .map(|i| i + 1)
        .unwrap_or_else(|| {
            // Skip a leading `<...>` generics list.
            if header.first().is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i32;
                for (i, t) in header.iter().enumerate() {
                    if t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
            }
            0
        });
    // Take the last path-segment ident before generics open.
    let mut name = None;
    for t in &header[start.min(header.len())..] {
        if t.kind == Kind::Ident {
            name = Some(t.text.clone());
        } else if t.is_punct('<') || t.is_punct('(') {
            break;
        }
    }
    name
}

/// Visibility scan: walks backwards over the item head (`pub`, `unsafe`,
/// `const`, `async`, `extern "C"`, ...) preceding `fn`.
fn fn_is_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    let mut saw_pub_at = None;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        let head_word = t.kind == Kind::Ident
            && matches!(
                t.text.as_str(),
                "pub"
                    | "unsafe"
                    | "const"
                    | "async"
                    | "extern"
                    | "crate"
                    | "super"
                    | "in"
                    | "self"
                    | "default"
            );
        let head_punct = t.is_punct('(') || t.is_punct(')') || t.is_punct(':');
        if t.is_ident("pub") {
            saw_pub_at = Some(j);
        } else if !(head_word || head_punct || t.kind == Kind::Literal) {
            break;
        }
    }
    match saw_pub_at {
        Some(i) => !toks.get(i + 1).is_some_and(|t| t.is_punct('(')),
        None => false,
    }
}

fn extract_fns(toks: &[Tok], file_is_test: bool) -> Vec<FnItem> {
    let mut fns: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    // Test marker from attributes, applying to the next item header.
    let mut pending_test = false;
    // Set when an `impl` header is being scanned; the value becomes the
    // scope's impl type at its `{`.
    let mut pending_impl: Option<Option<String>> = None;
    let mut impl_header_start = 0usize;
    // Set when a `mod` keyword was seen; its `{` starts a (maybe test) mod.
    let mut pending_mod_test = false;
    let mut pending_mod = false;
    // Function slot waiting for its body `{`.
    let mut pending_fn: Option<usize> = None;

    let cur_test = |stack: &[Scope]| file_is_test || stack.iter().any(|s| s.test);
    let cur_impl = |stack: &[Scope]| stack.iter().rev().find_map(|s| s.impl_type.clone());

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') {
            // `#[attr]` or `#![attr]` — skip; note test markers.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                let end = skip_attr(toks, j);
                if attr_is_test(&toks[j..=end]) {
                    pending_test = true;
                }
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        match t.kind {
            Kind::Ident if t.text == "impl" && pending_fn.is_none() => {
                pending_impl = Some(None);
                impl_header_start = i + 1;
            }
            Kind::Ident if t.text == "mod" => {
                pending_mod = true;
                pending_mod_test = pending_test;
                pending_test = false;
            }
            Kind::Ident if t.text == "fn" => {
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == Kind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let is_test = cur_test(&stack) || pending_test;
                pending_test = false;
                let qual = match cur_impl(&stack) {
                    Some(ty) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                fns.push(FnItem {
                    is_pub: fn_is_pub(toks, i),
                    name,
                    qual,
                    is_test,
                    line: t.line,
                    fn_idx: i,
                    body: None,
                });
                // Scan the signature for the body `{` (or `;` for a
                // bodiless trait method). `->` arrows are consumed as a
                // unit so the `>` cannot unbalance angle tracking.
                let mut depth_paren = 0i32;
                let mut depth_angle = 0i32;
                let mut j = i + 1;
                let mut found = None;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.is_punct('-') && toks.get(j + 1).is_some_and(|n| n.is_punct('>')) {
                        j += 2;
                        continue;
                    }
                    if tj.is_punct('(') || tj.is_punct('[') {
                        depth_paren += 1;
                    } else if tj.is_punct(')') || tj.is_punct(']') {
                        depth_paren -= 1;
                    } else if tj.is_punct('<') {
                        depth_angle += 1;
                    } else if tj.is_punct('>') {
                        depth_angle = (depth_angle - 1).max(0);
                    } else if depth_paren == 0 && tj.is_punct(';') {
                        break; // bodiless
                    } else if depth_paren == 0 && depth_angle == 0 && tj.is_punct('{') {
                        found = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = found {
                    pending_fn = Some(fns.len() - 1);
                    // Fast-forward the main cursor to just before `{` so
                    // the generic `{` handling below pushes the scope.
                    i = open;
                    continue;
                }
            }
            Kind::Punct if t.text == "{" => {
                let test = cur_test(&stack) || pending_mod_test && pending_mod;
                let impl_type = if let Some(pi) = pending_impl.take() {
                    pi.or_else(|| impl_type_name(&toks[impl_header_start..i]))
                } else {
                    cur_impl(&stack)
                };
                let fn_slot = pending_fn.take();
                if let Some(slot) = fn_slot {
                    fns[slot].body = Some((i, usize::MAX));
                }
                if pending_mod {
                    pending_mod = false;
                    pending_mod_test = false;
                }
                stack.push(Scope {
                    fn_slot,
                    test,
                    impl_type,
                });
            }
            Kind::Punct if t.text == "}" => {
                if let Some(scope) = stack.pop() {
                    if let Some(slot) = scope.fn_slot {
                        if let Some((o, _)) = fns[slot].body {
                            fns[slot].body = Some((o, i));
                        }
                    }
                }
            }
            Kind::Punct if t.text == ";" => {
                // An item ended without a body; drop stale pendings.
                if stack.iter().all(|s| s.fn_slot.is_none()) {
                    pending_mod = false;
                    pending_mod_test = false;
                }
                pending_test = false;
                pending_impl = None;
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("x.rs", src, false)
    }

    #[test]
    fn finds_fns_with_impl_qualification() {
        let m = model(
            "impl Foo { pub fn a(&self) -> Result<(), E> { self.b() } fn b(&self) {} }\n\
             fn free() {}\n\
             impl<T: Clone> Bar<T> { fn c() {} }\n\
             impl fmt::Display for Baz { fn fmt(&self) {} }",
        );
        let quals: Vec<&str> = m.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["Foo::a", "Foo::b", "free", "Bar::c", "Baz::fmt"]);
        assert!(m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
    }

    #[test]
    fn cfg_test_scopes_and_test_attr() {
        let m = model(
            "fn live() {}\n\
             #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }\n\
             #[cfg(not(test))] fn also_live() {}\n\
             #[test] fn top_level_test() {}",
        );
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(!by_name("also_live").is_test);
        assert!(by_name("top_level_test").is_test);
    }

    #[test]
    fn enclosing_fn_resolves_innermost() {
        let m = model("fn outer() { fn inner() { mark(); } }");
        let mark = m
            .lexed
            .toks
            .iter()
            .position(|t| t.is_ident("mark"))
            .unwrap();
        assert_eq!(m.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn pub_crate_is_not_public() {
        let m = model("pub(crate) fn a() {} pub unsafe extern \"C\" fn b() {} const fn c() {}");
        assert!(!m.fns[0].is_pub);
        assert!(m.fns[1].is_pub);
        assert!(!m.fns[2].is_pub);
    }
}
