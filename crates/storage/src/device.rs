//! The [`Device`] trait.

use std::sync::Arc;

use crate::Result;

/// Outcome of a [`Device::read_verified`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedRead {
    /// The data read passed verification on the first attempt.
    Clean,
    /// Verified data was found, but only after at least one copy failed
    /// verification and was repaired (mirrored devices: read-repair of the
    /// losing replica).
    Repaired,
    /// No copy of the data passed verification; the buffer holds the
    /// best-effort (unverified) bytes. The caller escalates — e.g. to log
    /// reconstruction or quarantine.
    Corrupt,
}

impl VerifiedRead {
    /// `true` unless the read came back [`VerifiedRead::Corrupt`].
    pub fn is_verified(self) -> bool {
        !matches!(self, VerifiedRead::Corrupt)
    }
}

/// A byte-addressable, synchronizable storage device.
///
/// This is the paper's notion of "a Unix file or a raw disk partition"
/// (§3.3): positional reads and writes plus a synchronous flush whose return
/// is the *only* durability point. RVM's permanence guarantee rests entirely
/// on the contract of [`Device::sync`]:
///
/// * data from a `write_at` that completed *before* the last successful
///   `sync` must survive a crash;
/// * data written *after* the last `sync` may be lost, and a single write
///   may be torn (a prefix persists).
///
/// Implementations must be safe to share across threads; RVM serializes
/// conflicting accesses itself but may issue reads concurrently.
pub trait Device: Send + Sync {
    /// Returns the current length of the device in bytes.
    fn len(&self) -> Result<u64>;

    /// Returns `true` if the device has zero length.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads `buf.len()` bytes starting at `offset`, filling `buf` exactly.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes all of `data` starting at `offset`.
    ///
    /// Writes beyond the end of the device must fail with
    /// [`DeviceError::OutOfBounds`](crate::DeviceError::OutOfBounds);
    /// devices are sized explicitly with [`Device::set_len`].
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Forces all completed writes to stable storage.
    fn sync(&self) -> Result<()>;

    /// Resizes the device, zero-filling any extension.
    fn set_len(&self, len: u64) -> Result<()>;

    /// Reads `buf.len()` bytes at `offset` and checks them against
    /// `verify` (typically a checksum predicate supplied by the caller —
    /// the device itself holds no checksums).
    ///
    /// The default implementation is a plain read followed by the check.
    /// Devices holding redundant copies (see
    /// [`MirrorDevice`](crate::MirrorDevice)) override it to try each copy
    /// until one verifies, repairing the losers in place (read-repair).
    /// Wrappers should forward so the redundancy underneath stays visible.
    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> Result<VerifiedRead> {
        self.read_at(offset, buf)?;
        Ok(if verify(buf) {
            VerifiedRead::Clean
        } else {
            VerifiedRead::Corrupt
        })
    }

    /// Replica health as `(alive, total)` for devices with internal
    /// redundancy; `None` for plain devices. Wrappers forward.
    fn replica_health(&self) -> Option<(usize, usize)> {
        None
    }
}

/// A reference-counted trait object for any device.
pub type SharedDevice = Arc<dyn Device>;

impl<D: Device + ?Sized> Device for Arc<D> {
    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        (**self).write_at(offset, data)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        (**self).set_len(len)
    }

    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> Result<VerifiedRead> {
        (**self).read_verified(offset, buf, verify)
    }

    fn replica_health(&self) -> Option<(usize, usize)> {
        (**self).replica_health()
    }
}
