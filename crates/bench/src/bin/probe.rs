//! Internal calibration probe (not part of the published harness).
use rvm_bench::camelot_driver::CamelotTpca;
use rvm_bench::model::Machine;
use rvm_bench::rvm_driver::RvmTpca;
use rvm_bench::tpca_run::{run_trial, SweepConfig};
use tpca::{AccessPattern, TpcaLayout};

fn main() {
    let cfg = SweepConfig::default();
    let _ = Machine::default();
    for accounts in [32768u64, 262144, 425984] {
        let layout = TpcaLayout::new(accounts);
        let mut cam = CamelotTpca::new(&cfg.machine, cfg.camelot.clone(), accounts);
        let r = run_trial(&mut cam, layout, AccessPattern::Random, 8000, 1);
        let cs = cam.stats();
        let vs = cam.vm_stats();
        println!(
            "CAM {accounts}: tps={:.1} cpu={:.2}ms trunc={} pages_written={} faults={} writebacks={} evic={}",
            r.tps, r.cpu_ms_per_txn, cs.truncations, cs.pages_written, vs.faults, vs.writebacks, vs.evictions
        );
        let mut rv = RvmTpca::new(&cfg.machine, cfg.rvm_model.clone(), &cfg.log, accounts);
        let f0 = rv.vm_stats().faults;
        let r = run_trial(&mut rv, layout, AccessPattern::Random, 8000, 1);
        let st = rv.rvm_stats();
        let vs = rv.vm_stats();
        println!(
            "RVM {accounts}: tps={:.1} cpu={:.2}ms trunc={} ranges={} faults={} (pre-window {}) writebacks={} evic={}",
            r.tps, r.cpu_ms_per_txn, st.epoch_truncations, st.truncation_ranges_applied, vs.faults, f0, vs.writebacks, vs.evictions
        );
    }
}
