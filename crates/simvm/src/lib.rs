//! A simulated virtual-memory subsystem.
//!
//! The paper's central performance question (§7.1) is how badly RVM's
//! *lack* of integration with the VM subsystem hurts as recoverable memory
//! grows relative to physical memory. Answering it on modern hardware
//! requires a model of 1993 paging behaviour: a fixed pool of page frames,
//! LRU replacement, dirty-page writeback, and fault service charged to a
//! virtual clock.
//!
//! [`SimVm`] manages *spaces* — contiguous page ranges, each backed by a
//! device (a paging file for RVM's regions, the Disk-Manager backing store
//! for Camelot's). [`SimVm::touch`] is the heart: a hit costs almost
//! nothing; a miss evicts the least-recently-used unpinned frame (writing
//! it back through its backing device if dirty) and reads the wanted page
//! in. All device traffic flows through [`rvm_storage::Device`]
//! implementations — in the benchmarks, latency-modelled `simdisk` disks —
//! so paging costs land on the same virtual clock as everything else.
//!
//! Pinning (`pin`/`unpin`) models the Mach `pin`/`unpin` advisory calls
//! Camelot uses to keep dirty uncommitted pages resident (§3.2).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rvm_storage::Device;
use simclock::{Clock, SimTime};

/// Page size of the simulated machine.
pub const VM_PAGE_SIZE: u64 = 4096;

/// Identifies a space created with [`SimVm::add_space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpaceId(usize);

/// Tuning knobs of the VM model.
#[derive(Debug, Clone)]
pub struct VmParams {
    /// CPU cost of servicing one page fault (trap, page-table update,
    /// I/O setup). Charged on every miss in addition to device time.
    pub fault_service_cpu: SimTime,
    /// CPU cost of a translation on a resident page. Usually negligible.
    pub hit_cpu: SimTime,
    /// CPU cost of reclaiming a frame (pageout path). An in-kernel pager
    /// pays almost nothing; an external pager pays IPC round trips.
    pub evict_cpu: SimTime,
    /// Pageout clustering: the pager syncs its backing store once per
    /// this many dirty-page writebacks, amortizing the positioning cost.
    pub pageout_cluster: u32,
}

impl Default for VmParams {
    fn default() -> Self {
        Self {
            fault_service_cpu: SimTime::from_micros(500),
            hit_cpu: SimTime::ZERO,
            evict_cpu: SimTime::ZERO,
            pageout_cluster: 8,
        }
    }
}

/// Counters accumulated by the VM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Touches that found the page resident.
    pub hits: u64,
    /// Touches that missed.
    pub faults: u64,
    /// Frames reclaimed.
    pub evictions: u64,
    /// Dirty frames written back during eviction.
    pub writebacks: u64,
}

struct SpaceState {
    backing: Arc<dyn Device>,
    base_offset: u64,
    pages: u64,
}

#[derive(Debug, Clone, Copy)]
struct FrameState {
    dirty: bool,
    pinned: u32,
    stamp: u64,
}

type PageKey = (usize, u64);

/// The simulated VM subsystem: a frame pool shared by all spaces.
pub struct SimVm {
    clock: Clock,
    params: VmParams,
    total_frames: usize,
    spaces: Vec<SpaceState>,
    resident: HashMap<PageKey, FrameState>,
    lru: BTreeMap<u64, PageKey>,
    next_stamp: u64,
    pending_writebacks: u32,
    stats: VmStats,
}

impl SimVm {
    /// Creates a VM with `total_frames` page frames.
    pub fn new(clock: Clock, total_frames: usize, params: VmParams) -> Self {
        Self {
            clock,
            params,
            total_frames,
            spaces: Vec::new(),
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            pending_writebacks: 0,
            stats: VmStats::default(),
        }
    }

    /// Registers a space of `pages` pages backed by `backing` starting at
    /// `base_offset`. Pages start non-resident.
    pub fn add_space(&mut self, backing: Arc<dyn Device>, base_offset: u64, pages: u64) -> SpaceId {
        self.spaces.push(SpaceState {
            backing,
            base_offset,
            pages,
        });
        SpaceId(self.spaces.len() - 1)
    }

    /// Number of frames currently in use.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Returns `true` if the page is resident.
    pub fn is_resident(&self, space: SpaceId, page: u64) -> bool {
        self.resident.contains_key(&(space.0, page))
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Touches a page, faulting it in if needed. Returns `true` on a
    /// fault.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the space.
    pub fn touch(&mut self, space: SpaceId, page: u64, write: bool) -> bool {
        assert!(
            page < self.spaces[space.0].pages,
            "page {page} outside space of {} pages",
            self.spaces[space.0].pages
        );
        let key = (space.0, page);
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(frame) = self.resident.get_mut(&key) {
            let old = frame.stamp;
            frame.stamp = stamp;
            frame.dirty |= write;
            self.lru.remove(&old);
            self.lru.insert(stamp, key);
            self.stats.hits += 1;
            self.clock.charge_cpu(self.params.hit_cpu);
            return false;
        }

        // Fault: make room, then read the page in.
        self.stats.faults += 1;
        self.clock.charge_cpu(self.params.fault_service_cpu);
        while self.resident.len() >= self.total_frames {
            if !self.evict_one() {
                break; // everything pinned: overcommit rather than deadlock
            }
        }
        let sp = &self.spaces[space.0];
        let mut buf = vec![0u8; VM_PAGE_SIZE as usize];
        let _ = sp
            .backing
            .read_at(sp.base_offset + page * VM_PAGE_SIZE, &mut buf);
        self.resident.insert(
            key,
            FrameState {
                dirty: write,
                pinned: 0,
                stamp,
            },
        );
        self.lru.insert(stamp, key);
        true
    }

    fn evict_one(&mut self) -> bool {
        let victim = self
            .lru
            .iter()
            .map(|(_, &key)| key)
            .find(|key| self.resident[key].pinned == 0);
        let Some(key) = victim else {
            return false;
        };
        let frame = self.resident.remove(&key).expect("victim is resident");
        self.lru.remove(&frame.stamp);
        self.stats.evictions += 1;
        self.clock.charge_cpu(self.params.evict_cpu);
        if frame.dirty {
            self.stats.writebacks += 1;
            let sp = &self.spaces[key.0];
            let buf = vec![0u8; VM_PAGE_SIZE as usize];
            let _ = sp
                .backing
                .write_at(sp.base_offset + key.1 * VM_PAGE_SIZE, &buf);
            // Pageouts are clustered: the pager issues the positioning
            // cost once per batch.
            self.pending_writebacks += 1;
            if self.pending_writebacks >= self.params.pageout_cluster.max(1) {
                self.pending_writebacks = 0;
                let _ = sp.backing.sync();
            }
        }
        true
    }

    /// Pins a page (faulting it in first), preventing eviction.
    pub fn pin(&mut self, space: SpaceId, page: u64) {
        self.touch(space, page, false);
        if let Some(frame) = self.resident.get_mut(&(space.0, page)) {
            frame.pinned += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, space: SpaceId, page: u64) {
        if let Some(frame) = self.resident.get_mut(&(space.0, page)) {
            frame.pinned = frame.pinned.saturating_sub(1);
        }
    }

    /// Writes a resident dirty page to its backing store *without* a sync
    /// (the caller batches and syncs), clearing its dirty bit. Used by the
    /// Camelot Disk Manager's truncation, which writes "all dirty pages
    /// referenced by entries in the affected portion of the log"
    /// (§7.1.2). No-op if the page is not resident or not dirty.
    pub fn writeback(&mut self, space: SpaceId, page: u64) {
        if let Some(frame) = self.resident.get_mut(&(space.0, page)) {
            if frame.dirty {
                frame.dirty = false;
                let sp = &self.spaces[space.0];
                let buf = vec![0u8; VM_PAGE_SIZE as usize];
                let _ = sp
                    .backing
                    .write_at(sp.base_offset + page * VM_PAGE_SIZE, &buf);
            }
        }
    }

    /// Writes a page to its backing store even if it is clean or
    /// non-resident (the page must then be faulted in first by the
    /// caller). Models a Disk Manager that rewrites every page its log
    /// references, whether or not the pager already cleaned it.
    pub fn force_writeback(&mut self, space: SpaceId, page: u64) {
        if let Some(frame) = self.resident.get_mut(&(space.0, page)) {
            frame.dirty = false;
        }
        let sp = &self.spaces[space.0];
        let buf = vec![0u8; VM_PAGE_SIZE as usize];
        let _ = sp
            .backing
            .write_at(sp.base_offset + page * VM_PAGE_SIZE, &buf);
    }

    /// Syncs a space's backing device (ends a writeback batch).
    pub fn sync_space(&mut self, space: SpaceId) {
        let _ = self.spaces[space.0].backing.sync();
    }

    /// The clock this VM charges.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;
    use simdisk::{DiskParams, SimDisk};

    fn vm_with_frames(frames: usize) -> (SimVm, SpaceId, Clock) {
        let clock = Clock::new();
        let disk: Arc<dyn Device> = Arc::new(SimDisk::new(
            Arc::new(MemDevice::with_len(64 << 20)),
            clock.clone(),
            DiskParams::circa_1990(),
        ));
        let mut vm = SimVm::new(
            clock.clone(),
            frames,
            VmParams {
                // Unit tests want each writeback's cost visible at once.
                pageout_cluster: 1,
                ..VmParams::default()
            },
        );
        let space = vm.add_space(disk, 0, 1024);
        (vm, space, clock)
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let (mut vm, space, clock) = vm_with_frames(8);
        assert!(vm.touch(space, 0, false));
        let after_fault = clock.now();
        assert!(!vm.touch(space, 0, false));
        assert_eq!(clock.now(), after_fault, "hit is free by default");
        assert_eq!(vm.stats().faults, 1);
        assert_eq!(vm.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_picks_the_coldest_page() {
        let (mut vm, space, _clock) = vm_with_frames(2);
        vm.touch(space, 0, false);
        vm.touch(space, 1, false);
        vm.touch(space, 0, false); // page 1 is now coldest
        vm.touch(space, 2, false); // evicts page 1
        assert!(vm.is_resident(space, 0));
        assert!(!vm.is_resident(space, 1));
        assert!(vm.is_resident(space, 2));
        assert_eq!(vm.stats().evictions, 1);
        assert_eq!(vm.stats().writebacks, 0, "clean page: no writeback");
    }

    #[test]
    fn dirty_eviction_writes_back_and_costs_io() {
        let (mut vm, space, clock) = vm_with_frames(1);
        vm.touch(space, 0, true);
        let before = clock.snapshot();
        vm.touch(space, 1, false); // evicts dirty page 0
        let delta = clock.snapshot() - before;
        assert_eq!(vm.stats().writebacks, 1);
        // Writeback sync + page-in read both cost real I/O time.
        assert!(delta.io.as_millis_f64() > 15.0, "got {}", delta.io);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (mut vm, space, _clock) = vm_with_frames(2);
        vm.pin(space, 0);
        vm.touch(space, 1, false);
        vm.touch(space, 2, false); // must evict page 1, not pinned page 0
        assert!(vm.is_resident(space, 0));
        assert!(!vm.is_resident(space, 1));
        vm.unpin(space, 0);
        vm.touch(space, 3, false);
        vm.touch(space, 4, false);
        assert!(!vm.is_resident(space, 0), "unpinned page becomes evictable");
    }

    #[test]
    fn all_pinned_overcommits_instead_of_deadlocking() {
        let (mut vm, space, _clock) = vm_with_frames(2);
        vm.pin(space, 0);
        vm.pin(space, 1);
        vm.touch(space, 2, false);
        assert_eq!(vm.resident_count(), 3);
    }

    #[test]
    fn writeback_clears_dirty_without_eviction() {
        let (mut vm, space, _clock) = vm_with_frames(4);
        vm.touch(space, 0, true);
        vm.writeback(space, 0);
        vm.sync_space(space);
        // Evicting it later is now clean.
        vm.touch(space, 1, false);
        vm.touch(space, 2, false);
        vm.touch(space, 3, false);
        vm.touch(space, 4, false); // evicts page 0
        assert_eq!(vm.stats().writebacks, 0);
    }

    #[test]
    fn fault_charges_cpu_service_time() {
        let clock = Clock::new();
        let disk: Arc<dyn Device> = Arc::new(MemDevice::with_len(1 << 20));
        let mut vm = SimVm::new(
            clock.clone(),
            4,
            VmParams {
                fault_service_cpu: SimTime::from_micros(700),
                hit_cpu: SimTime::from_nanos(100),
                evict_cpu: SimTime::ZERO,
                pageout_cluster: 1,
            },
        );
        let space = vm.add_space(disk, 0, 16);
        vm.touch(space, 0, false);
        assert_eq!(clock.cpu_time(), SimTime::from_micros(700));
        vm.touch(space, 0, false);
        assert_eq!(
            clock.cpu_time(),
            SimTime::from_micros(700) + SimTime::from_nanos(100)
        );
    }

    #[test]
    fn working_set_within_frames_stops_faulting() {
        let (mut vm, space, _clock) = vm_with_frames(64);
        for round in 0..10 {
            for page in 0..64 {
                vm.touch(space, page, true);
            }
            if round == 0 {
                assert_eq!(vm.stats().faults, 64);
            }
        }
        assert_eq!(vm.stats().faults, 64, "steady state: all hits");
        assert_eq!(vm.stats().hits, 64 * 9);
    }

    #[test]
    #[should_panic(expected = "outside space")]
    fn touching_beyond_the_space_panics() {
        let (mut vm, space, _clock) = vm_with_frames(2);
        vm.touch(space, 5000, false);
    }
}
