//! Quickstart: recoverable memory in five minutes.
//!
//! Creates a file-backed log and data segment, commits transactions,
//! simulates a crash mid-transaction, and shows recovery restoring
//! exactly the committed state.
//!
//! Run with: `cargo run -p rvm-examples --bin quickstart`

use std::sync::Arc;

use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_storage::FileDevice;

fn main() -> rvm::Result<()> {
    let dir = std::env::temp_dir().join(format!("rvm-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let log_path = dir.join("rvm.log");
    let seg_path = dir.join("counters.seg");
    let seg_name = seg_path.to_str().expect("utf-8 path").to_owned();

    println!("== first incarnation ==");
    {
        // One log per process (paper section 3.3); 4 MiB is plenty here.
        let log = Arc::new(FileDevice::open_or_create(&log_path, 4 << 20)?);
        let rvm = Rvm::initialize(Options::new(log).create_if_empty())?;

        // Map one page of the segment: recoverable memory.
        let region = rvm.map(&RegionDescriptor::new(&seg_name, 0, PAGE_SIZE))?;

        // A committed transaction: atomic and permanent.
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        region.put_u64(&mut txn, 0, 41)?;
        region.write(&mut txn, 64, b"hello, recoverable world")?;
        txn.commit(CommitMode::Flush)?;
        println!("committed: counter=41 plus a greeting");

        // An aborted transaction: set_range captured old values.
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        region.put_u64(&mut txn, 0, 999)?;
        txn.abort()?;
        println!("aborted:   counter is back to {}", region.get_u64(0)?);

        // An *uncommitted* transaction at crash time: must vanish.
        let mut doomed = rvm.begin_transaction(TxnMode::Restore)?;
        region.put_u64(&mut doomed, 0, 13013)?;
        println!("crashing with an uncommitted write of 13013 in memory...");
        std::mem::forget(doomed);
        std::mem::forget(rvm); // skip every destructor: a hard crash
    }

    println!("== second incarnation (after the crash) ==");
    {
        let log = Arc::new(FileDevice::open(&log_path)?);
        let rvm = Rvm::initialize(Options::new(log))?;
        let report = rvm.recovery_report();
        println!(
            "recovery replayed {} record(s), {} byte(s) into {} segment(s)",
            report.records_replayed, report.bytes_applied, report.segments_updated
        );

        let region = rvm.map(&RegionDescriptor::new(&seg_name, 0, PAGE_SIZE))?;
        let counter = region.get_u64(0)?;
        let greeting = region.read_vec(64, 24)?;
        println!("counter  = {counter}");
        println!("greeting = {:?}", String::from_utf8_lossy(&greeting));
        assert_eq!(counter, 41, "only committed state survives");
        assert_eq!(&greeting, b"hello, recoverable world");
        rvm.terminate()?;
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("ok: committed data survived, uncommitted data vanished.");
    Ok(())
}
