//! RVM error type.

use std::fmt;

use rvm_storage::DeviceError;

/// Result alias for RVM operations.
pub type Result<T> = std::result::Result<T, RvmError>;

/// Errors reported by the RVM library.
///
/// Mirrors the return-code discipline of the original C library: every
/// operation that touches a device, the log, or library state is fallible.
#[derive(Debug)]
pub enum RvmError {
    /// An error from the log or a data-segment device.
    Device(DeviceError),
    /// The log device is not a valid RVM log (bad magic, both status-block
    /// copies corrupt, or impossible geometry).
    BadLog(String),
    /// The log is too small to hold the record being committed even after
    /// truncation.
    LogFull {
        /// Bytes the record needs.
        needed: u64,
        /// Usable record-area capacity.
        capacity: u64,
    },
    /// A mapping request violated the rules of §4.1: overlap with an
    /// existing mapping, duplicate mapping, or bad alignment.
    BadMapping(String),
    /// The named segment could not be entered into the status block's
    /// segment table (table full).
    SegmentTableFull,
    /// An offset/length pair fell outside a region.
    OutOfRange {
        /// Requested start offset within the region.
        offset: u64,
        /// Requested length.
        len: u64,
        /// The region's length.
        region_len: u64,
    },
    /// A zero-length range was passed to `set_range`/`set_range_ptr`. An
    /// empty declaration is always a bug — it logs nothing, protects
    /// nothing, and usually means a length computation went wrong — so it
    /// is rejected eagerly rather than silently accepted.
    EmptyRange {
        /// The offset the empty range was declared at.
        offset: u64,
    },
    /// The operation needs a mapped region but the region was unmapped.
    Unmapped,
    /// `unmap` was called while transactions with uncommitted changes to
    /// the region were outstanding.
    RegionBusy {
        /// Number of outstanding uncommitted transactions on the region.
        uncommitted: u64,
    },
    /// `abort` was called on a no-restore transaction (§4.2: such a
    /// transaction promises never to abort, and RVM kept no old values).
    CannotAbortNoRestore,
    /// An operation was attempted on a transaction that already ended.
    TransactionEnded,
    /// `terminate` was called while transactions were still in progress.
    TransactionsOutstanding(u64),
    /// The library instance has been terminated.
    Terminated,
    /// The library instance is poisoned: an unrecoverable I/O failure was
    /// hit on the commit or truncation path after retries were exhausted.
    /// In-memory log cursors were rolled back so they never diverge from
    /// the durable image; reads of mapped regions still work, but
    /// `begin_transaction`, commit, `flush`, and truncation all fail fast
    /// with this error. Recover by re-running `Rvm::initialize` over the
    /// surviving log image.
    Poisoned,
    /// Unrecoverable media failure: a segment page failed its checksum and
    /// the whole repair ladder (mirror read-repair, reconstruction from
    /// the un-truncated log span) came up empty. The affected region is
    /// quarantined — per-region read-only degraded mode — while other
    /// regions keep committing. The message names the segment and page.
    Media(String),
}

impl fmt::Display for RvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvmError::Device(e) => write!(f, "device error: {e}"),
            RvmError::BadLog(msg) => write!(f, "not a valid RVM log: {msg}"),
            RvmError::LogFull { needed, capacity } => write!(
                f,
                "log full: record of {needed} bytes cannot fit in a log of capacity {capacity}"
            ),
            RvmError::BadMapping(msg) => write!(f, "bad mapping: {msg}"),
            RvmError::SegmentTableFull => write!(f, "segment table full"),
            RvmError::OutOfRange {
                offset,
                len,
                region_len,
            } => write!(
                f,
                "range [{offset}, {}) outside region of length {region_len}",
                offset + len
            ),
            RvmError::EmptyRange { offset } => {
                write!(f, "zero-length range declared at offset {offset}")
            }
            RvmError::Unmapped => write!(f, "region is not mapped"),
            RvmError::RegionBusy { uncommitted } => write!(
                f,
                "region has {uncommitted} uncommitted transaction(s) outstanding"
            ),
            RvmError::CannotAbortNoRestore => {
                write!(f, "no-restore transactions cannot be aborted")
            }
            RvmError::TransactionEnded => write!(f, "transaction has already ended"),
            RvmError::TransactionsOutstanding(n) => {
                write!(f, "cannot terminate: {n} transaction(s) outstanding")
            }
            RvmError::Terminated => write!(f, "RVM instance has been terminated"),
            RvmError::Poisoned => write!(
                f,
                "RVM instance is poisoned after an unrecoverable I/O failure"
            ),
            RvmError::Media(msg) => write!(f, "unrecoverable media failure: {msg}"),
        }
    }
}

impl std::error::Error for RvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RvmError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for RvmError {
    fn from(e: DeviceError) -> Self {
        RvmError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RvmError::LogFull {
            needed: 100,
            capacity: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
        assert!(RvmError::CannotAbortNoRestore
            .to_string()
            .contains("no-restore"));
        assert!(RvmError::OutOfRange {
            offset: 8,
            len: 8,
            region_len: 4
        }
        .to_string()
        .contains("[8, 16)"));
    }

    #[test]
    fn device_errors_convert() {
        let e: RvmError = DeviceError::Crashed.into();
        assert!(matches!(e, RvmError::Device(DeviceError::Crashed)));
    }
}
