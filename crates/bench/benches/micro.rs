//! Criterion micro-benchmarks of the RVM primitives (real wall-clock
//! time of this implementation, complementing the virtual-time harness):
//!
//! * `set_range` — old-value capture + range coalescing;
//! * commit paths — flush (in-memory device), no-flush, no-restore;
//! * record serialization and CRC;
//! * recovery time as a function of log size;
//! * recoverable-allocator alloc/free.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_alloc::RvmHeap;
use rvm_storage::MemDevice;

fn world(log_bytes: u64, region_pages: u64) -> (Rvm, Region) {
    let rvm = Rvm::initialize(
        Options::new(Arc::new(MemDevice::with_len(log_bytes)))
            .resolver(MemResolver::new().into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm
        .map(&RegionDescriptor::new("bench", 0, region_pages * PAGE_SIZE))
        .unwrap();
    (rvm, region)
}

fn bench_set_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_range");
    for &len in &[64u64, 1024, 16384] {
        group.throughput(Throughput::Bytes(len));
        group.bench_with_input(BenchmarkId::new("restore", len), &len, |b, &len| {
            let (rvm, region) = world(64 << 20, 16);
            b.iter_batched(
                || rvm.begin_transaction(TxnMode::Restore).unwrap(),
                |mut txn| {
                    txn.set_range(&region, 0, len).unwrap();
                    txn
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("no_restore", len), &len, |b, &len| {
            let (rvm, region) = world(64 << 20, 16);
            b.iter_batched(
                || rvm.begin_transaction(TxnMode::NoRestore).unwrap(),
                |mut txn| {
                    txn.set_range(&region, 0, len).unwrap();
                    txn
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    for &len in &[128u64, 4096] {
        group.throughput(Throughput::Bytes(len));
        group.bench_with_input(BenchmarkId::new("flush", len), &len, |b, &len| {
            let (rvm, region) = world(256 << 20, 16);
            let data = vec![7u8; len as usize];
            let mut i = 0u64;
            b.iter(|| {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region
                    .write(&mut txn, (i * len) % (8 * PAGE_SIZE), &data)
                    .unwrap();
                txn.commit(CommitMode::Flush).unwrap();
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("no_flush", len), &len, |b, &len| {
            let (rvm, region) = world(256 << 20, 16);
            let data = vec![7u8; len as usize];
            let mut i = 0u64;
            b.iter(|| {
                let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                region
                    .write(&mut txn, (i * len) % (8 * PAGE_SIZE), &data)
                    .unwrap();
                txn.commit(CommitMode::NoFlush).unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_commit_overhead(c: &mut Criterion) {
    // The fixed, pre-I/O cost of entering the commit path: an empty
    // transaction commits nothing, so this isolates bookkeeping such as
    // the per-commit `Tuning` read (a plain `Copy` read through the
    // RwLock; this used to heap-clone the struct on every commit).
    c.bench_function("commit_empty_no_flush", |b| {
        let (rvm, _region) = world(64 << 20, 16);
        b.iter(|| {
            let txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            txn.commit(CommitMode::NoFlush).unwrap();
        });
    });
}

fn bench_record_codec(c: &mut Criterion) {
    use rvm::log::record::{encode_txn, parse_record, RecordRange};
    use rvm::segment::SegmentId;
    let mut group = c.benchmark_group("record_codec");
    for &len in &[128u64, 4096, 65536] {
        let ranges = vec![RecordRange {
            seg: SegmentId::new(0),
            offset: 0,
            data: vec![0xAB; len as usize],
        }];
        group.throughput(Throughput::Bytes(len));
        group.bench_with_input(BenchmarkId::new("encode", len), &ranges, |b, ranges| {
            b.iter(|| encode_txn(1, 1, ranges));
        });
        let encoded = encode_txn(1, 1, &ranges);
        group.bench_with_input(BenchmarkId::new("decode", len), &encoded, |b, encoded| {
            b.iter(|| parse_record(encoded).unwrap());
        });
    }
    group.finish();

    c.bench_function("crc32_4k", |b| {
        let data = vec![0x5Au8; 4096];
        b.iter(|| rvm::crc32(&data));
    });
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    for &txns in &[100u64, 1000, 5000] {
        group.bench_with_input(BenchmarkId::new("replay", txns), &txns, |b, &txns| {
            b.iter_batched(
                || {
                    // Build a crashed world with `txns` committed records.
                    let log = Arc::new(MemDevice::with_len(64 << 20));
                    let segs = MemResolver::new();
                    let rvm = Rvm::initialize(
                        Options::new(log.clone())
                            .resolver(segs.clone().into_resolver())
                            .create_if_empty(),
                    )
                    .unwrap();
                    let region = rvm
                        .map(&RegionDescriptor::new("seg", 0, 64 * PAGE_SIZE))
                        .unwrap();
                    for i in 0..txns {
                        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                        region
                            .write(&mut txn, (i % 512) * 512, &[i as u8; 512])
                            .unwrap();
                        txn.commit(CommitMode::Flush).unwrap();
                    }
                    std::mem::forget(rvm);
                    (log, segs)
                },
                |(log, segs)| {
                    Rvm::initialize(
                        Options::new(log)
                            .resolver(segs.into_resolver())
                            .create_if_empty(),
                    )
                    .unwrap()
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("heap_alloc_free", |b| {
        let (rvm, region) = world(64 << 20, 64);
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&region, &mut txn).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        b.iter(|| {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let a = heap.alloc(&region, &mut txn, 128).unwrap();
            heap.free(&region, &mut txn, a).unwrap();
            txn.commit(CommitMode::NoFlush).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_set_range,
    bench_commit,
    bench_commit_overhead,
    bench_record_codec,
    bench_recovery,
    bench_allocator
);
criterion_main!(benches);
