//! Operation tracing for crash-state enumeration.
//!
//! [`TraceDevice`] wraps any [`Device`] and records every mutation
//! (`write_at`, `sync`, `set_len`) into a shared [`TraceRecorder`].
//! Several wrapped devices — a log plus every segment device — share one
//! recorder, so the op-log captures the *global* order of durability
//! events across the whole system, which is exactly what a
//! crash-consistency model checker needs: a crash point is an index into
//! this global order, and the durable image at that point is determined
//! by each device's last `sync` before the index.
//!
//! Reads are deliberately not recorded: they cannot affect the durable
//! image, and recording them would multiply trace length without adding
//! crash states.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Device, Result};

/// One recorded mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOpKind {
    /// `write_at(offset, data)`.
    Write { offset: u64, data: Vec<u8> },
    /// `sync()` — the durability barrier for every earlier write on the
    /// same device.
    Sync,
    /// `set_len(len)`.
    SetLen { len: u64 },
}

/// A mutation attributed to the device that issued it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// The id assigned by [`TraceRecorder::wrap`].
    pub device: u32,
    pub kind: TraceOpKind,
}

#[derive(Debug, Default)]
struct RecorderState {
    ops: Vec<TraceOp>,
    /// `(id, name)` of every wrapped device, registration order.
    devices: Vec<(u32, String)>,
    enabled: bool,
}

/// The shared op-log behind one or more [`TraceDevice`]s.
#[derive(Debug)]
pub struct TraceRecorder {
    state: Mutex<RecorderState>,
}

impl TraceRecorder {
    /// A recorder with recording enabled.
    pub fn new() -> Arc<Self> {
        Arc::new(TraceRecorder {
            state: Mutex::new(RecorderState {
                enabled: true,
                ..RecorderState::default()
            }),
        })
    }

    /// Registers `inner` under `name` and returns the tracing wrapper.
    pub fn wrap(self: &Arc<Self>, name: &str, inner: Arc<dyn Device>) -> Arc<TraceDevice> {
        let id = {
            let mut s = self.state.lock();
            let id = s.devices.len() as u32;
            s.devices.push((id, name.to_owned()));
            id
        };
        Arc::new(TraceDevice {
            id,
            inner,
            recorder: Arc::clone(self),
        })
    }

    /// Pause recording (e.g. while formatting a log whose setup writes are
    /// part of the pre-crash base image, not the trace under test).
    pub fn set_enabled(&self, enabled: bool) {
        self.state.lock().enabled = enabled;
    }

    /// Number of ops recorded so far. Workloads read this at ack points
    /// (a flush-mode commit returning) to mark which trace prefix must be
    /// durable.
    pub fn len(&self) -> usize {
        self.state.lock().ops.len()
    }

    /// Whether no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded op-log.
    pub fn ops(&self) -> Vec<TraceOp> {
        self.state.lock().ops.clone()
    }

    /// `(id, name)` of every wrapped device, registration order.
    pub fn devices(&self) -> Vec<(u32, String)> {
        self.state.lock().devices.clone()
    }

    fn record(&self, device: u32, kind: TraceOpKind) {
        let mut s = self.state.lock();
        if s.enabled {
            s.ops.push(TraceOp { device, kind });
        }
    }
}

/// A [`Device`] wrapper that appends every mutation to a shared
/// [`TraceRecorder`]. Operations pass through to the inner device
/// unchanged; the trace records what *would* have reached the platter, in
/// global order.
pub struct TraceDevice {
    id: u32,
    inner: Arc<dyn Device>,
    recorder: Arc<TraceRecorder>,
}

impl TraceDevice {
    /// The id this device was registered under.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The wrapped device.
    pub fn inner(&self) -> Arc<dyn Device> {
        self.inner.clone()
    }

    /// The shared recorder.
    pub fn recorder(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.recorder)
    }
}

impl Device for TraceDevice {
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)?;
        self.recorder.record(
            self.id,
            TraceOpKind::Write {
                offset,
                data: data.to_vec(),
            },
        );
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()?;
        self.recorder.record(self.id, TraceOpKind::Sync);
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)?;
        self.recorder.record(self.id, TraceOpKind::SetLen { len });
        Ok(())
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> crate::IoToken {
        // Recorded at *submit* time: a sync submitted after this call
        // covers the write on every conforming device, so submit order is
        // the durability order the crash enumerator must see. (Commit
        // acks happen strictly after `wait`, so recording early keeps the
        // committed-prefix oracle sound in both directions.)
        let kind = TraceOpKind::Write {
            offset,
            data: data.clone(),
        };
        let token = self.inner.submit_write(offset, data);
        match token.into_inline() {
            Ok(Ok(())) => {
                self.recorder.record(self.id, kind);
                crate::IoToken::inline(Ok(()))
            }
            Ok(Err(e)) => crate::IoToken::inline(Err(e)),
            Err(pending) => {
                self.recorder.record(self.id, kind);
                pending
            }
        }
    }

    fn submit_sync(&self) -> crate::IoToken {
        let token = self.inner.submit_sync();
        match token.into_inline() {
            Ok(Ok(())) => {
                self.recorder.record(self.id, TraceOpKind::Sync);
                crate::IoToken::inline(Ok(()))
            }
            Ok(Err(e)) => crate::IoToken::inline(Err(e)),
            Err(pending) => {
                self.recorder.record(self.id, TraceOpKind::Sync);
                pending
            }
        }
    }

    fn poll(&self, token: &crate::IoToken) -> bool {
        self.inner.poll(token)
    }

    fn wait(&self, token: crate::IoToken) -> Result<()> {
        match token.into_inline() {
            Ok(result) => result,
            Err(pending) => self.inner.wait(pending),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn records_global_order_across_devices() {
        let rec = TraceRecorder::new();
        let a = rec.wrap("log", Arc::new(MemDevice::with_len(64)));
        let b = rec.wrap("seg", Arc::new(MemDevice::with_len(64)));
        a.write_at(0, &[1, 2]).unwrap();
        b.write_at(8, &[3]).unwrap();
        a.sync().unwrap();
        b.set_len(128).unwrap();

        let ops = rec.ops();
        assert_eq!(ops.len(), 4);
        assert_eq!(
            ops[0],
            TraceOp {
                device: 0,
                kind: TraceOpKind::Write {
                    offset: 0,
                    data: vec![1, 2]
                }
            }
        );
        assert_eq!(ops[1].device, 1);
        assert_eq!(
            ops[2],
            TraceOp {
                device: 0,
                kind: TraceOpKind::Sync
            }
        );
        assert_eq!(
            ops[3],
            TraceOp {
                device: 1,
                kind: TraceOpKind::SetLen { len: 128 }
            }
        );
        assert_eq!(
            rec.devices(),
            vec![(0, "log".to_owned()), (1, "seg".to_owned())]
        );
    }

    #[test]
    fn reads_are_not_recorded_and_pass_through() {
        let rec = TraceRecorder::new();
        let dev = rec.wrap("log", Arc::new(MemDevice::with_len(8)));
        dev.write_at(0, &[9; 4]).unwrap();
        let mut buf = [0u8; 4];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [9; 4]);
        assert_eq!(rec.len(), 1);
        assert_eq!(dev.len().unwrap(), 8);
    }

    #[test]
    fn disabled_recorder_traces_nothing() {
        let rec = TraceRecorder::new();
        let dev = rec.wrap("log", Arc::new(MemDevice::with_len(8)));
        rec.set_enabled(false);
        dev.write_at(0, &[1]).unwrap();
        dev.sync().unwrap();
        assert!(rec.is_empty());
        rec.set_enabled(true);
        dev.write_at(1, &[2]).unwrap();
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn failed_writes_are_not_recorded() {
        let rec = TraceRecorder::new();
        let dev = rec.wrap("log", Arc::new(MemDevice::with_len(4)));
        assert!(dev.write_at(2, &[0; 8]).is_err());
        assert!(rec.is_empty());
    }
}
