//! Transparent logging as a debugging technique (§6): when a persistent
//! structure is found corrupted, the saved log shows the full history of
//! modifications that led there.
//!
//! Run with: `cargo run -p rvm-examples --bin post_mortem`

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_logtool::{format_entry, LogInspector};
use rvm_storage::MemDevice;

fn main() -> rvm::Result<()> {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();

    // A buggy application: several modules update a reference count at
    // offset 256; one of them (transaction 4) writes garbage.
    {
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )?;
        let region = rvm.map(&RegionDescriptor::new("objects", 0, PAGE_SIZE))?;
        for step in 1..=5u64 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
            let value = if step == 4 { 0xDEAD_BEEF } else { step };
            region.put_u64(&mut txn, 256, value)?;
            region.put_u64(&mut txn, 512, step * 10)?; // unrelated field
            txn.commit(CommitMode::Flush)?;
        }
        // The operator notices the corruption and saves a copy of the
        // log *before truncation* — here, by just crashing.
        std::mem::forget(rvm);
    }

    println!("corruption reported at objects[256..264]; inspecting the saved log:");
    let inspector = LogInspector::open(log.clone())?;
    println!("{}", inspector.summary()?);

    println!("history of objects[256..264]:");
    let mut culprit = None;
    for entry in inspector.history("objects", 256, 8)? {
        println!("  {}", format_entry(&entry));
        let value = u64::from_le_bytes(entry.data[..8].try_into().unwrap());
        if value == 0xDEAD_BEEF {
            culprit = Some(entry.tid);
        }
    }
    let tid = culprit.expect("the corrupting write is in the log");
    println!("=> transaction {tid} wrote 0xDEADBEEF; that code path is the bug.");

    // The backward scan (Figure 5's reverse displacements) reads the
    // same story newest-first.
    let newest = inspector.records_backward()?;
    println!("newest record in the log: seq {}", newest[0].1.seq);
    Ok(())
}
