//! A recoverable ring log of fixed-size records.

use rvm::{Region, Result, RvmError, Transaction};

const MAGIC: u64 = 0x5256_4D44_5352_4731; // "RVMDSRG1"

/// Super-block layout at the ring's base offset.
mod hdr {
    pub const MAGIC: u64 = 0;
    pub const RECORD_SIZE: u64 = 8;
    pub const CAPACITY: u64 = 16;
    /// Monotone count of records ever appended.
    pub const APPENDED: u64 = 24;
    pub const SIZE: u64 = 32;
}

/// A fixed-capacity ring of fixed-size records in recoverable memory —
/// the shape of the paper's TPC-A audit trail ("access to the audit
/// trail is always sequential, with wraparound", §7.1.1) and of Coda's
/// replay logs (§6).
///
/// The ring occupies `[base, base + HEADER + capacity * record_size)` of
/// its region; the caller provides the space (typically from
/// [`rvm_alloc::RvmHeap`]).
#[derive(Debug, Clone, Copy)]
pub struct RingLog {
    base: u64,
}

impl RingLog {
    /// Bytes needed for a ring of `capacity` records of `record_size`.
    pub fn footprint(capacity: u64, record_size: u64) -> u64 {
        hdr::SIZE + capacity * record_size
    }

    /// Initializes a ring at `base` inside `txn`.
    pub fn create(
        region: &Region,
        txn: &mut Transaction,
        base: u64,
        capacity: u64,
        record_size: u64,
    ) -> Result<RingLog> {
        if capacity == 0 || record_size == 0 {
            return Err(RvmError::OutOfRange {
                offset: base,
                len: 0,
                region_len: region.len(),
            });
        }
        region.put_u64(txn, base + hdr::MAGIC, MAGIC)?;
        region.put_u64(txn, base + hdr::RECORD_SIZE, record_size)?;
        region.put_u64(txn, base + hdr::CAPACITY, capacity)?;
        region.put_u64(txn, base + hdr::APPENDED, 0)?;
        Ok(RingLog { base })
    }

    /// Opens an existing ring at `base`.
    pub fn open(region: &Region, base: u64) -> Result<RingLog> {
        if region.get_u64(base + hdr::MAGIC)? != MAGIC {
            return Err(RvmError::BadMapping(
                "no ring log at this offset".to_owned(),
            ));
        }
        Ok(RingLog { base })
    }

    /// The ring's base offset.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total records ever appended.
    pub fn appended(&self, region: &Region) -> Result<u64> {
        region.get_u64(self.base + hdr::APPENDED)
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self, region: &Region) -> Result<u64> {
        let appended = self.appended(region)?;
        let cap = region.get_u64(self.base + hdr::CAPACITY)?;
        Ok(appended.min(cap))
    }

    /// Returns `true` if nothing has ever been appended.
    pub fn is_empty(&self, region: &Region) -> Result<bool> {
        Ok(self.appended(region)? == 0)
    }

    /// Appends a record inside `txn` (truncated or zero-padded to the
    /// ring's record size), overwriting the oldest once full. Returns the
    /// record's sequence number.
    pub fn append(&self, region: &Region, txn: &mut Transaction, record: &[u8]) -> Result<u64> {
        let record_size = region.get_u64(self.base + hdr::RECORD_SIZE)?;
        let cap = region.get_u64(self.base + hdr::CAPACITY)?;
        let appended = self.appended(region)?;
        let slot = appended % cap;
        let mut image = vec![0u8; record_size as usize];
        let n = record.len().min(record_size as usize);
        image[..n].copy_from_slice(&record[..n]);
        region.write(txn, self.base + hdr::SIZE + slot * record_size, &image)?;
        region.put_u64(txn, self.base + hdr::APPENDED, appended + 1)?;
        Ok(appended)
    }

    /// Reads the record with sequence number `seq`, if still retained.
    pub fn get(&self, region: &Region, seq: u64) -> Result<Option<Vec<u8>>> {
        let record_size = region.get_u64(self.base + hdr::RECORD_SIZE)?;
        let cap = region.get_u64(self.base + hdr::CAPACITY)?;
        let appended = self.appended(region)?;
        if seq >= appended || appended - seq > cap {
            return Ok(None);
        }
        let slot = seq % cap;
        Ok(Some(region.read_vec(
            self.base + hdr::SIZE + slot * record_size,
            record_size,
        )?))
    }

    /// The retained records, oldest first, with their sequence numbers.
    pub fn tail(&self, region: &Region) -> Result<Vec<(u64, Vec<u8>)>> {
        let appended = self.appended(region)?;
        let retained = self.len(region)?;
        let mut out = Vec::with_capacity(retained as usize);
        for seq in appended - retained..appended {
            if let Some(rec) = self.get(region, seq)? {
                out.push((seq, rec));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn world() -> (Rvm, Region) {
        let rvm = Rvm::initialize(
            Options::new(Arc::new(MemDevice::with_len(2 << 20)))
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("ring", 0, 4 * PAGE_SIZE))
            .unwrap();
        (rvm, region)
    }

    #[test]
    fn append_and_read_back() {
        let (rvm, region) = world();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let ring = RingLog::create(&region, &mut txn, 0, 4, 16).unwrap();
        for i in 0..3u8 {
            let seq = ring.append(&region, &mut txn, &[i; 8]).unwrap();
            assert_eq!(seq, i as u64);
        }
        txn.commit(CommitMode::Flush).unwrap();
        assert_eq!(ring.len(&region).unwrap(), 3);
        let rec = ring.get(&region, 1).unwrap().unwrap();
        assert_eq!(&rec[..8], &[1; 8]);
        assert_eq!(&rec[8..], &[0; 8], "zero padded");
    }

    #[test]
    fn wraparound_drops_the_oldest() {
        let (rvm, region) = world();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let ring = RingLog::create(&region, &mut txn, 64, 4, 8).unwrap();
        for i in 0..10u8 {
            ring.append(&region, &mut txn, &[i]).unwrap();
        }
        txn.commit(CommitMode::Flush).unwrap();
        assert_eq!(ring.appended(&region).unwrap(), 10);
        assert_eq!(ring.len(&region).unwrap(), 4);
        assert!(ring.get(&region, 5).unwrap().is_none(), "overwritten");
        let tail = ring.tail(&region).unwrap();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].0, 6);
        assert_eq!(tail[0].1[0], 6);
        assert_eq!(tail[3].0, 9);
        assert!(ring.get(&region, 10).unwrap().is_none(), "future seq");
    }

    #[test]
    fn survives_restart() {
        let log = Arc::new(MemDevice::with_len(2 << 20));
        let segs = MemResolver::new();
        let boot = |log: &Arc<MemDevice>, segs: &MemResolver| {
            Rvm::initialize(
                Options::new(log.clone())
                    .resolver(segs.clone().into_resolver())
                    .create_if_empty(),
            )
            .unwrap()
        };
        {
            let rvm = boot(&log, &segs);
            let region = rvm
                .map(&RegionDescriptor::new("ring", 0, PAGE_SIZE))
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let ring = RingLog::create(&region, &mut txn, 0, 8, 32).unwrap();
            ring.append(&region, &mut txn, b"audit record one").unwrap();
            ring.append(&region, &mut txn, b"audit record two").unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            std::mem::forget(rvm);
        }
        let rvm = boot(&log, &segs);
        let region = rvm
            .map(&RegionDescriptor::new("ring", 0, PAGE_SIZE))
            .unwrap();
        let ring = RingLog::open(&region, 0).unwrap();
        assert_eq!(ring.appended(&region).unwrap(), 2);
        let tail = ring.tail(&region).unwrap();
        assert_eq!(&tail[1].1[..16], b"audit record two");
    }

    #[test]
    fn aborted_appends_vanish() {
        let (rvm, region) = world();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let ring = RingLog::create(&region, &mut txn, 0, 4, 8).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        ring.append(&region, &mut txn, b"ghost").unwrap();
        txn.abort().unwrap();
        assert!(ring.is_empty(&region).unwrap());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let (rvm, region) = world();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        assert!(RingLog::create(&region, &mut txn, 0, 0, 8).is_err());
        assert!(RingLog::create(&region, &mut txn, 0, 8, 0).is_err());
        txn.commit(CommitMode::Flush).unwrap();
        assert!(RingLog::open(&region, 512).is_err());
        assert_eq!(RingLog::footprint(4, 8), 32 + 32);
    }
}
