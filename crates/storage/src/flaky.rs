//! A device wrapper that injects faults on a deterministic schedule.
//!
//! [`FlakyDevice`] complements [`FaultDevice`](crate::FaultDevice): where
//! `FaultDevice` models a single planned crash with torn writes and lost
//! unsynced data, `FlakyDevice` models *flaky* hardware — the Nth read,
//! write, or sync fails with a transient or permanent
//! [`DeviceError::Injected`], optionally for a run of K consecutive
//! operations before healing. Schedules are either explicit
//! ([`FlakyFault`] lists) or pseudo-random from a seed, so every failure
//! scenario replays bit-for-bit.
//!
//! The fault schedule lives in a shared [`FaultClock`] so several wrapped
//! devices (e.g. a log device plus every segment device resolved during
//! recovery) can count operations against one global sequence — that is
//! what lets a crash-matrix sweep place a crash after the K-th device
//! operation *anywhere* in the system.

use std::sync::{Arc, Mutex};

use crate::device::Device;
use crate::error::{DeviceError, FaultOp, Result};
use crate::fault::UnsyncedFate;

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a transient error; a retry may succeed.
    Transient,
    /// The operation fails with a permanent error; retries keep failing.
    Permanent,
    /// The clock crashes: this and every later operation fails with
    /// [`DeviceError::Crashed`].
    Crash,
    /// Silent corruption: the operation *succeeds* but its data is
    /// flipped — a rotted read returns corrupted bytes, a rotted write
    /// persists corrupted bytes on the media. Rot on a sync does nothing.
    /// This is the bit-rot fault the fail-stop kinds above cannot
    /// express; only end-to-end checksums can catch it.
    BitRot,
}

/// One scheduled fault: fail `count` operations starting at the `nth`
/// matching operation (1-based).
#[derive(Debug, Clone, Copy)]
pub struct FlakyFault {
    /// Operation to match, or `None` to count every operation on the clock.
    pub op: Option<FaultOp>,
    /// 1-based index of the first matching operation that fails.
    pub nth: u64,
    /// Number of consecutive matching operations that fail.
    pub count: u64,
    /// Failure mode.
    pub kind: FaultKind,
}

impl FlakyFault {
    /// Fail the `nth` operation of kind `op` with a transient error.
    pub fn transient(op: FaultOp, nth: u64) -> Self {
        Self::transient_run(op, nth, 1)
    }

    /// Fail `count` consecutive operations of kind `op` starting at the
    /// `nth`, each with a transient error (the device "heals" after).
    pub fn transient_run(op: FaultOp, nth: u64, count: u64) -> Self {
        FlakyFault {
            op: Some(op),
            nth,
            count,
            kind: FaultKind::Transient,
        }
    }

    /// Fail the `nth` operation of kind `op` with a permanent error.
    pub fn permanent(op: FaultOp, nth: u64) -> Self {
        FlakyFault {
            op: Some(op),
            nth,
            count: u64::MAX,
            kind: FaultKind::Permanent,
        }
    }

    /// Crash on the `nth` operation of kind `op`.
    pub fn crash(op: FaultOp, nth: u64) -> Self {
        FlakyFault {
            op: Some(op),
            nth,
            count: u64::MAX,
            kind: FaultKind::Crash,
        }
    }

    /// Crash on the `nth` operation of *any* kind, counted across every
    /// device sharing the clock. The workhorse of crash-matrix sweeps.
    pub fn crash_after_ops(nth: u64) -> Self {
        FlakyFault {
            op: None,
            nth,
            count: u64::MAX,
            kind: FaultKind::Crash,
        }
    }

    /// Silently corrupt the `nth` operation of kind `op`; see
    /// [`FaultKind::BitRot`].
    pub fn bit_rot(op: FaultOp, nth: u64) -> Self {
        Self::bit_rot_run(op, nth, 1)
    }

    /// Silently corrupt `count` consecutive operations of kind `op`
    /// starting at the `nth`.
    pub fn bit_rot_run(op: FaultOp, nth: u64, count: u64) -> Self {
        FlakyFault {
            op: Some(op),
            nth,
            count,
            kind: FaultKind::BitRot,
        }
    }
}

#[derive(Debug)]
struct ClockState {
    faults: Vec<FlakyFault>,
    /// Per-op counters, indexed by `FaultOp as usize`.
    seen: [u64; 3],
    /// Total operations across all ops.
    total: u64,
    /// xorshift64* state for seeded mode.
    rng: u64,
    /// In seeded mode, per-mille probability that any operation fails
    /// with a transient fault.
    per_mille: u32,
    /// In seeded mode, per-mille probability that an operation is
    /// silently corrupted ([`FaultKind::BitRot`]) when it did not fail.
    rot_per_mille: u32,
    seeded: bool,
    crashed: bool,
    /// Number of faults injected so far (all kinds, bit rot included).
    injected: u64,
    /// Number of bit-rot faults injected so far.
    rotted: u64,
}

/// How the clock disposed of one admitted (non-failing) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admitted {
    /// The operation proceeds untouched.
    Clean,
    /// The operation proceeds but its data must be corrupted; the salt
    /// picks which byte flips, deterministically per schedule.
    Rot { salt: u64 },
}

fn op_index(op: FaultOp) -> usize {
    match op {
        FaultOp::Read => 0,
        FaultOp::Write => 1,
        FaultOp::Sync => 2,
    }
}

/// Shared fault schedule; see the [module docs](self).
#[derive(Debug)]
pub struct FaultClock {
    state: Mutex<ClockState>,
}

impl FaultClock {
    /// A clock with an explicit fault schedule.
    pub fn new(faults: Vec<FlakyFault>) -> Arc<Self> {
        Arc::new(FaultClock {
            state: Mutex::new(ClockState {
                faults,
                seen: [0; 3],
                total: 0,
                rng: 0,
                per_mille: 0,
                rot_per_mille: 0,
                seeded: false,
                crashed: false,
                injected: 0,
                rotted: 0,
            }),
        })
    }

    /// A clock that fails each operation with probability
    /// `fail_per_mille`/1000, pseudo-randomly from `seed` (xorshift64*),
    /// always with a transient fault.
    pub fn seeded(seed: u64, fail_per_mille: u32) -> Arc<Self> {
        Self::seeded_with_rot(seed, fail_per_mille, 0)
    }

    /// A clock that fails each operation with probability
    /// `fail_per_mille`/1000 (transiently) and silently corrupts each
    /// surviving operation with probability `rot_per_mille`/1000 — the
    /// seeded corruption *storm*. Both channels draw from the same
    /// xorshift64* stream, so a storm replays bit-for-bit from its seed.
    pub fn seeded_with_rot(seed: u64, fail_per_mille: u32, rot_per_mille: u32) -> Arc<Self> {
        Arc::new(FaultClock {
            state: Mutex::new(ClockState {
                faults: Vec::new(),
                seen: [0; 3],
                total: 0,
                rng: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
                per_mille: fail_per_mille.min(1000),
                rot_per_mille: rot_per_mille.min(1000),
                seeded: true,
                crashed: false,
                injected: 0,
                rotted: 0,
            }),
        })
    }

    /// Total operations admitted or failed so far, across all ops.
    pub fn total_ops(&self) -> u64 {
        self.state.lock().unwrap().total
    }

    /// Operations of each kind seen so far, as `(reads, writes, syncs)`.
    pub fn ops_seen(&self) -> (u64, u64, u64) {
        let s = self.state.lock().unwrap();
        (s.seen[0], s.seen[1], s.seen[2])
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Number of bit-rot faults injected so far.
    pub fn rotted(&self) -> u64 {
        self.state.lock().unwrap().rotted
    }

    /// Whether the clock has hit a crash fault.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Record one operation of kind `op` and decide its fate.
    fn admit(&self, op: FaultOp) -> Result<Admitted> {
        let mut s = self.state.lock().unwrap();
        if s.crashed {
            return Err(DeviceError::Crashed);
        }
        s.seen[op_index(op)] += 1;
        s.total += 1;

        let mut verdict: Option<FaultKind> = None;
        for f in &s.faults {
            let n = match f.op {
                Some(fop) if fop == op => s.seen[op_index(op)],
                Some(_) => continue,
                None => s.total,
            };
            if n >= f.nth && n - f.nth < f.count {
                verdict = Some(f.kind);
                break;
            }
        }
        if verdict.is_none() && s.seeded && s.per_mille > 0 {
            // xorshift64*
            let mut x = s.rng;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            s.rng = x;
            let roll = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) % 1000;
            if (roll as u32) < s.per_mille {
                verdict = Some(FaultKind::Transient);
            }
        }
        if verdict.is_none() && s.seeded && s.rot_per_mille > 0 {
            // A second, independent roll for the rot channel. Guarded so
            // rot-free seeded clocks keep their historical rng stream.
            let mut x = s.rng;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            s.rng = x;
            let roll = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) % 1000;
            if (roll as u32) < s.rot_per_mille {
                verdict = Some(FaultKind::BitRot);
            }
        }

        match verdict {
            None => Ok(Admitted::Clean),
            Some(kind) => {
                s.injected += 1;
                match kind {
                    FaultKind::Transient => Err(DeviceError::Injected {
                        op,
                        transient: true,
                    }),
                    FaultKind::Permanent => Err(DeviceError::Injected {
                        op,
                        transient: false,
                    }),
                    FaultKind::Crash => {
                        s.crashed = true;
                        Err(DeviceError::Crashed)
                    }
                    FaultKind::BitRot => {
                        s.rotted += 1;
                        // Salt the corruption with the op count so each
                        // rotted operation flips a different byte,
                        // deterministically per schedule.
                        Ok(Admitted::Rot { salt: s.total })
                    }
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct CrashModelState {
    /// `(offset, old, new)` of every write since the last *successful*
    /// sync — a failed sync is not a durability barrier, so it must not
    /// clear this journal.
    journal: Vec<(u64, Vec<u8>, Vec<u8>)>,
    /// Whether the configured fate has already been applied.
    settled: bool,
}

/// A [`Device`] wrapper that injects faults per a [`FaultClock`] schedule.
///
/// Failed operations are fail-stop: a failed `write_at` writes nothing,
/// a failed `sync` flushes nothing. (Torn writes are `FaultDevice`'s
/// department.) `len`, `is_empty`, and `set_len` never inject faults but
/// do fail once the clock has crashed.
///
/// ## Crash model
///
/// By default a [`FaultKind::Crash`] fault freezes the inner image as-is
/// — every write issued before the crash persists, synced or not
/// ([`UnsyncedFate::KeptInOrder`]). [`FlakyDevice::crash_model`]
/// configures the fate of *unsynced* writes instead, with the same
/// semantics as [`FaultDevice`](crate::FaultDevice): the wrapper journals
/// writes and clears the journal only on a **successful** `sync`. An
/// injected sync failure leaves the journal intact, so a later crash
/// still rolls those writes back — a failed sync never acts as a silent
/// durability barrier.
#[derive(Debug)]
pub struct FlakyDevice<D: ?Sized> {
    inner: Arc<D>,
    clock: Arc<FaultClock>,
    crash_model: Option<UnsyncedFate>,
    model_state: Mutex<CrashModelState>,
}

impl<D: Device + ?Sized> FlakyDevice<D> {
    /// Wrap `inner` with an explicit fault schedule.
    pub fn new(inner: Arc<D>, faults: Vec<FlakyFault>) -> Self {
        Self::with_clock(inner, FaultClock::new(faults))
    }

    /// Wrap `inner` with a seeded pseudo-random schedule; see
    /// [`FaultClock::seeded`].
    pub fn seeded(inner: Arc<D>, seed: u64, fail_per_mille: u32) -> Self {
        Self::with_clock(inner, FaultClock::seeded(seed, fail_per_mille))
    }

    /// Wrap `inner` with an existing (possibly shared) clock.
    pub fn with_clock(inner: Arc<D>, clock: Arc<FaultClock>) -> Self {
        FlakyDevice {
            inner,
            clock,
            crash_model: None,
            model_state: Mutex::new(CrashModelState::default()),
        }
    }

    /// Configure the fate of unsynced writes when the clock crashes; see
    /// the [crash model](#crash-model) section.
    ///
    /// `TornWrite` degrades to `KeptInOrder` here: injected failures are
    /// fail-stop (a failed write writes nothing), so there is never an
    /// in-flight write to tear.
    pub fn crash_model(mut self, fate: UnsyncedFate) -> Self {
        self.crash_model = Some(fate);
        self
    }

    /// The fault clock driving this device.
    pub fn clock(&self) -> Arc<FaultClock> {
        Arc::clone(&self.clock)
    }

    /// The wrapped device.
    pub fn inner(&self) -> Arc<D> {
        Arc::clone(&self.inner)
    }

    /// Applies the configured unsynced-write fate to the inner image if
    /// the shared clock has crashed (idempotent). Called automatically by
    /// every operation that observes the crash; tests that inspect the
    /// inner device directly call it to make sure the image is settled
    /// even when the crash fired on a *different* device sharing the
    /// clock.
    pub fn settle_crash(&self) {
        if !self.clock.has_crashed() {
            return;
        }
        let Some(fate) = self.crash_model else {
            return;
        };
        let mut s = self.model_state.lock().unwrap();
        if s.settled {
            return;
        }
        s.settled = true;
        match fate {
            UnsyncedFate::KeptInOrder | UnsyncedFate::TornWrite { .. } => {}
            UnsyncedFate::Lost => {
                for (offset, old, _) in s.journal.iter().rev() {
                    // lint:allow(device-fallibility): crash simulation builds the torn image
                    let _ = self.inner.write_at(*offset, old);
                }
                s.journal.clear();
            }
            UnsyncedFate::ArbitrarySubset { seed } => {
                let mut rng = if seed == 0 { 0x9E3779B97F4A7C15 } else { seed };
                let keep: Vec<bool> = s
                    .journal
                    .iter()
                    .map(|_| {
                        rng ^= rng >> 12;
                        rng ^= rng << 25;
                        rng ^= rng >> 27;
                        rng.wrapping_mul(0x2545F4914F6CDD1D) >> 63 == 1
                    })
                    .collect();
                for (offset, old, _) in s.journal.iter().rev() {
                    // lint:allow(device-fallibility): crash simulation builds the torn image
                    let _ = self.inner.write_at(*offset, old);
                }
                for ((offset, _, new), kept) in s.journal.iter().zip(&keep) {
                    if *kept {
                        // lint:allow(device-fallibility): crash simulation builds the torn image
                        let _ = self.inner.write_at(*offset, new);
                    }
                }
                s.journal.clear();
            }
        }
    }

    fn admit(&self, op: FaultOp) -> Result<Admitted> {
        let outcome = self.clock.admit(op);
        if matches!(outcome, Err(DeviceError::Crashed)) {
            self.settle_crash();
        }
        outcome
    }
}

/// Flips one byte of `buf`, picked by `salt`. The corruption the
/// [`FaultKind::BitRot`] fault applies: a single flipped byte, enough to
/// fail any honest checksum while staying cheap to inject.
fn rot_buf(buf: &mut [u8], salt: u64) {
    if !buf.is_empty() {
        let i = (salt % buf.len() as u64) as usize;
        buf[i] ^= 0xA5;
    }
}

impl<D: Device + ?Sized> Device for FlakyDevice<D> {
    fn len(&self) -> Result<u64> {
        if self.clock.has_crashed() {
            self.settle_crash();
            return Err(DeviceError::Crashed);
        }
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let admitted = self.admit(FaultOp::Read)?;
        self.inner.read_at(offset, buf)?;
        if let Admitted::Rot { salt } = admitted {
            rot_buf(buf, salt);
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        let admitted = self.admit(FaultOp::Write)?;
        let rotted;
        let buf: &[u8] = if let Admitted::Rot { salt } = admitted {
            // Rot on a write persists corrupted bytes on the media.
            let mut copy = buf.to_vec();
            rot_buf(&mut copy, salt);
            rotted = copy;
            &rotted
        } else {
            buf
        };
        if self.crash_model.is_some() {
            let mut old = vec![0u8; buf.len()];
            self.inner.read_at(offset, &mut old)?;
            self.inner.write_at(offset, buf)?;
            self.model_state
                .lock()
                .unwrap()
                .journal
                .push((offset, old, buf.to_vec()));
            Ok(())
        } else {
            self.inner.write_at(offset, buf)
        }
    }

    fn sync(&self) -> Result<()> {
        // An injected failure propagates *without* clearing the journal:
        // the barrier did not happen, so unsynced writes stay at risk.
        // Rot on a sync does nothing — there is no data to corrupt.
        self.admit(FaultOp::Sync)?;
        self.inner.sync()?;
        self.model_state.lock().unwrap().journal.clear();
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        if self.clock.has_crashed() {
            self.settle_crash();
            return Err(DeviceError::Crashed);
        }
        self.inner.set_len(len)
    }

    // read_verified deliberately stays the default (read then check) so an
    // injected rot is *visible* to the caller's checksum — that is the
    // whole point of the fault.

    fn replica_health(&self) -> Option<(usize, usize)> {
        self.inner.replica_health()
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> crate::IoToken {
        // The fault schedule is consulted here, at submit (the request
        // enters the queue); the token carries the outcome and `wait`
        // delivers it — completion-queue error semantics. The inner device
        // is driven synchronously on purpose: fault schedules are keyed on
        // a deterministic per-op order, which an overlapped inner queue
        // would scramble.
        crate::IoToken::inline(self.write_at(offset, &data))
    }

    fn submit_sync(&self) -> crate::IoToken {
        // As above: an injected sync failure is decided now but only
        // surfaces at `wait`, so a pipelined log writer sees its in-flight
        // force fail exactly the way a real completion queue reports it.
        crate::IoToken::inline(self.sync())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDevice;

    fn dev(faults: Vec<FlakyFault>) -> FlakyDevice<MemDevice> {
        FlakyDevice::new(Arc::new(MemDevice::with_len(4096)), faults)
    }

    #[test]
    fn nth_write_fails_then_heals() {
        let d = dev(vec![FlakyFault::transient(FaultOp::Write, 2)]);
        d.write_at(0, b"one").unwrap();
        let err = d.write_at(0, b"two").unwrap_err();
        assert!(matches!(
            err,
            DeviceError::Injected {
                op: FaultOp::Write,
                transient: true
            }
        ));
        // Failed write wrote nothing.
        let mut buf = [0u8; 3];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one");
        // Healed: the next write succeeds.
        d.write_at(0, b"two").unwrap();
        assert_eq!(d.clock().injected(), 1);
    }

    #[test]
    fn transient_run_heals_after_count() {
        let d = dev(vec![FlakyFault::transient_run(FaultOp::Sync, 1, 3)]);
        for _ in 0..3 {
            assert!(d.sync().unwrap_err().is_transient());
        }
        d.sync().unwrap();
        assert_eq!(d.clock().injected(), 3);
    }

    #[test]
    fn permanent_fault_never_heals() {
        let d = dev(vec![FlakyFault::permanent(FaultOp::Read, 1)]);
        let mut buf = [0u8; 1];
        for _ in 0..5 {
            let err = d.read_at(0, &mut buf).unwrap_err();
            assert!(!err.is_transient());
        }
        // Other ops unaffected.
        d.write_at(0, b"x").unwrap();
    }

    #[test]
    fn crash_after_total_ops_sticks() {
        let d = dev(vec![FlakyFault::crash_after_ops(3)]);
        let mut buf = [0u8; 1];
        d.write_at(0, b"a").unwrap();
        d.read_at(0, &mut buf).unwrap();
        assert!(matches!(d.sync().unwrap_err(), DeviceError::Crashed));
        assert!(d.clock().has_crashed());
        assert!(matches!(
            d.write_at(0, b"b").unwrap_err(),
            DeviceError::Crashed
        ));
        assert!(matches!(d.set_len(8192).unwrap_err(), DeviceError::Crashed));
    }

    #[test]
    fn shared_clock_counts_across_devices() {
        let clock = FaultClock::new(vec![FlakyFault::crash_after_ops(2)]);
        let a = FlakyDevice::with_clock(Arc::new(MemDevice::with_len(4096)), Arc::clone(&clock));
        let b = FlakyDevice::with_clock(Arc::new(MemDevice::with_len(4096)), Arc::clone(&clock));
        a.write_at(0, b"x").unwrap();
        assert!(matches!(
            b.write_at(0, b"y").unwrap_err(),
            DeviceError::Crashed
        ));
        assert_eq!(clock.total_ops(), 2);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed| {
            let d = FlakyDevice::seeded(Arc::new(MemDevice::with_len(4096)), seed, 300);
            let mut outcomes = Vec::new();
            for i in 0..64 {
                outcomes.push(d.write_at(i % 8, b"z").is_ok());
            }
            outcomes
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let d = FlakyDevice::seeded(Arc::new(MemDevice::with_len(4096)), 7, 1000);
        assert!(d.sync().unwrap_err().is_transient());
    }

    #[test]
    fn failed_sync_is_not_a_durability_barrier() {
        // Schedule: the first sync fails transiently, then a crash on the
        // 5th total op. With a Lost crash model, *every* write since the
        // last SUCCESSFUL sync must roll back — including writes issued
        // before the failed sync.
        let inner = Arc::new(MemDevice::with_len(8));
        let d = FlakyDevice::with_clock(
            Arc::clone(&inner),
            FaultClock::new(vec![
                FlakyFault::transient(FaultOp::Sync, 1),
                FlakyFault::crash_after_ops(5),
            ]),
        )
        .crash_model(UnsyncedFate::Lost);

        d.write_at(0, &[1, 1]).unwrap(); // op 1
        assert!(d.sync().unwrap_err().is_transient()); // op 2: failed sync
        d.write_at(2, &[2, 2]).unwrap(); // op 3
        d.write_at(4, &[3, 3]).unwrap(); // op 4
        assert!(matches!(
            d.write_at(6, &[4, 4]).unwrap_err(), // op 5: crash
            DeviceError::Crashed
        ));
        // All three completed writes vanish: the failed sync protected
        // nothing.
        assert_eq!(inner.snapshot(), vec![0; 8]);
    }

    #[test]
    fn successful_sync_protects_earlier_writes() {
        let inner = Arc::new(MemDevice::with_len(8));
        let d = FlakyDevice::with_clock(
            Arc::clone(&inner),
            FaultClock::new(vec![FlakyFault::crash_after_ops(4)]),
        )
        .crash_model(UnsyncedFate::Lost);

        d.write_at(0, &[1, 1]).unwrap(); // op 1
        d.sync().unwrap(); // op 2: real barrier
        d.write_at(2, &[2, 2]).unwrap(); // op 3
        assert!(matches!(
            d.sync().unwrap_err(), // op 4: crash
            DeviceError::Crashed
        ));
        assert_eq!(inner.snapshot(), vec![1, 1, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn default_crash_model_keeps_unsynced_writes() {
        let inner = Arc::new(MemDevice::with_len(4));
        let d = FlakyDevice::with_clock(
            Arc::clone(&inner),
            FaultClock::new(vec![FlakyFault::crash_after_ops(2)]),
        );
        d.write_at(0, &[9, 9]).unwrap();
        assert!(d.write_at(2, &[8, 8]).is_err());
        assert_eq!(inner.snapshot(), vec![9, 9, 0, 0]);
    }

    #[test]
    fn crash_on_shared_clock_settles_on_next_operation() {
        // The crash fires on device A; device B's journal must still be
        // applied when B next observes the crash (or via settle_crash).
        let clock = FaultClock::new(vec![FlakyFault::crash_after_ops(3)]);
        let inner_a = Arc::new(MemDevice::with_len(4));
        let inner_b = Arc::new(MemDevice::with_len(4));
        let a = FlakyDevice::with_clock(Arc::clone(&inner_a), Arc::clone(&clock))
            .crash_model(UnsyncedFate::Lost);
        let b = FlakyDevice::with_clock(Arc::clone(&inner_b), Arc::clone(&clock))
            .crash_model(UnsyncedFate::Lost);
        b.write_at(0, &[5, 5]).unwrap(); // op 1
        a.write_at(0, &[6, 6]).unwrap(); // op 2
        assert!(a.write_at(2, &[7, 7]).is_err()); // op 3: crash, A settles
        assert_eq!(inner_a.snapshot(), vec![0; 4]);
        // B has not run an op since the crash; settle it explicitly.
        b.settle_crash();
        assert_eq!(inner_b.snapshot(), vec![0; 4]);
    }

    #[test]
    fn bit_rot_corrupts_a_read_silently() {
        let d = dev(vec![FlakyFault::bit_rot(FaultOp::Read, 2)]);
        d.write_at(0, &[7u8; 16]).unwrap();
        let mut clean = [0u8; 16];
        d.read_at(0, &mut clean).unwrap(); // read 1: clean
        assert_eq!(clean, [7u8; 16]);
        let mut rotted = [0u8; 16];
        d.read_at(0, &mut rotted).unwrap(); // read 2: rotted, but Ok
        assert_ne!(rotted, [7u8; 16]);
        assert_eq!(rotted.iter().filter(|&&b| b != 7).count(), 1);
        assert_eq!(d.clock().rotted(), 1);
        assert_eq!(d.clock().injected(), 1);
        // Healed afterwards, and the media itself was never touched.
        d.read_at(0, &mut clean).unwrap();
        assert_eq!(clean, [7u8; 16]);
    }

    #[test]
    fn bit_rot_on_write_persists_corruption() {
        let inner = Arc::new(MemDevice::with_len(4096));
        let d = FlakyDevice::with_clock(
            Arc::clone(&inner),
            FaultClock::new(vec![FlakyFault::bit_rot(FaultOp::Write, 1)]),
        );
        d.write_at(0, &[3u8; 8]).unwrap(); // succeeds, but rots the media
        let mut buf = [0u8; 8];
        inner.read_at(0, &mut buf).unwrap();
        assert_ne!(buf, [3u8; 8]);
        assert_eq!(buf.iter().filter(|&&b| b != 3).count(), 1);
        assert_eq!(d.clock().rotted(), 1);
    }

    #[test]
    fn bit_rot_on_sync_is_harmless() {
        let d = dev(vec![FlakyFault::bit_rot(FaultOp::Sync, 1)]);
        d.write_at(0, b"ok").unwrap();
        d.sync().unwrap();
        let mut buf = [0u8; 2];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ok");
        assert_eq!(d.clock().rotted(), 1);
    }

    #[test]
    fn seeded_rot_storm_is_deterministic() {
        let run = |seed| {
            let clock = FaultClock::seeded_with_rot(seed, 50, 200);
            let d = FlakyDevice::with_clock(Arc::new(MemDevice::with_len(4096)), clock);
            let mut outcomes = Vec::new();
            for i in 0..128u64 {
                let mut buf = [0u8; 4];
                d.write_at(i % 64, &[i as u8; 4]).ok();
                outcomes.push(d.read_at(i % 64, &mut buf).map(|()| buf).ok());
            }
            (outcomes, d.clock().rotted(), d.clock().injected())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        let (_, rotted, injected) = run(9);
        assert!(rotted > 0, "a 20% rot storm over 256 ops must rot");
        assert!(injected > rotted, "transient channel fires too");
    }

    #[test]
    fn rot_free_seeded_clock_keeps_its_stream() {
        // seeded() must behave identically to historical behavior: the
        // rot roll is skipped entirely when rot_per_mille == 0.
        let a = FlakyDevice::seeded(Arc::new(MemDevice::with_len(4096)), 42, 300);
        let b = {
            let clock = FaultClock::seeded_with_rot(42, 300, 0);
            FlakyDevice::with_clock(Arc::new(MemDevice::with_len(4096)), clock)
        };
        for i in 0..64 {
            assert_eq!(
                a.write_at(i % 8, b"z").is_ok(),
                b.write_at(i % 8, b"z").is_ok()
            );
        }
    }

    #[test]
    fn ops_seen_counts_per_kind() {
        let d = dev(vec![]);
        let mut buf = [0u8; 1];
        d.write_at(0, b"a").unwrap();
        d.write_at(1, b"b").unwrap();
        d.read_at(0, &mut buf).unwrap();
        d.sync().unwrap();
        assert_eq!(d.clock().ops_seen(), (1, 2, 1));
        assert_eq!(d.clock().total_ops(), 4);
    }
}
