//! C-compatible interface to `rvm-rs`, mirroring the original library's
//! `rvm.h`.
//!
//! The paper's RVM was a C library ("A Unix programmer thinks of RVM in
//! essentially the same way he thinks of a typical subroutine library,
//! such as the stdio package", §10), and its flagship user — the Coda
//! file system — is a C program. This crate exposes the same operation
//! set over a C ABI so existing C code bases can link against the Rust
//! implementation: opaque handles, integer return codes, and the
//! pointer-based `set_range` idiom.
//!
//! ```c
//! rvm_t*    rvm;
//! rvm_region_t* region;
//! rvm_tid_t*    tid;
//!
//! rvm_initialize("app.rvmlog", 1, &rvm);
//! rvm_map(rvm, "accounts.seg", 0, 4096, &region);
//! rvm_begin_transaction(rvm, RVM_RESTORE, &tid);
//! char* base = rvm_region_base(region);
//! rvm_set_range(tid, region, 0, 8);
//! memcpy(base, &balance, 8);
//! rvm_end_transaction(tid, RVM_FLUSH);
//! rvm_terminate(rvm);
//! ```
//!
//! Every function validates its pointers, catches panics at the FFI
//! boundary, and reports failure through [`RvmReturn`] codes decoded by
//! [`rvm_strerror`].

use std::ffi::{c_char, c_int, CStr};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, RvmError, Transaction, TxnMode};
use rvm_storage::FileDevice;

/// Return codes of the C interface (the original's `rvm_return_t`).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvmReturn {
    /// Operation succeeded.
    RvmSuccess = 0,
    /// A required pointer argument was null or invalid UTF-8.
    RvmEInvalid = 1,
    /// Log device could not be opened or is not a valid RVM log.
    RvmELog = 2,
    /// Mapping violated the §4.1 rules (overlap, alignment, duplicates).
    RvmEMapping = 3,
    /// Offset/length outside the region.
    RvmERange = 4,
    /// Region is not mapped.
    RvmENotMapped = 5,
    /// Region has uncommitted transactions outstanding.
    RvmEBusy = 6,
    /// The transaction has already ended.
    RvmETidEnded = 7,
    /// Abort requested on a no-restore transaction.
    RvmENoRestore = 8,
    /// The log is full.
    RvmELogFull = 9,
    /// Transactions outstanding at terminate.
    RvmETxnsOutstanding = 10,
    /// Device-level I/O failure.
    RvmEIo = 11,
    /// The library instance has been terminated.
    RvmETerminated = 12,
    /// A panic was caught at the FFI boundary (library bug).
    RvmEPanic = 13,
    /// The instance is poisoned after an unrecoverable I/O failure; only
    /// reads and `rvm_query` remain usable.
    RvmEPoisoned = 14,
    /// A transient device fault exhausted its retry budget; the operation
    /// may succeed if reissued on a fresh instance.
    RvmEIoTransient = 15,
    /// Unrecoverable media corruption: the region is quarantined into
    /// read-only degraded mode (the original's `RVM_EMEDIA` territory —
    /// media recovery the paper delegated to mirroring, §2).
    RvmEMedia = 16,
}

/// `restore_mode` values for [`rvm_begin_transaction`].
pub const RVM_RESTORE: c_int = 0;
/// No-restore mode: the transaction promises never to abort.
pub const RVM_NO_RESTORE: c_int = 1;
/// `commit_mode` values for [`rvm_end_transaction`].
pub const RVM_FLUSH: c_int = 0;
/// Lazy commit: records spool until the next `rvm_flush`.
pub const RVM_NO_FLUSH: c_int = 1;

fn map_err(e: &RvmError) -> RvmReturn {
    match e {
        RvmError::Device(d) if d.is_transient() => RvmReturn::RvmEIoTransient,
        RvmError::Device(_) => RvmReturn::RvmEIo,
        RvmError::BadLog(_) => RvmReturn::RvmELog,
        RvmError::LogFull { .. } => RvmReturn::RvmELogFull,
        RvmError::BadMapping(_) | RvmError::SegmentTableFull => RvmReturn::RvmEMapping,
        RvmError::OutOfRange { .. } | RvmError::EmptyRange { .. } => RvmReturn::RvmERange,
        RvmError::Unmapped => RvmReturn::RvmENotMapped,
        RvmError::RegionBusy { .. } => RvmReturn::RvmEBusy,
        RvmError::CannotAbortNoRestore => RvmReturn::RvmENoRestore,
        RvmError::TransactionEnded => RvmReturn::RvmETidEnded,
        RvmError::TransactionsOutstanding(_) => RvmReturn::RvmETxnsOutstanding,
        RvmError::Terminated => RvmReturn::RvmETerminated,
        RvmError::Poisoned => RvmReturn::RvmEPoisoned,
        RvmError::Media(_) => RvmReturn::RvmEMedia,
    }
}

fn guarded(f: impl FnOnce() -> RvmReturn) -> RvmReturn {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or(RvmReturn::RvmEPanic)
}

/// Opaque library handle.
pub struct RvmHandle {
    rvm: Rvm,
}

/// Opaque region handle.
pub struct RegionHandle {
    region: Region,
}

/// Opaque transaction handle.
///
/// The inner option is consumed by end/abort; further operations return
/// [`RvmReturn::RvmETidEnded`].
pub struct TidHandle {
    txn: Option<Transaction>,
}

// SAFETY: dereferences a caller-supplied pointer; callers of the helper
// uphold the C contract that handles come from this library and are not
// aliased mutably.
unsafe fn deref<'a, T>(p: *mut T) -> Option<&'a mut T> {
    // SAFETY: see above; null is checked here.
    unsafe { p.as_mut() }
}

fn cstr<'a>(p: *const c_char) -> Option<&'a str> {
    if p.is_null() {
        return None;
    }
    // SAFETY: the caller passes a NUL-terminated C string, per the ABI.
    unsafe { CStr::from_ptr(p) }.to_str().ok()
}

/// Formats `log_path` as an empty RVM log of `len` bytes (the paper's
/// `create_log`).
///
/// # Safety
///
/// `log_path` must be a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn rvm_create_log(log_path: *const c_char, len: u64) -> RvmReturn {
    guarded(|| {
        let Some(path) = cstr(log_path) else {
            return RvmReturn::RvmEInvalid;
        };
        let dev = match FileDevice::open_or_create(path, len) {
            Ok(d) => d,
            Err(_) => return RvmReturn::RvmEIo,
        };
        match Rvm::create_log(&dev) {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Initializes the library over the log at `log_path`, running crash
/// recovery; writes the handle to `*out`.
///
/// With `create != 0` the log is formatted if absent or empty
/// (`options_desc`'s creation flag in the original).
///
/// # Safety
///
/// `log_path` must be a valid NUL-terminated string; `out` must point to
/// writable storage for one pointer.
#[no_mangle]
pub unsafe extern "C" fn rvm_initialize(
    log_path: *const c_char,
    create: c_int,
    out: *mut *mut RvmHandle,
) -> RvmReturn {
    guarded(|| {
        let Some(path) = cstr(log_path) else {
            return RvmReturn::RvmEInvalid;
        };
        if out.is_null() {
            return RvmReturn::RvmEInvalid;
        }
        let dev = match FileDevice::open_or_create(path, 4 << 20) {
            Ok(d) => d,
            Err(_) => return RvmReturn::RvmEIo,
        };
        let mut options = Options::new(Arc::new(dev));
        if create != 0 {
            options = options.create_if_empty();
        }
        match Rvm::initialize(options) {
            Ok(rvm) => {
                // SAFETY: `out` checked non-null above.
                unsafe { *out = Box::into_raw(Box::new(RvmHandle { rvm })) };
                RvmReturn::RvmSuccess
            }
            Err(e) => map_err(&e),
        }
    })
}

/// Maps `[offset, offset + len)` of the named segment; writes the region
/// handle to `*out`.
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`]; `segment` must be a valid
/// NUL-terminated string; `out` must be writable.
#[no_mangle]
pub unsafe extern "C" fn rvm_map(
    handle: *mut RvmHandle,
    segment: *const c_char,
    offset: u64,
    len: u64,
    out: *mut *mut RegionHandle,
) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(h) = (unsafe { deref(handle) }) else {
            return RvmReturn::RvmEInvalid;
        };
        let Some(segment) = cstr(segment) else {
            return RvmReturn::RvmEInvalid;
        };
        if out.is_null() {
            return RvmReturn::RvmEInvalid;
        }
        match h.rvm.map(&RegionDescriptor::new(segment, offset, len)) {
            Ok(region) => {
                // SAFETY: `out` checked non-null above.
                unsafe { *out = Box::into_raw(Box::new(RegionHandle { region })) };
                RvmReturn::RvmSuccess
            }
            Err(e) => map_err(&e),
        }
    })
}

/// Unmaps a region. The handle remains owned by the caller and must
/// still be released with [`rvm_free_region`].
///
/// # Safety
///
/// Both handles must come from this library.
#[no_mangle]
pub unsafe extern "C" fn rvm_unmap(handle: *mut RvmHandle, region: *mut RegionHandle) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let (Some(h), Some(r)) = (unsafe { deref(handle) }, unsafe { deref(region) }) else {
            return RvmReturn::RvmEInvalid;
        };
        match h.rvm.unmap(&r.region) {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Releases a region handle (the mapping itself is unaffected).
///
/// # Safety
///
/// `region` must come from [`rvm_map`] and must not be used afterwards.
#[no_mangle]
pub unsafe extern "C" fn rvm_free_region(region: *mut RegionHandle) {
    if !region.is_null() {
        // SAFETY: ownership transferred back per the contract.
        drop(unsafe { Box::from_raw(region) });
    }
}

/// Base address of the region's memory, for direct C struct access.
/// Returns null for an invalid handle.
///
/// # Safety
///
/// `region` must come from [`rvm_map`].
#[no_mangle]
pub unsafe extern "C" fn rvm_region_base(region: *mut RegionHandle) -> *mut u8 {
    // SAFETY: forwarded caller contract.
    match unsafe { deref(region) } {
        Some(r) => r.region.base_ptr(),
        None => std::ptr::null_mut(),
    }
}

/// Region length in bytes (0 for an invalid handle).
///
/// # Safety
///
/// `region` must come from [`rvm_map`].
#[no_mangle]
pub unsafe extern "C" fn rvm_region_len(region: *mut RegionHandle) -> u64 {
    // SAFETY: forwarded caller contract.
    match unsafe { deref(region) } {
        Some(r) => r.region.len(),
        None => 0,
    }
}

/// Begins a transaction; `restore_mode` is [`RVM_RESTORE`] or
/// [`RVM_NO_RESTORE`].
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`]; `out` must be writable.
#[no_mangle]
pub unsafe extern "C" fn rvm_begin_transaction(
    handle: *mut RvmHandle,
    restore_mode: c_int,
    out: *mut *mut TidHandle,
) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(h) = (unsafe { deref(handle) }) else {
            return RvmReturn::RvmEInvalid;
        };
        if out.is_null() {
            return RvmReturn::RvmEInvalid;
        }
        let mode = if restore_mode == RVM_NO_RESTORE {
            TxnMode::NoRestore
        } else {
            TxnMode::Restore
        };
        match h.rvm.begin_transaction(mode) {
            Ok(txn) => {
                // SAFETY: `out` checked non-null above.
                unsafe { *out = Box::into_raw(Box::new(TidHandle { txn: Some(txn) })) };
                RvmReturn::RvmSuccess
            }
            Err(e) => map_err(&e),
        }
    })
}

/// Declares `[offset, offset + len)` of `region` as about to be
/// modified.
///
/// # Safety
///
/// Handles must come from this library.
#[no_mangle]
pub unsafe extern "C" fn rvm_set_range(
    tid: *mut TidHandle,
    region: *mut RegionHandle,
    offset: u64,
    len: u64,
) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let (Some(t), Some(r)) = (unsafe { deref(tid) }, unsafe { deref(region) }) else {
            return RvmReturn::RvmEInvalid;
        };
        let Some(txn) = t.txn.as_mut() else {
            return RvmReturn::RvmETidEnded;
        };
        match txn.set_range(&r.region, offset, len) {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Pointer-based `set_range`, matching the original signature: `addr`
/// must point into the region's memory (see [`rvm_region_base`]).
///
/// # Safety
///
/// Handles must come from this library; `addr` need not be valid to
/// dereference (it is only translated), but must be the caller's honest
/// target address.
#[no_mangle]
pub unsafe extern "C" fn rvm_set_range_ptr(
    tid: *mut TidHandle,
    region: *mut RegionHandle,
    addr: *const u8,
    len: u64,
) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let (Some(t), Some(r)) = (unsafe { deref(tid) }, unsafe { deref(region) }) else {
            return RvmReturn::RvmEInvalid;
        };
        let Some(txn) = t.txn.as_mut() else {
            return RvmReturn::RvmETidEnded;
        };
        match txn.set_range_ptr(&r.region, addr, len) {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Commits the transaction; `commit_mode` is [`RVM_FLUSH`] or
/// [`RVM_NO_FLUSH`]. The handle is consumed but must still be released
/// with [`rvm_free_tid`].
///
/// # Safety
///
/// `tid` must come from [`rvm_begin_transaction`].
#[no_mangle]
pub unsafe extern "C" fn rvm_end_transaction(tid: *mut TidHandle, commit_mode: c_int) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(t) = (unsafe { deref(tid) }) else {
            return RvmReturn::RvmEInvalid;
        };
        let Some(txn) = t.txn.take() else {
            return RvmReturn::RvmETidEnded;
        };
        let mode = if commit_mode == RVM_NO_FLUSH {
            CommitMode::NoFlush
        } else {
            CommitMode::Flush
        };
        match txn.commit(mode) {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Aborts the transaction, restoring old values (restore mode only).
///
/// # Safety
///
/// `tid` must come from [`rvm_begin_transaction`].
#[no_mangle]
pub unsafe extern "C" fn rvm_abort_transaction(tid: *mut TidHandle) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(t) = (unsafe { deref(tid) }) else {
            return RvmReturn::RvmEInvalid;
        };
        let Some(txn) = t.txn.take() else {
            return RvmReturn::RvmETidEnded;
        };
        match txn.abort() {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Releases a transaction handle (aborting it if still active).
///
/// # Safety
///
/// `tid` must come from [`rvm_begin_transaction`] and must not be used
/// afterwards.
#[no_mangle]
pub unsafe extern "C" fn rvm_free_tid(tid: *mut TidHandle) {
    if !tid.is_null() {
        // SAFETY: ownership transferred back per the contract.
        drop(unsafe { Box::from_raw(tid) });
    }
}

/// Forces all spooled no-flush commits to the log.
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`].
#[no_mangle]
pub unsafe extern "C" fn rvm_flush(handle: *mut RvmHandle) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(h) = (unsafe { deref(handle) }) else {
            return RvmReturn::RvmEInvalid;
        };
        match h.rvm.flush() {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// Applies all committed log records to their segments and reclaims the
/// space.
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`].
#[no_mangle]
pub unsafe extern "C" fn rvm_truncate(handle: *mut RvmHandle) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(h) = (unsafe { deref(handle) }) else {
            return RvmReturn::RvmEInvalid;
        };
        match h.rvm.truncate() {
            Ok(()) => RvmReturn::RvmSuccess,
            Err(e) => map_err(&e),
        }
    })
}

/// `query` results, C layout.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct RvmQuery {
    /// Transactions begun but not ended.
    pub active_transactions: u64,
    /// Committed no-flush transactions awaiting a flush.
    pub spooled_transactions: u64,
    /// Live log bytes.
    pub log_used: u64,
    /// Log record-area capacity.
    pub log_capacity: u64,
    /// Transactions committed so far.
    pub txns_committed: u64,
    /// Record bytes written to the log.
    pub bytes_logged: u64,
    /// Log forces issued (shared across a group-commit batch).
    pub log_forces: u64,
    /// Flush-mode commits; `log_forces < flush_commits` means group
    /// commit amortized forces.
    pub flush_commits: u64,
    /// Group-commit batches completed.
    pub group_commit_batches: u64,
    /// Epochs truncated concurrently with forward processing.
    pub epochs_truncated: u64,
    /// Commits that completed while an epoch apply was running.
    pub commits_during_truncation: u64,
    /// Nanoseconds committers spent waiting on truncation for log space.
    pub truncation_stall_ns: u64,
    /// Nonzero while an epoch truncation is applying its frozen span.
    pub truncation_in_flight: u64,
    /// Healthy replicas across every mirrored device in play (0 when
    /// nothing is mirrored).
    pub replicas_alive: u64,
    /// Total replicas across those mirrors; `replicas_alive <
    /// replicas_total` means a mirror is running degraded.
    pub replicas_total: u64,
    /// Segment pages verified against their checksum catalogs by scrub
    /// passes.
    pub pages_scrubbed: u64,
    /// Checksum mismatches detected (scrub, verified reads, truncation).
    pub corruptions_detected: u64,
    /// Detected corruptions healed by the repair ladder (mirror
    /// read-repair, log reconstruction, VM rewrite).
    pub corruptions_repaired: u64,
    /// Regions quarantined into read-only degraded mode
    /// ([`RvmReturn::RvmEMedia`]).
    pub regions_quarantined: u64,
    /// Group-commit batches submitted through the pipelined log writer
    /// (writes and force in flight while the next batch filled).
    pub pipeline_submits: u64,
    /// High-water mark of forces simultaneously in flight (≥ 2 means the
    /// pipeline actually overlapped device work).
    pub forces_in_flight_hw: u64,
    /// Nanoseconds pipelined leaders stalled waiting for a staging
    /// buffer (i.e. for an in-flight force to complete).
    pub pipeline_stall_ns: u64,
}

/// Fills `*out` with library state (the paper's `query`).
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`]; `out` must be writable.
#[no_mangle]
pub unsafe extern "C" fn rvm_query(handle: *mut RvmHandle, out: *mut RvmQuery) -> RvmReturn {
    guarded(|| {
        // SAFETY: forwarded caller contract.
        let Some(h) = (unsafe { deref(handle) }) else {
            return RvmReturn::RvmEInvalid;
        };
        if out.is_null() {
            return RvmReturn::RvmEInvalid;
        }
        let q = h.rvm.query();
        // SAFETY: `out` checked non-null above.
        unsafe {
            *out = RvmQuery {
                active_transactions: q.active_transactions,
                spooled_transactions: q.spooled_transactions as u64,
                log_used: q.log.used,
                log_capacity: q.log.capacity,
                txns_committed: q.stats.txns_committed,
                bytes_logged: q.stats.bytes_logged,
                log_forces: q.stats.log_forces,
                flush_commits: q.stats.flush_commits,
                group_commit_batches: q.stats.group_commit_batches,
                epochs_truncated: q.stats.epochs_truncated,
                commits_during_truncation: q.stats.commits_during_truncation,
                truncation_stall_ns: q.stats.truncation_stall_ns,
                truncation_in_flight: u64::from(q.truncation_in_flight),
                replicas_alive: q.replicas_alive as u64,
                replicas_total: q.replicas_total as u64,
                pages_scrubbed: q.stats.pages_scrubbed,
                corruptions_detected: q.stats.corruptions_detected,
                corruptions_repaired: q.stats.corruptions_repaired,
                regions_quarantined: q.stats.regions_quarantined,
                pipeline_submits: q.stats.pipeline_submits,
                forces_in_flight_hw: q.stats.forces_in_flight_hw,
                pipeline_stall_ns: q.stats.pipeline_stall_ns,
            };
        }
        RvmReturn::RvmSuccess
    })
}

/// Shuts the library down cleanly and releases the handle. On error
/// (e.g. transactions outstanding) the handle is *still* released, as
/// the original `rvm_terminate` left the library unusable either way.
///
/// # Safety
///
/// `handle` must come from [`rvm_initialize`] and must not be used
/// afterwards.
#[no_mangle]
pub unsafe extern "C" fn rvm_terminate(handle: *mut RvmHandle) -> RvmReturn {
    guarded(|| {
        if handle.is_null() {
            return RvmReturn::RvmEInvalid;
        }
        // SAFETY: ownership transferred back per the contract.
        let h = unsafe { Box::from_raw(handle) };
        match h.rvm.terminate() {
            Ok(()) => RvmReturn::RvmSuccess,
            // The Rust API hands the instance back for a retry; the C
            // contract releases the handle either way, so drop it here.
            Err(failure) => map_err(&failure.error),
        }
    })
}

/// A static, NUL-terminated description of a return code.
#[no_mangle]
pub extern "C" fn rvm_strerror(code: RvmReturn) -> *const c_char {
    let s: &'static [u8] = match code {
        RvmReturn::RvmSuccess => b"success\0",
        RvmReturn::RvmEInvalid => b"invalid argument\0",
        RvmReturn::RvmELog => b"not a valid RVM log\0",
        RvmReturn::RvmEMapping => b"bad mapping\0",
        RvmReturn::RvmERange => b"offset/length out of range\0",
        RvmReturn::RvmENotMapped => b"region not mapped\0",
        RvmReturn::RvmEBusy => b"region busy\0",
        RvmReturn::RvmETidEnded => b"transaction already ended\0",
        RvmReturn::RvmENoRestore => b"no-restore transactions cannot abort\0",
        RvmReturn::RvmELogFull => b"log full\0",
        RvmReturn::RvmETxnsOutstanding => b"transactions outstanding\0",
        RvmReturn::RvmEIo => b"device I/O error\0",
        RvmReturn::RvmETerminated => b"library terminated\0",
        RvmReturn::RvmEPanic => b"internal panic\0",
        RvmReturn::RvmEPoisoned => b"instance poisoned by unrecoverable I/O failure\0",
        RvmReturn::RvmEIoTransient => b"transient device fault exhausted retries\0",
        RvmReturn::RvmEMedia => b"unrecoverable media corruption; region quarantined read-only\0",
    };
    s.as_ptr() as *const c_char
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    struct TempLog(std::path::PathBuf);

    impl TempLog {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("rvm-capi-{}-{tag}.log", std::process::id()));
            let _ = std::fs::remove_file(&p);
            Self(p)
        }

        fn c_path(&self) -> CString {
            CString::new(self.0.to_str().unwrap()).unwrap()
        }
    }

    impl Drop for TempLog {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn temp_seg(tag: &str) -> (CString, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("rvm-capi-{}-{tag}.seg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        (CString::new(p.to_str().unwrap()).unwrap(), p)
    }

    #[test]
    fn full_c_lifecycle_with_crash_recovery() {
        let log = TempLog::new("life");
        let (seg, seg_path) = temp_seg("life");

        // SAFETY: test exercises the C contract with valid arguments.
        unsafe {
            // First life: write through the pointer API and "crash" by
            // leaking the handle.
            let mut h: *mut RvmHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_initialize(log.c_path().as_ptr(), 1, &mut h),
                RvmReturn::RvmSuccess
            );
            let mut r: *mut RegionHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_map(h, seg.as_ptr(), 0, 4096, &mut r),
                RvmReturn::RvmSuccess
            );
            assert_eq!(rvm_region_len(r), 4096);
            let base = rvm_region_base(r);
            assert!(!base.is_null());

            let mut tid: *mut TidHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_begin_transaction(h, RVM_RESTORE, &mut tid),
                RvmReturn::RvmSuccess
            );
            assert_eq!(rvm_set_range_ptr(tid, r, base, 8), RvmReturn::RvmSuccess);
            std::ptr::copy_nonoverlapping(c"C-durab".as_ptr().cast::<u8>(), base, 8);
            assert_eq!(rvm_end_transaction(tid, RVM_FLUSH), RvmReturn::RvmSuccess);
            rvm_free_tid(tid);

            let mut q = RvmQuery::default();
            assert_eq!(rvm_query(h, &mut q), RvmReturn::RvmSuccess);
            assert_eq!(q.txns_committed, 1);
            assert_eq!(q.flush_commits, 1);
            assert_eq!(q.log_forces, 1, "a lone flush commit still forces once");
            rvm_free_region(r);
            std::mem::forget(Box::from_raw(h)); // crash: leak the Box

            // Second life: recovery restores the committed state.
            let mut h2: *mut RvmHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_initialize(log.c_path().as_ptr(), 0, &mut h2),
                RvmReturn::RvmSuccess
            );
            let mut r2: *mut RegionHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_map(h2, seg.as_ptr(), 0, 4096, &mut r2),
                RvmReturn::RvmSuccess
            );
            let base2 = rvm_region_base(r2);
            let mut got = [0u8; 8];
            std::ptr::copy_nonoverlapping(base2, got.as_mut_ptr(), 8);
            assert_eq!(&got, b"C-durab\0");
            rvm_free_region(r2);
            assert_eq!(rvm_terminate(h2), RvmReturn::RvmSuccess);
        }
        let _ = std::fs::remove_file(seg_path);
    }

    #[test]
    fn abort_and_error_codes() {
        let log = TempLog::new("abort");
        let (seg, seg_path) = temp_seg("abort");
        // SAFETY: test exercises the C contract with valid arguments.
        unsafe {
            let mut h: *mut RvmHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_initialize(log.c_path().as_ptr(), 1, &mut h),
                RvmReturn::RvmSuccess
            );
            let mut r: *mut RegionHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_map(h, seg.as_ptr(), 0, 4096, &mut r),
                RvmReturn::RvmSuccess
            );

            // Abort restores old values.
            let mut tid: *mut TidHandle = std::ptr::null_mut();
            rvm_begin_transaction(h, RVM_RESTORE, &mut tid);
            assert_eq!(rvm_set_range(tid, r, 0, 4), RvmReturn::RvmSuccess);
            let base = rvm_region_base(r);
            base.write_bytes(0xAB, 4);
            assert_eq!(rvm_abort_transaction(tid), RvmReturn::RvmSuccess);
            // Double end is reported.
            assert_eq!(rvm_end_transaction(tid, RVM_FLUSH), RvmReturn::RvmETidEnded);
            rvm_free_tid(tid);
            assert_eq!(base.read(), 0, "abort restored the zero image");

            // Range errors: past the end and zero-length alike.
            let mut tid2: *mut TidHandle = std::ptr::null_mut();
            rvm_begin_transaction(h, RVM_RESTORE, &mut tid2);
            assert_eq!(rvm_set_range(tid2, r, 4000, 200), RvmReturn::RvmERange);
            assert_eq!(rvm_set_range(tid2, r, 100, 0), RvmReturn::RvmERange);
            assert_eq!(rvm_end_transaction(tid2, RVM_FLUSH), RvmReturn::RvmSuccess);
            // Declaring against an ended transaction is refused — the C
            // library's use-after-end bug, reported instead of ignored.
            assert_eq!(rvm_set_range(tid2, r, 0, 4), RvmReturn::RvmETidEnded);
            assert_eq!(
                rvm_set_range_ptr(tid2, r, rvm_region_base(r), 4),
                RvmReturn::RvmETidEnded
            );
            rvm_free_tid(tid2);

            // No-restore abort is refused.
            let mut tid3: *mut TidHandle = std::ptr::null_mut();
            rvm_begin_transaction(h, RVM_NO_RESTORE, &mut tid3);
            assert_eq!(rvm_abort_transaction(tid3), RvmReturn::RvmENoRestore);
            rvm_free_tid(tid3);

            rvm_free_region(r);
            assert_eq!(rvm_terminate(h), RvmReturn::RvmSuccess);
        }
        let _ = std::fs::remove_file(seg_path);
    }

    #[test]
    fn null_arguments_are_rejected_not_crashed() {
        // SAFETY: passing nulls is exactly what is being tested; the
        // functions must reject them.
        unsafe {
            let mut h: *mut RvmHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_initialize(std::ptr::null(), 1, &mut h),
                RvmReturn::RvmEInvalid
            );
            assert_eq!(
                rvm_map(
                    std::ptr::null_mut(),
                    std::ptr::null(),
                    0,
                    0,
                    std::ptr::null_mut()
                ),
                RvmReturn::RvmEInvalid
            );
            assert_eq!(rvm_flush(std::ptr::null_mut()), RvmReturn::RvmEInvalid);
            assert_eq!(rvm_truncate(std::ptr::null_mut()), RvmReturn::RvmEInvalid);
            assert_eq!(
                rvm_set_range(std::ptr::null_mut(), std::ptr::null_mut(), 0, 0),
                RvmReturn::RvmEInvalid
            );
            assert!(rvm_region_base(std::ptr::null_mut()).is_null());
            rvm_free_region(std::ptr::null_mut());
            rvm_free_tid(std::ptr::null_mut());
            assert_eq!(rvm_terminate(std::ptr::null_mut()), RvmReturn::RvmEInvalid);
        }
    }

    #[test]
    fn strerror_covers_every_code() {
        for code in [
            RvmReturn::RvmSuccess,
            RvmReturn::RvmEInvalid,
            RvmReturn::RvmELog,
            RvmReturn::RvmEMapping,
            RvmReturn::RvmERange,
            RvmReturn::RvmENotMapped,
            RvmReturn::RvmEBusy,
            RvmReturn::RvmETidEnded,
            RvmReturn::RvmENoRestore,
            RvmReturn::RvmELogFull,
            RvmReturn::RvmETxnsOutstanding,
            RvmReturn::RvmEIo,
            RvmReturn::RvmETerminated,
            RvmReturn::RvmEPanic,
            RvmReturn::RvmEPoisoned,
            RvmReturn::RvmEIoTransient,
            RvmReturn::RvmEMedia,
        ] {
            let p = rvm_strerror(code);
            assert!(!p.is_null());
            // SAFETY: rvm_strerror returns a static NUL-terminated string.
            let s = unsafe { CStr::from_ptr(p) }.to_str().unwrap();
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn no_flush_then_c_flush_persists() {
        let log = TempLog::new("noflush");
        let (seg, seg_path) = temp_seg("noflush");
        // SAFETY: valid arguments throughout.
        unsafe {
            let mut h: *mut RvmHandle = std::ptr::null_mut();
            rvm_initialize(log.c_path().as_ptr(), 1, &mut h);
            let mut r: *mut RegionHandle = std::ptr::null_mut();
            rvm_map(h, seg.as_ptr(), 0, 4096, &mut r);
            let mut tid: *mut TidHandle = std::ptr::null_mut();
            rvm_begin_transaction(h, RVM_RESTORE, &mut tid);
            rvm_set_range(tid, r, 0, 4);
            rvm_region_base(r).write_bytes(0x5A, 4);
            assert_eq!(
                rvm_end_transaction(tid, RVM_NO_FLUSH),
                RvmReturn::RvmSuccess
            );
            rvm_free_tid(tid);
            let mut q = RvmQuery::default();
            rvm_query(h, &mut q);
            assert_eq!(q.spooled_transactions, 1);
            assert_eq!(rvm_flush(h), RvmReturn::RvmSuccess);
            rvm_query(h, &mut q);
            assert_eq!(q.spooled_transactions, 0);
            assert_eq!(rvm_truncate(h), RvmReturn::RvmSuccess);
            rvm_free_region(r);
            rvm_terminate(h);
        }
        // The segment file itself now holds the bytes.
        let seg_bytes = std::fs::read(&seg_path).unwrap();
        assert_eq!(&seg_bytes[..4], &[0x5A; 4]);
        let _ = std::fs::remove_file(seg_path);
    }

    #[test]
    fn query_round_trips_pipeline_counters() {
        use rvm::segment::MemResolver;
        use rvm::Tuning;
        use rvm_storage::MemDevice;

        // The C entry point has no tuning parameter, so build the handle
        // around a pipelined instance directly — the query path is the
        // thing under test, not initialization.
        let rvm = Rvm::initialize(
            Options::new(Arc::new(MemDevice::with_len(4 << 20)))
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty()
                .tuning(Tuning {
                    log_pipeline: true,
                    ..Tuning::default()
                }),
        )
        .unwrap();
        let h = Box::into_raw(Box::new(RvmHandle { rvm }));
        // SAFETY: `h` is a live handle from the Box above; pointers passed
        // to the C functions are valid for the duration of each call.
        unsafe {
            let mut r: *mut RegionHandle = std::ptr::null_mut();
            assert_eq!(
                rvm_map(h, c"seg".as_ptr(), 0, 4096, &mut r),
                RvmReturn::RvmSuccess
            );
            for i in 0..4u8 {
                let mut tid: *mut TidHandle = std::ptr::null_mut();
                rvm_begin_transaction(h, RVM_RESTORE, &mut tid);
                assert_eq!(rvm_set_range(tid, r, 0, 8), RvmReturn::RvmSuccess);
                rvm_region_base(r).write_bytes(i, 8);
                assert_eq!(rvm_end_transaction(tid, RVM_FLUSH), RvmReturn::RvmSuccess);
                rvm_free_tid(tid);
            }

            // The C-side struct must agree field-for-field with the Rust
            // query the pipeline counters come from.
            let expect = (*h).rvm.query();
            let mut q = RvmQuery::default();
            assert_eq!(rvm_query(h, &mut q), RvmReturn::RvmSuccess);
            assert_eq!(q.pipeline_submits, expect.stats.pipeline_submits);
            assert_eq!(q.forces_in_flight_hw, expect.stats.forces_in_flight_hw);
            assert_eq!(q.pipeline_stall_ns, expect.stats.pipeline_stall_ns);
            assert!(q.pipeline_submits >= 1, "pipeline never submitted: {q:?}");
            assert_eq!(q.flush_commits, 4);

            rvm_free_region(r);
            assert_eq!(rvm_terminate(h), RvmReturn::RvmSuccess);
        }
    }
}
