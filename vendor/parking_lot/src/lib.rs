//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `parking_lot` to this drop-in subset (see `vendor/README.md`).
//! Semantics match what the workspace relies on: non-poisoning mutexes,
//! rw-locks and condvars. A panicked holder's poison flag is swallowed,
//! exactly like `parking_lot` (which has no poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable for use with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
