//! A virtual clock for deterministic systems simulation.
//!
//! The RVM paper's evaluation (§7) is dominated by device latencies (a log
//! force averaged 17.4 ms on the authors' hardware) and by CPU path lengths
//! (a Mach IPC cost ~600× a local procedure call). Reproducing the *shape*
//! of those results on modern hardware requires charging those costs to a
//! simulated timeline rather than measuring wall-clock time.
//!
//! [`Clock`] is a shareable monotone virtual clock with three accounts:
//!
//! * **total** — the simulated timeline, advanced by every charge;
//! * **cpu** — time attributed to computation (Figure 9 reports this,
//!   amortized per transaction);
//! * **io** — time attributed to device activity (seeks, rotation,
//!   transfer, synchronous forces).
//!
//! All counters are atomic, so a clock may be shared across threads; the
//! paper's benchmark is single-threaded, so charges simply accumulate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

mod time;

pub use time::SimTime;

/// Which account a charge is attributed to.
///
/// Every charge advances the total timeline; the kind selects the secondary
/// account used for reporting (e.g. Figure 9 plots only [`ChargeKind::Cpu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargeKind {
    /// Computation: path lengths, IPC, context switches, fault service.
    Cpu,
    /// Device activity: seek, rotation, transfer, synchronous force.
    Io,
}

#[derive(Debug, Default)]
struct Accounts {
    total_ns: AtomicU64,
    cpu_ns: AtomicU64,
    io_ns: AtomicU64,
}

/// A shareable virtual clock.
///
/// Cloning is cheap and yields a handle onto the same timeline.
///
/// # Examples
///
/// ```
/// use simclock::{ChargeKind, Clock, SimTime};
///
/// let clock = Clock::new();
/// clock.charge(ChargeKind::Io, SimTime::from_millis(17));
/// clock.charge(ChargeKind::Cpu, SimTime::from_micros(430));
/// assert_eq!(clock.now(), SimTime::from_micros(17_430));
/// assert_eq!(clock.cpu_time(), SimTime::from_micros(430));
/// assert_eq!(clock.io_time(), SimTime::from_millis(17));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    accounts: Arc<Accounts>,
}

impl Clock {
    /// Creates a clock at time zero with empty accounts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.accounts.total_ns.load(Ordering::Relaxed))
    }

    /// Returns cumulative time charged to the CPU account.
    pub fn cpu_time(&self) -> SimTime {
        SimTime::from_nanos(self.accounts.cpu_ns.load(Ordering::Relaxed))
    }

    /// Returns cumulative time charged to the I/O account.
    pub fn io_time(&self) -> SimTime {
        SimTime::from_nanos(self.accounts.io_ns.load(Ordering::Relaxed))
    }

    /// Advances the timeline by `amount`, attributing it to `kind`.
    pub fn charge(&self, kind: ChargeKind, amount: SimTime) {
        let ns = amount.as_nanos();
        self.accounts.total_ns.fetch_add(ns, Ordering::Relaxed);
        match kind {
            ChargeKind::Cpu => self.accounts.cpu_ns.fetch_add(ns, Ordering::Relaxed),
            ChargeKind::Io => self.accounts.io_ns.fetch_add(ns, Ordering::Relaxed),
        };
    }

    /// Convenience for [`Clock::charge`] with [`ChargeKind::Cpu`].
    pub fn charge_cpu(&self, amount: SimTime) {
        self.charge(ChargeKind::Cpu, amount);
    }

    /// Convenience for [`Clock::charge`] with [`ChargeKind::Io`].
    pub fn charge_io(&self, amount: SimTime) {
        self.charge(ChargeKind::Io, amount);
    }

    /// Takes a snapshot of all three accounts, useful for per-phase deltas.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            total: self.now(),
            cpu: self.cpu_time(),
            io: self.io_time(),
        }
    }
}

/// A point-in-time copy of a clock's accounts.
///
/// Subtracting two snapshots gives the cost of the interval between them:
///
/// ```
/// use simclock::{Clock, SimTime};
///
/// let clock = Clock::new();
/// let before = clock.snapshot();
/// clock.charge_io(SimTime::from_millis(5));
/// let delta = clock.snapshot() - before;
/// assert_eq!(delta.io, SimTime::from_millis(5));
/// assert_eq!(delta.cpu, SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSnapshot {
    /// Total simulated time.
    pub total: SimTime,
    /// Time in the CPU account.
    pub cpu: SimTime,
    /// Time in the I/O account.
    pub io: SimTime,
}

impl std::ops::Sub for ClockSnapshot {
    type Output = ClockSnapshot;

    fn sub(self, rhs: ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            total: self.total - rhs.total,
            cpu: self.cpu - rhs.cpu,
            io: self.io - rhs.io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let clock = Clock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        assert_eq!(clock.cpu_time(), SimTime::ZERO);
        assert_eq!(clock.io_time(), SimTime::ZERO);
    }

    #[test]
    fn charges_accumulate_into_accounts() {
        let clock = Clock::new();
        clock.charge_cpu(SimTime::from_micros(100));
        clock.charge_io(SimTime::from_micros(900));
        clock.charge_cpu(SimTime::from_micros(1));
        assert_eq!(clock.now(), SimTime::from_micros(1001));
        assert_eq!(clock.cpu_time(), SimTime::from_micros(101));
        assert_eq!(clock.io_time(), SimTime::from_micros(900));
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.charge_io(SimTime::from_millis(3));
        assert_eq!(b.now(), SimTime::from_millis(3));
        b.charge_cpu(SimTime::from_millis(1));
        assert_eq!(a.now(), SimTime::from_millis(4));
        assert_eq!(a.cpu_time(), SimTime::from_millis(1));
    }

    #[test]
    fn snapshot_deltas() {
        let clock = Clock::new();
        clock.charge_io(SimTime::from_millis(10));
        let s1 = clock.snapshot();
        clock.charge_cpu(SimTime::from_millis(2));
        clock.charge_io(SimTime::from_millis(5));
        let delta = clock.snapshot() - s1;
        assert_eq!(delta.total, SimTime::from_millis(7));
        assert_eq!(delta.cpu, SimTime::from_millis(2));
        assert_eq!(delta.io, SimTime::from_millis(5));
    }

    #[test]
    fn concurrent_charges_do_not_lose_time() {
        let clock = Clock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.charge_cpu(SimTime::from_nanos(3));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.now(), SimTime::from_nanos(8 * 1000 * 3));
    }
}
