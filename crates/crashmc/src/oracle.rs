//! The oracle: run *real* recovery on a crash image and judge the
//! result.
//!
//! Three judgments per image:
//!
//! 1. **WAL invariants** — the crash image itself must pass the
//!    [`rvm_check`] verifier: every reachable crash state is a log the
//!    format's structural invariants hold for (reverse-displacement
//!    canonicality, scan symmetry, status-copy validity).
//! 2. **Recovery succeeds** — `Rvm::initialize` on the image must not
//!    error: no reachable crash state is unrecoverable.
//! 3. **Committed prefix** — the recovered segments equal the replay of
//!    a prefix of the committed transactions, no shorter than the acked
//!    prefix (single-threaded traces, exact), or satisfy the
//!    all-or-none / acked-present / aborted-absent / per-thread-prefix
//!    invariants over disjoint write cells (multi-threaded traces).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rvm::segment::DeviceResolver;
use rvm::{Options, RetryPolicy, Rvm};
use rvm_storage::{Device, FaultClock, FlakyDevice, FlakyFault, MemDevice, UnsyncedFate};

use crate::{apply_write, segment_bases, SegWrite, Trace, TxnSpec};

/// A crash image split into the recovery inputs: the log plus the
/// segment images by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashParts {
    pub log: Vec<u8>,
    pub segments: HashMap<String, Vec<u8>>,
}

/// What recovery left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    pub log: Vec<u8>,
    pub segments: HashMap<String, Vec<u8>>,
}

/// Splits an enumerator image set (recorder-id keyed) into [`CrashParts`]
/// using the trace's device table.
pub fn parts_from_images(trace: &Trace, images: &[(u32, Vec<u8>)]) -> CrashParts {
    let mut log = Vec::new();
    let mut segments = HashMap::new();
    for (id, img) in images {
        let base = trace
            .devices
            .iter()
            .find(|d| d.id == *id)
            .expect("image device is in the trace");
        if base.is_log {
            log = img.clone();
        } else {
            segments.insert(base.name.clone(), img.clone());
        }
    }
    CrashParts { log, segments }
}

/// A resolver over shared in-memory segment devices, creating missing
/// names zero-filled — the recovery-side mirror of the workload's traced
/// resolver.
fn mem_resolver(segs: &Arc<Mutex<HashMap<String, Arc<MemDevice>>>>) -> DeviceResolver {
    let segs = Arc::clone(segs);
    Arc::new(move |name: &str, min_len: u64| {
        let mut m = segs.lock();
        let dev = m
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(MemDevice::with_len(min_len)))
            .clone();
        if dev.len()? < min_len {
            dev.set_len(min_len)?;
        }
        Ok(dev as Arc<dyn Device>)
    })
}

/// Runs real recovery (`Rvm::initialize`) on a crash image.
pub fn recover(parts: &CrashParts) -> Result<Recovered, String> {
    let log = Arc::new(MemDevice::from_image(parts.log.clone()));
    let segs: Arc<Mutex<HashMap<String, Arc<MemDevice>>>> = Arc::new(Mutex::new(
        parts
            .segments
            .iter()
            .map(|(k, v)| (k.clone(), Arc::new(MemDevice::from_image(v.clone()))))
            .collect(),
    ));
    let rvm = Rvm::initialize(
        Options::new(log.clone())
            .resolver(mem_resolver(&segs))
            .retry_policy(RetryPolicy::none()),
    )
    .map_err(|e| format!("recovery failed on crash image: {e}"))?;
    let recovered = Recovered {
        log: log.snapshot(),
        segments: segs
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
    };
    drop(rvm);
    Ok(recovered)
}

/// Reads `len` bytes at `offset` from a by-name image map, zero-extending
/// past the image's end (a shorter device reads as zeros there).
fn cell(map: &HashMap<String, Vec<u8>>, seg: &str, offset: u64, len: usize) -> Vec<u8> {
    let img: &[u8] = map.get(seg).map_or(&[], |v| v.as_slice());
    let mut out = vec![0u8; len];
    let start = (offset as usize).min(img.len());
    let end = (offset as usize + len).min(img.len());
    if end > start {
        out[..end - start].copy_from_slice(&img[start..end]);
    }
    out
}

/// Zero-extended equality over two by-name image maps. Checksum-catalog
/// sidecars are skipped: they are metadata *derived* from the data
/// segments (recovery rewrites them as it applies the log), so the
/// committed-prefix replay — which models only data writes — never
/// contains them; their integrity is checked by their own self-verifying
/// format instead.
fn images_equal(a: &HashMap<String, Vec<u8>>, b: &HashMap<String, Vec<u8>>) -> Option<String> {
    let names: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for name in names {
        if rvm::scrub::is_sidecar(name) {
            continue;
        }
        let (x, y) = (
            a.get(name).map_or(&[][..], |v| v),
            b.get(name).map_or(&[][..], |v| v),
        );
        let len = x.len().max(y.len());
        for i in 0..len {
            let (xb, yb) = (
                x.get(i).copied().unwrap_or(0),
                y.get(i).copied().unwrap_or(0),
            );
            if xb != yb {
                return Some(format!("{name}[{i}]: {xb:#04x} vs {yb:#04x}"));
            }
        }
    }
    None
}

fn matches_cell(recovered: &HashMap<String, Vec<u8>>, w: &SegWrite) -> bool {
    cell(recovered, &w.segment, w.offset, w.data.len()) == w.data
}

fn matches_base(
    recovered: &HashMap<String, Vec<u8>>,
    bases: &HashMap<String, Vec<u8>>,
    w: &SegWrite,
) -> bool {
    cell(recovered, &w.segment, w.offset, w.data.len())
        == cell(bases, &w.segment, w.offset, w.data.len())
}

/// Checks one crash image end to end. `point` is the crash point the
/// image was generated at (it determines the acked prefix).
pub fn check_image(trace: &Trace, point: usize, images: &[(u32, Vec<u8>)]) -> Result<(), String> {
    let parts = parts_from_images(trace, images);

    // 1. The crash image is a structurally valid log. One undecodable
    // status copy is a *legal* crash state — a torn in-flight status
    // write is exactly what the dual-copy protocol tolerates — so that
    // single finding is excused; anything else (including both copies
    // dead) is a violation.
    let log_dev: Arc<dyn Device> = Arc::new(MemDevice::from_image(parts.log.clone()));
    let verify = rvm_check::verify(&log_dev)
        .map_err(|e| format!("WAL verifier rejected the crash image: {e}"))?;
    let torn_copies = verify
        .findings
        .iter()
        .filter(|f| f.ends_with("does not decode"))
        .count();
    let real: Vec<&String> = verify
        .findings
        .iter()
        .filter(|f| torn_copies > 1 || !f.ends_with("does not decode"))
        .collect();
    if !real.is_empty() {
        return Err(format!(
            "WAL invariants broken in crash image: {}",
            real.iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }

    // 2. Recovery succeeds.
    let recovered = recover(&parts)?;

    // 3. Committed-prefix invariant.
    if trace.single_threaded {
        check_exact_prefix(trace, point, &recovered)
    } else {
        check_disjoint_cells(trace, point, &recovered)
    }
}

/// Exact oracle for single-threaded traces: the recovered segments must
/// equal the replay of the first `k` committed transactions for some
/// `k >= acked`.
fn check_exact_prefix(trace: &Trace, point: usize, recovered: &Recovered) -> Result<(), String> {
    let committed: Vec<&TxnSpec> = trace.committed().collect();
    // The mandatory prefix extends to the *furthest* acked transaction:
    // flush-mode commits drain the spool first, so when a commit's force
    // completed, every earlier committed transaction's record was made
    // durable with it — even ones whose own ack (a later explicit flush)
    // hadn't been observed by the workload script yet.
    let acked = committed
        .iter()
        .rposition(|t| t.ack.is_some_and(|a| a <= point))
        .map_or(0, |i| i + 1);

    let mut state = segment_bases(trace);
    for t in &committed[..acked] {
        for w in &t.writes {
            apply_write(
                state.entry(w.segment.clone()).or_default(),
                w.offset,
                &w.data,
            );
        }
    }
    for k in acked..=committed.len() {
        if k > acked {
            for w in &committed[k - 1].writes {
                apply_write(
                    state.entry(w.segment.clone()).or_default(),
                    w.offset,
                    &w.data,
                );
            }
        }
        if images_equal(&state, &recovered.segments).is_none() {
            return Ok(());
        }
    }

    // No prefix matches: report the mismatch against the mandatory
    // (acked) prefix, the strongest claim.
    let mut state = segment_bases(trace);
    for t in &committed[..acked] {
        for w in &t.writes {
            apply_write(
                state.entry(w.segment.clone()).or_default(),
                w.offset,
                &w.data,
            );
        }
    }
    let diff = images_equal(&state, &recovered.segments).unwrap_or_default();
    Err(format!(
        "recovered state matches no committed prefix ({} acked of {} committed at crash point {}); \
         vs acked prefix: {diff}",
        acked,
        committed.len(),
        point
    ))
}

/// Disjoint-cell oracle for multi-threaded traces: per-transaction
/// all-or-none, acked ⇒ present, aborted ⇒ absent, per-thread commit
/// order prefix-closed. Requires the workload to write disjoint cells
/// with values distinct from the base image.
fn check_disjoint_cells(trace: &Trace, point: usize, recovered: &Recovered) -> Result<(), String> {
    let bases = segment_bases(trace);
    let mut present: Vec<bool> = Vec::with_capacity(trace.txns.len());

    for (i, t) in trace.txns.iter().enumerate() {
        let full = t
            .writes
            .iter()
            .all(|w| matches_cell(&recovered.segments, w));
        let none = t
            .writes
            .iter()
            .all(|w| matches_base(&recovered.segments, &bases, w));
        if !full && !none {
            return Err(format!(
                "txn {i} (thread {}) is partially applied after recovery (atomicity)",
                t.thread
            ));
        }
        if !t.committed && full && !t.writes.is_empty() {
            return Err(format!(
                "aborted txn {i} (thread {}) is visible after recovery",
                t.thread
            ));
        }
        if t.committed && t.ack.is_some_and(|a| a <= point) && !full {
            return Err(format!(
                "txn {i} (thread {}) was acknowledged at op {} but is lost after a crash at op {point} \
                 (durability)",
                t.thread,
                t.ack.unwrap()
            ));
        }
        present.push(t.committed && full);
    }

    // Per-thread prefix closure: once one of a thread's committed
    // transactions is missing, every later one must be missing too
    // (durable-log order matches commit order).
    let threads: std::collections::BTreeSet<u32> = trace.txns.iter().map(|t| t.thread).collect();
    for th in threads {
        let mut gap = None;
        for (i, t) in trace.txns.iter().enumerate() {
            if t.thread != th || !t.committed {
                continue;
            }
            match (present[i], gap) {
                (false, None) => gap = Some(i),
                (true, Some(g)) => {
                    return Err(format!(
                        "thread {th}: txn {i} survived but earlier txn {g} did not \
                         (commit order not prefix-closed)"
                    ));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// [`check_image`] plus the *scrub-convergence* assertion used by the
/// bit-rot checker: after recovery, every persisted checksum catalog must
/// match the recovered segment bytes, so an immediate scrub would find
/// nothing left to detect or repair. A catalog recovery failed to bring
/// back in sync would turn healed rot into a future false positive (or
/// mask real rot behind a checksum of rotted content that was then
/// corrected).
pub fn check_image_converged(
    trace: &Trace,
    point: usize,
    images: &[(u32, Vec<u8>)],
) -> Result<(), String> {
    check_image(trace, point, images)?;
    let recovered = recover(&parts_from_images(trace, images))?;
    for (name, img) in &recovered.segments {
        if rvm::scrub::is_sidecar(name) {
            continue;
        }
        let Some(sums_img) = recovered.segments.get(&rvm::scrub::sidecar_name(name)) else {
            continue;
        };
        let sums_dev = MemDevice::from_image(sums_img.clone());
        let entries = rvm::scrub::SegmentChecksums::load_readonly(&sums_dev)
            .map_err(|e| format!("segment '{name}': catalog unreadable after recovery: {e}"))?
            .ok_or_else(|| {
                format!("segment '{name}': catalog did not converge (torn after recovery)")
            })?;
        let seg_dev = MemDevice::from_image(img.clone());
        let len = img.len() as u64;
        for page in 0..rvm::scrub::page_count(len) {
            let sum = rvm::scrub::checksum_of(&seg_dev, len, page)
                .map_err(|e| format!("segment '{name}' page {page}: unreadable: {e}"))?;
            if entries.get(page).copied() != Some(sum) {
                return Err(format!(
                    "segment '{name}' page {page}: catalog mismatch after recovery — \
                     scrub would not converge"
                ));
            }
        }
    }
    Ok(())
}

/// Satellite: recovery determinism. Recovering the same crash image twice
/// must produce byte-identical results, and a crash *during* recovery
/// (fail-stop after `k` device ops, unsynced writes lost) followed by a
/// clean recovery must converge to the same segment contents.
pub fn check_recovery_determinism(parts: &CrashParts, crash_ops: &[u64]) -> Result<(), String> {
    let a = recover(parts)?;
    let b = recover(parts)?;
    if let Some(diff) = images_equal(&a.segments, &b.segments) {
        return Err(format!("recovery is not deterministic (segments): {diff}"));
    }
    if a.log != b.log {
        return Err("recovery is not deterministic (log image)".into());
    }

    for &k in crash_ops {
        let crashed = crash_during_recovery(parts, k);
        let c = recover(&crashed)
            .map_err(|e| format!("re-recovery after a crash at recovery op {k} failed: {e}"))?;
        if let Some(diff) = images_equal(&a.segments, &c.segments) {
            return Err(format!(
                "crash during recovery at op {k} changed the recovered segments: {diff}"
            ));
        }
    }
    Ok(())
}

/// Runs recovery against fail-stop devices that die after `k` ops (all
/// later ops fail, unsynced writes of the in-flight window are lost) and
/// returns the resulting durable image.
fn crash_during_recovery(parts: &CrashParts, k: u64) -> CrashParts {
    let clock = FaultClock::new(vec![FlakyFault::crash_after_ops(k)]);
    let log_mem = Arc::new(MemDevice::from_image(parts.log.clone()));
    let log = Arc::new(
        FlakyDevice::with_clock(log_mem.clone(), clock.clone()).crash_model(UnsyncedFate::Lost),
    );

    type SegMap = HashMap<String, (Arc<MemDevice>, Arc<FlakyDevice<MemDevice>>)>;
    let segs: Arc<Mutex<SegMap>> = Arc::new(Mutex::new(
        parts
            .segments
            .iter()
            .map(|(name, img)| {
                let mem = Arc::new(MemDevice::from_image(img.clone()));
                let flaky = Arc::new(
                    FlakyDevice::with_clock(mem.clone(), clock.clone())
                        .crash_model(UnsyncedFate::Lost),
                );
                (name.clone(), (mem, flaky))
            })
            .collect(),
    ));
    let resolver: DeviceResolver = Arc::new({
        let segs = Arc::clone(&segs);
        let clock = clock.clone();
        move |name: &str, min_len: u64| {
            let mut m = segs.lock();
            let (_, flaky) = m
                .entry(name.to_owned())
                .or_insert_with(|| {
                    let mem = Arc::new(MemDevice::with_len(min_len));
                    let flaky = Arc::new(
                        FlakyDevice::with_clock(mem.clone(), clock.clone())
                            .crash_model(UnsyncedFate::Lost),
                    );
                    (mem, flaky)
                })
                .clone();
            if flaky.len()? < min_len {
                flaky.set_len(min_len)?;
            }
            Ok(flaky as Arc<dyn Device>)
        }
    });

    // Both outcomes are interesting: an error means the crash hit
    // mid-recovery; success means `k` exceeded recovery's op count and
    // the image below is simply the fully recovered state.
    let _ = Rvm::initialize(
        Options::new(log.clone())
            .resolver(resolver)
            .retry_policy(RetryPolicy::none()),
    );
    log.settle_crash();
    let m = segs.lock();
    for (_, flaky) in m.values() {
        flaky.settle_crash();
    }
    CrashParts {
        log: log_mem.snapshot(),
        segments: m
            .iter()
            .map(|(name, (mem, _))| (name.clone(), mem.snapshot()))
            .collect(),
    }
}
