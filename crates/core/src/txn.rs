//! Transactions (§4.2).
//!
//! `begin_transaction` returns a [`Transaction`]; `set_range` declares the
//! areas about to be modified; `end_transaction` (here
//! [`Transaction::commit`]) or [`Transaction::abort`] finishes it. The
//! `restore_mode` flag of the paper's `begin_transaction` is
//! [`TxnMode`]: a no-restore transaction skips the old-value copy and may
//! never abort.
//!
//! Dropping an unfinished transaction aborts it (restore mode) or merely
//! releases its bookkeeping (no-restore) — a Rust-ism the C library could
//! not offer; relying on it is poor style but never unsound.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::error::{Result, RvmError};
use crate::options::{CommitMode, TxnMode};
use crate::ranges::{ByteRange, RangeSet};
use crate::region::{Region, RegionInner};
use crate::rvm::RvmShared;
use crate::truncation::page_vector::PageVector;

/// Per-region bookkeeping inside one transaction.
pub(crate) struct TxnRegion {
    pub(crate) region: Arc<RegionInner>,
    /// Coalesced modified ranges (drives old-value capture and, when intra
    /// optimization is on, the log record).
    pub(crate) ranges: RangeSet,
    /// The `set_range` calls verbatim, for the intra-off ablation.
    pub(crate) raw_ranges: Vec<ByteRange>,
    /// Old values of newly covered sub-ranges (restore mode only).
    pub(crate) undo: Vec<(u64, Vec<u8>)>,
    /// Pages whose uncommitted reference count this transaction holds.
    pub(crate) touched_pages: BTreeSet<usize>,
}

impl TxnRegion {
    fn new(region: Arc<RegionInner>) -> Self {
        region.uncommitted_txns.fetch_add(1, Ordering::AcqRel);
        Self {
            region,
            ranges: RangeSet::new(),
            raw_ranges: Vec::new(),
            undo: Vec::new(),
            touched_pages: BTreeSet::new(),
        }
    }
}

/// An active transaction (the paper's `tid`).
///
/// Created by [`Rvm::begin_transaction`](crate::Rvm::begin_transaction);
/// consumed by [`Transaction::commit`] or [`Transaction::abort`].
pub struct Transaction {
    pub(crate) tid: u64,
    pub(crate) mode: TxnMode,
    pub(crate) shared: Arc<RvmShared>,
    pub(crate) regions: HashMap<u64, TxnRegion>,
    /// Sum of requested `set_range` lengths, before coalescing.
    pub(crate) gross_bytes: u64,
    pub(crate) ended: bool,
}

impl Transaction {
    pub(crate) fn new(tid: u64, mode: TxnMode, shared: Arc<RvmShared>) -> Self {
        Self {
            tid,
            mode,
            shared,
            regions: HashMap::new(),
            gross_bytes: 0,
            ended: false,
        }
    }

    /// The transaction identifier.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The restore mode chosen at `begin_transaction`.
    pub fn mode(&self) -> TxnMode {
        self.mode
    }

    /// Declares that `[offset, offset + len)` of `region` is about to be
    /// modified (§4.2).
    ///
    /// In restore mode the current contents are captured so an abort can
    /// undo the changes; duplicate, overlapping, and adjacent declarations
    /// are coalesced (§5.2) and each byte is captured at most once.
    ///
    /// # Errors
    ///
    /// Arguments are validated eagerly: a zero-length range is rejected
    /// with [`RvmError::EmptyRange`] (it declares nothing and almost
    /// always means a length computation went wrong), and a range
    /// extending past the region with [`RvmError::OutOfRange`].
    pub fn set_range(&mut self, region: &Region, offset: u64, len: u64) -> Result<()> {
        if self.ended {
            return Err(RvmError::TransactionEnded);
        }
        region.inner.check_mapped()?;
        if region.inner.is_degraded() {
            // Quarantined regions are read-only: committing over a page
            // whose durable image is unverifiable could mix corrupt and
            // fresh bytes. Reads of loaded pages keep working.
            return Err(region.inner.degraded_error());
        }
        if len == 0 {
            return Err(RvmError::EmptyRange { offset });
        }
        region.inner.check_bounds(offset, len)?;
        // On-demand regions must hold the committed image before old
        // values are captured or new ones written.
        region.inner.ensure_loaded(offset, len)?;
        let stats = &self.shared.stats;
        stats.add(&stats.set_range_calls, 1);
        stats.add(&stats.bytes_set_range_gross, len);
        self.gross_bytes += len;

        let entry = self
            .regions
            .entry(region.inner.id)
            .or_insert_with(|| TxnRegion::new(region.inner.clone()));
        let range = ByteRange::at(offset, len);
        entry.raw_ranges.push(range);
        let newly = entry.ranges.insert(range);

        if self.mode == TxnMode::Restore {
            for r in &newly {
                let old = entry.region.read_bytes(r.start, r.len());
                entry.undo.push((r.start, old));
            }
        }

        // One uncommitted reference per (transaction, page), exactly undone
        // at commit or abort.
        let mut pv = entry.region.page_vector.lock();
        for page in PageVector::page_span(offset, len) {
            if entry.touched_pages.insert(page) {
                pv.inc_uncommitted(page);
            }
        }
        drop(pv);
        self.shared
            .check_declared_range(self.tid, &entry.region, range);
        Ok(())
    }

    /// Pointer-based `set_range` for the C-style API: `ptr` must point into
    /// `region`'s memory block (see [`Region::base_ptr`]).
    pub fn set_range_ptr(&mut self, region: &Region, ptr: *const u8, len: u64) -> Result<()> {
        let offset = region.offset_of_ptr(ptr).ok_or_else(|| {
            RvmError::BadMapping("pointer does not fall within the region".to_owned())
        })?;
        self.set_range(region, offset, len)
    }

    /// Commits the transaction (`end_transaction`). With
    /// [`CommitMode::Flush`] the log is forced before returning; with
    /// [`CommitMode::NoFlush`] the records are spooled (§4.2).
    ///
    /// When [`Tuning::group_commit`](crate::Tuning) is on (the default),
    /// concurrent flush-mode commits are batched through a leader/follower
    /// queue and share a single log force; this changes only latency and
    /// force count, never durability — the force still completes before
    /// `commit` returns.
    pub fn commit(mut self, mode: CommitMode) -> Result<()> {
        if self.ended {
            return Err(RvmError::TransactionEnded);
        }
        self.ended = true;
        let shared = self.shared.clone();
        shared.commit_txn(&mut self, mode)
    }

    /// Aborts the transaction, restoring the old values captured by
    /// `set_range`.
    ///
    /// # Errors
    ///
    /// A no-restore transaction cannot abort
    /// ([`RvmError::CannotAbortNoRestore`]); its bookkeeping is released
    /// but memory retains the (now unlogged and unrecoverable)
    /// modifications — the same state §6 describes for a forgotten
    /// `set_range`.
    pub fn abort(mut self) -> Result<()> {
        if self.ended {
            return Err(RvmError::TransactionEnded);
        }
        self.ended = true;
        let no_restore = self.mode == TxnMode::NoRestore;
        if !no_restore {
            self.restore_old_values();
        }
        self.release();
        let stats = &self.shared.stats;
        stats.add(&stats.txns_aborted, 1);
        if no_restore {
            Err(RvmError::CannotAbortNoRestore)
        } else {
            Ok(())
        }
    }

    /// Rolls a failed commit back: old values are restored (restore mode)
    /// and bookkeeping released, leaving memory as if the transaction had
    /// aborted. The caller was told the commit failed, so memory must not
    /// keep the modifications it was never promised.
    pub(crate) fn rollback(&mut self) {
        if self.mode == TxnMode::Restore {
            self.restore_old_values();
        }
        self.release();
    }

    /// Restores captured old values (newest capture last, restored first;
    /// captures are disjoint, so order is immaterial but kept reversed for
    /// clarity).
    pub(crate) fn restore_old_values(&mut self) {
        for txn_region in self.regions.values_mut() {
            for (offset, old) in txn_region.undo.drain(..).rev() {
                txn_region.region.write_bytes(offset, &old);
            }
        }
    }

    /// Releases page references and per-region transaction counts.
    pub(crate) fn release(&mut self) {
        self.shared.check_txn_ended(self.tid, &self.regions);
        for txn_region in self.regions.values() {
            let mut pv = txn_region.region.page_vector.lock();
            for &page in &txn_region.touched_pages {
                pv.dec_uncommitted(page);
            }
            drop(pv);
            txn_region
                .region
                .uncommitted_txns
                .fetch_sub(1, Ordering::AcqRel);
        }
        self.regions.clear();
        self.shared.active_txns.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.ended {
            self.ended = true;
            if self.mode == TxnMode::Restore {
                self.restore_old_values();
            }
            self.release();
            let stats = &self.shared.stats;
            stats.add(&stats.txns_aborted, 1);
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("tid", &self.tid)
            .field("mode", &self.mode)
            .field("regions", &self.regions.len())
            .field("ended", &self.ended)
            .finish()
    }
}
