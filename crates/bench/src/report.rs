//! Table formatting and ASCII plotting for the harness binaries.

/// Formats "mean (sd)" in the style of the paper's Table 1.
pub fn mean_sd(mean: f64, sd: f64) -> String {
    format!("{mean:.1} ({sd:.1})")
}

/// A single plot series.
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Marker character.
    pub marker: char,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series as a fixed-size ASCII scatter plot, the harness's
/// stand-in for Figures 8 and 9.
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series<'_>],
    width: usize,
    height: usize,
) -> String {
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() {
        return format!("{title}\n(no data)\n");
    }
    // Pad the y range a little.
    let y_pad = ((y_max - y_min) * 0.05).max(0.5);
    y_min -= y_pad;
    y_max += y_pad;

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let col =
                (((x - x_min) / (x_max - x_min).max(1e-12)) * (width - 1) as f64).round() as usize;
            let row =
                (((y_max - y) / (y_max - y_min).max(1e-12)) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(height - 1)][col.min(width - 1)];
            // First series wins on collision; later markers show as '+'.
            *cell = if *cell == ' ' { s.marker } else { '+' };
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let axis = if i % 4 == 0 {
            format!("{y_here:7.1} |")
        } else {
            "        |".to_owned()
        };
        out.push_str(&axis);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "         {:<10.1}{:>width$.1}   ({x_label})\n",
        x_min,
        x_max,
        width = width - 14
    ));
    out.push_str(&format!("  y: {y_label}\n  "));
    for s in series {
        out.push_str(&format!("[{}] {}   ", s.marker, s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sd_format_matches_table1_style() {
        assert_eq!(mean_sd(48.56, 0.04), "48.6 (0.0)");
        assert_eq!(mean_sd(27.4, 0.21), "27.4 (0.2)");
    }

    #[test]
    fn plot_renders_all_series_markers() {
        let plot = ascii_plot(
            "t",
            "x",
            "y",
            &[
                Series {
                    label: "a",
                    marker: 'o',
                    points: vec![(0.0, 0.0), (10.0, 10.0)],
                },
                Series {
                    label: "b",
                    marker: 'x',
                    points: vec![(5.0, 5.0)],
                },
            ],
            40,
            10,
        );
        assert!(plot.contains('o'));
        assert!(plot.contains('x'));
        assert!(plot.contains("[o] a"));
    }

    #[test]
    fn plot_handles_empty_input() {
        let plot = ascii_plot("t", "x", "y", &[], 10, 5);
        assert!(plot.contains("no data"));
    }
}
