//! The log status block (§5.1.2).
//!
//! The status block records the durable head and tail of the circular
//! record area, the sequence number expected at the head, and the segment
//! table mapping segment ids to names. Two copies are kept at fixed
//! offsets and written alternately with a monotone sequence number and a
//! CRC; a torn status write therefore leaves the other copy intact, and
//! whichever valid copy has the higher sequence wins. Updating the status
//! block *last* is what makes recovery idempotent: until the update lands,
//! a re-run of recovery sees the same log.

use rvm_storage::Device;

use crate::crc::crc32;
use crate::error::{Result, RvmError};
use crate::segment::{SegmentId, SegmentInfo};

/// Size reserved for one status-block copy.
pub const STATUS_BLOCK_SIZE: u64 = 8192;
/// Offset of copy A.
pub const STATUS_A_OFFSET: u64 = 0;
/// Offset of copy B.
pub const STATUS_B_OFFSET: u64 = STATUS_BLOCK_SIZE;
/// Offset where the circular record area begins.
pub const LOG_AREA_START: u64 = 2 * STATUS_BLOCK_SIZE;

const STATUS_MAGIC: u64 = 0x5256_4D53_5441_5431; // "RVMSTAT1"
const FORMAT_VERSION: u64 = 2;

/// Byte offset of the segment table within a status copy. Bytes 68..84
/// hold the in-flight epoch boundary (`epoch_end`, `epoch_next_seq`).
const SEGMENT_TABLE_AT: usize = 84;

/// Durable bookkeeping persisted in the status area.
///
/// `head`/`tail` are *logical* offsets: monotone counters whose value
/// modulo the record-area length gives the physical position. `tail` is a
/// hint — recovery always re-derives the true tail by scanning forward
/// from `head` — but is kept accurate at truncation for inspection tools.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusBlock {
    /// Write sequence of the status block itself (picks the newer copy).
    pub seq: u64,
    /// Logical offset of the oldest live record.
    pub head: u64,
    /// Logical offset one past the newest record known at last write.
    pub tail: u64,
    /// Record sequence number expected at `head`.
    pub seq_at_head: u64,
    /// Next record sequence number to assign (hint).
    pub next_seq: u64,
    /// Length of the circular record area.
    pub area_len: u64,
    /// Exclusive logical end of an epoch truncation that was in flight
    /// when this status was written (0 = none). The span
    /// `[head, epoch_end)` was being applied to data segments off-lock;
    /// recovery treats it like any other live log prefix — scanning from
    /// `head` re-applies it idempotently — so the field is a crash
    /// *diagnostic*, not a correctness input.
    pub epoch_end: u64,
    /// `next_seq` the log had at `epoch_end` when the epoch was
    /// snapshotted (0 = none).
    pub epoch_next_seq: u64,
    /// The segment table.
    pub segments: Vec<SegmentInfo>,
}

impl StatusBlock {
    /// A fresh, empty log with the given record-area length.
    pub fn fresh(area_len: u64) -> Self {
        Self {
            seq: 0,
            head: 0,
            tail: 0,
            seq_at_head: 1,
            next_seq: 1,
            area_len,
            epoch_end: 0,
            epoch_next_seq: 0,
            segments: Vec::new(),
        }
    }

    /// Looks up a segment by name.
    pub fn segment_by_name(&self, name: &str) -> Option<&SegmentInfo> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Looks up a segment by id.
    pub fn segment_by_id(&self, id: SegmentId) -> Option<&SegmentInfo> {
        self.segments.iter().find(|s| s.id == id)
    }

    /// Serializes into one status-block image.
    ///
    /// # Panics
    ///
    /// Panics if the segment table does not fit; callers bound the table
    /// via [`StatusBlock::table_has_room`].
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
        buf[0..8].copy_from_slice(&STATUS_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        buf[24..32].copy_from_slice(&self.head.to_le_bytes());
        buf[32..40].copy_from_slice(&self.tail.to_le_bytes());
        buf[40..48].copy_from_slice(&self.seq_at_head.to_le_bytes());
        buf[48..56].copy_from_slice(&self.next_seq.to_le_bytes());
        buf[56..64].copy_from_slice(&self.area_len.to_le_bytes());
        buf[64..68].copy_from_slice(&(self.segments.len() as u32).to_le_bytes());
        buf[68..76].copy_from_slice(&self.epoch_end.to_le_bytes());
        buf[76..84].copy_from_slice(&self.epoch_next_seq.to_le_bytes());
        let mut at = SEGMENT_TABLE_AT;
        for seg in &self.segments {
            let name = seg.name.as_bytes();
            assert!(
                at + 16 + name.len() <= STATUS_BLOCK_SIZE as usize - 4,
                "segment table overflows the status block"
            );
            buf[at..at + 4].copy_from_slice(&seg.id.as_u32().to_le_bytes());
            buf[at + 4..at + 8].copy_from_slice(&(name.len() as u32).to_le_bytes());
            buf[at + 8..at + 16].copy_from_slice(&seg.min_len.to_le_bytes());
            buf[at + 16..at + 16 + name.len()].copy_from_slice(name);
            at += 16 + name.len();
        }
        let crc_at = STATUS_BLOCK_SIZE as usize - 4;
        let crc = crc32(&buf[..crc_at]);
        buf[crc_at..].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and validates one status-block image.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() != STATUS_BLOCK_SIZE as usize {
            return None;
        }
        let crc_at = STATUS_BLOCK_SIZE as usize - 4;
        let stored = u32::from_le_bytes(buf[crc_at..].try_into().ok()?);
        if crc32(&buf[..crc_at]) != stored {
            return None;
        }
        let get64 = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        if get64(0) != STATUS_MAGIC || get64(8) != FORMAT_VERSION {
            return None;
        }
        let n_segments = u32::from_le_bytes(buf[64..68].try_into().unwrap()) as usize;
        let mut segments = Vec::with_capacity(n_segments);
        let mut at = SEGMENT_TABLE_AT;
        for _ in 0..n_segments {
            if at + 16 > crc_at {
                return None;
            }
            let id = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
            let name_len = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap()) as usize;
            let min_len = get64(at + 8);
            if at + 16 + name_len > crc_at {
                return None;
            }
            let name = String::from_utf8(buf[at + 16..at + 16 + name_len].to_vec()).ok()?;
            segments.push(SegmentInfo {
                id: SegmentId::new(id),
                name,
                min_len,
            });
            at += 16 + name_len;
        }
        Some(Self {
            seq: get64(16),
            head: get64(24),
            tail: get64(32),
            seq_at_head: get64(40),
            next_seq: get64(48),
            area_len: get64(56),
            epoch_end: get64(68),
            epoch_next_seq: get64(76),
            segments,
        })
    }

    /// Returns `true` if a segment entry with a name of `name_len` bytes
    /// still fits in the status block.
    pub fn table_has_room(&self, name_len: usize) -> bool {
        Self::segments_fit(&self.segments, name_len)
    }

    /// Like [`StatusBlock::table_has_room`] but over a bare segment table.
    pub fn segments_fit(segments: &[SegmentInfo], extra_name_len: usize) -> bool {
        let used: usize =
            SEGMENT_TABLE_AT + segments.iter().map(|s| 16 + s.name.len()).sum::<usize>();
        used + 16 + extra_name_len <= STATUS_BLOCK_SIZE as usize - 4
    }
}

/// Reads the valid status copy with the highest sequence number.
pub fn read_status(dev: &dyn Device) -> Result<StatusBlock> {
    let mut best: Option<StatusBlock> = None;
    for offset in [STATUS_A_OFFSET, STATUS_B_OFFSET] {
        let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
        if dev.read_at(offset, &mut buf).is_err() {
            continue;
        }
        if let Some(sb) = StatusBlock::decode(&buf) {
            if best.as_ref().is_none_or(|b| sb.seq > b.seq) {
                best = Some(sb);
            }
        }
    }
    best.ok_or_else(|| RvmError::BadLog("no valid status block copy".to_owned()))
}

/// Writes the status block to the copy slot selected by its (incremented)
/// sequence number and syncs the device.
pub fn write_status(dev: &dyn Device, status: &mut StatusBlock) -> Result<()> {
    status.seq += 1;
    let offset = if status.seq.is_multiple_of(2) {
        STATUS_A_OFFSET
    } else {
        STATUS_B_OFFSET
    };
    dev.write_at(offset, &status.encode())?;
    dev.sync()?;
    Ok(())
}

/// Formats `dev` as an empty RVM log (the paper's `create_log`).
///
/// The record area is the device length minus the two status copies,
/// rounded down to a whole number of log blocks.
pub fn format_log(dev: &dyn Device) -> Result<StatusBlock> {
    let len = dev.len()?;
    let min = LOG_AREA_START + crate::log::record::MIN_RECORD_SIZE;
    if len < min {
        return Err(RvmError::BadLog(format!(
            "log device of {len} bytes is smaller than the minimum {min}"
        )));
    }
    let area_len =
        (len - LOG_AREA_START) / crate::log::record::LOG_BLOCK * crate::log::record::LOG_BLOCK;
    let mut status = StatusBlock::fresh(area_len);
    // Write both copies so a fresh log is valid regardless of which copy a
    // later torn write destroys. The sync between the two writes is
    // load-bearing: without it, both copies sit in the same unsynced
    // window and a single crash can tear or drop them together, leaving
    // no valid copy — the dual-copy scheme assumes at most one copy is
    // ever in flight.
    dev.write_at(STATUS_A_OFFSET, &status.encode())?;
    dev.sync()?;
    status.seq = 1;
    dev.write_at(STATUS_B_OFFSET, &status.encode())?;
    dev.sync()?;
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    fn sample() -> StatusBlock {
        StatusBlock {
            seq: 5,
            head: 1024,
            tail: 4096,
            seq_at_head: 17,
            next_seq: 29,
            area_len: 1 << 20,
            epoch_end: 2048,
            epoch_next_seq: 23,
            segments: vec![
                SegmentInfo {
                    id: SegmentId::new(0),
                    name: "/data/seg0".to_owned(),
                    min_len: 8192,
                },
                SegmentInfo {
                    id: SegmentId::new(1),
                    name: "accounts".to_owned(),
                    min_len: 1 << 16,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let sb = sample();
        let decoded = StatusBlock::decode(&sb.encode()).expect("decodes");
        assert_eq!(decoded, sb);
    }

    #[test]
    fn corruption_is_rejected() {
        let buf = sample().encode();
        for i in [0usize, 20, 70, STATUS_BLOCK_SIZE as usize - 1] {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            assert!(StatusBlock::decode(&bad).is_none(), "flip at {i}");
        }
    }

    #[test]
    fn lookups() {
        let sb = sample();
        assert_eq!(
            sb.segment_by_name("accounts").unwrap().id,
            SegmentId::new(1)
        );
        assert!(sb.segment_by_name("missing").is_none());
        assert_eq!(
            sb.segment_by_id(SegmentId::new(0)).unwrap().name,
            "/data/seg0"
        );
    }

    #[test]
    fn dual_copy_read_prefers_higher_seq() {
        let dev = MemDevice::with_len(LOG_AREA_START + 4096);
        format_log(&dev).unwrap();
        let mut sb = read_status(&dev).unwrap();
        assert_eq!(sb.seq, 1);
        sb.head = 512;
        write_status(&dev, &mut sb).unwrap();
        let got = read_status(&dev).unwrap();
        assert_eq!(got.seq, 2);
        assert_eq!(got.head, 512);
    }

    #[test]
    fn torn_status_write_falls_back_to_other_copy() {
        let dev = MemDevice::with_len(LOG_AREA_START + 4096);
        format_log(&dev).unwrap();
        let mut sb = read_status(&dev).unwrap();
        sb.head = 512;
        write_status(&dev, &mut sb).unwrap(); // seq 2 -> copy A
                                              // Corrupt copy A, as a torn write would.
        dev.write_at(STATUS_A_OFFSET + 100, &[0xFF; 8]).unwrap();
        let got = read_status(&dev).unwrap();
        assert_eq!(got.seq, 1, "falls back to copy B");
        assert_eq!(got.head, 0);
    }

    fn raw_copy(dev: &MemDevice, offset: u64) -> Option<StatusBlock> {
        let mut buf = vec![0u8; STATUS_BLOCK_SIZE as usize];
        dev.read_at(offset, &mut buf).unwrap();
        StatusBlock::decode(&buf)
    }

    #[test]
    fn write_status_alternates_copies() {
        let dev = MemDevice::with_len(LOG_AREA_START + 4096);
        format_log(&dev).unwrap();
        let mut sb = read_status(&dev).unwrap();
        for i in 0..6u64 {
            sb.head = 1000 + i;
            write_status(&dev, &mut sb).unwrap();
            let a = raw_copy(&dev, STATUS_A_OFFSET).unwrap();
            let b = raw_copy(&dev, STATUS_B_OFFSET).unwrap();
            // Even seqs land in copy A, odd in copy B; the other copy
            // still holds the immediately preceding write.
            let (newer, older) = if sb.seq.is_multiple_of(2) {
                (a, b)
            } else {
                (b, a)
            };
            assert_eq!(newer.seq, sb.seq);
            assert_eq!(newer.head, 1000 + i);
            assert_eq!(older.seq, sb.seq - 1);
        }
    }

    #[test]
    fn torn_write_never_loses_both_copies() {
        // Whichever copy a torn status write destroys, the previous
        // status survives, because alternation targets the copy the last
        // write did *not*.
        for torn_copy in 0..2u64 {
            let dev = MemDevice::with_len(LOG_AREA_START + 4096);
            format_log(&dev).unwrap();
            let mut sb = read_status(&dev).unwrap();
            // Advance until the next write lands on the copy we tear.
            while (sb.seq + 1) % 2 != torn_copy {
                write_status(&dev, &mut sb).unwrap();
            }
            let prev = read_status(&dev).unwrap();
            sb.head = 12_345;
            write_status(&dev, &mut sb).unwrap();
            let target = if torn_copy == 0 {
                STATUS_A_OFFSET
            } else {
                STATUS_B_OFFSET
            };
            dev.write_at(target + 64, &[0xAB; 16]).unwrap();
            let got = read_status(&dev).unwrap();
            assert_eq!(got.seq, prev.seq, "previous status survives");
            assert_eq!(got.head, prev.head);
        }
    }

    #[test]
    fn both_copies_corrupt_is_an_error() {
        let dev = MemDevice::with_len(LOG_AREA_START + 4096);
        format_log(&dev).unwrap();
        dev.write_at(STATUS_A_OFFSET + 100, &[0xFF; 8]).unwrap();
        dev.write_at(STATUS_B_OFFSET + 100, &[0xFF; 8]).unwrap();
        assert!(matches!(read_status(&dev), Err(RvmError::BadLog(_))));
    }

    #[test]
    fn format_rejects_tiny_devices() {
        let dev = MemDevice::with_len(100);
        assert!(matches!(format_log(&dev), Err(RvmError::BadLog(_))));
    }

    #[test]
    fn format_aligns_area_len() {
        let dev = MemDevice::with_len(LOG_AREA_START + 1000);
        let sb = format_log(&dev).unwrap();
        assert_eq!(sb.area_len, 512);
    }

    #[test]
    fn format_crash_between_copies_leaves_a_valid_copy() {
        use rvm_storage::{CrashPlan, FaultDevice};
        use std::sync::Arc;

        // Crash while format_log is writing copy B, tearing it on a
        // sector boundary. Copy A was synced first, so it must survive and
        // read_status must succeed. Before the fix (one sync covering both
        // copies) the torn window spanned both writes and a crash here
        // could leave no valid copy.
        let inner: Arc<MemDevice> = Arc::new(MemDevice::with_len(LOG_AREA_START + 4096));
        let dev = FaultDevice::new(
            inner.clone(),
            CrashPlan::torn_sector_at(STATUS_BLOCK_SIZE + 1500, 512),
        );
        assert!(format_log(&dev).is_err(), "the planned crash fires");
        let got = read_status(inner.as_ref()).unwrap();
        assert_eq!(got.seq, 0, "copy A (seq 0) survives the torn copy B");

        // Same crash point with all unsynced writes lost: copy A is past
        // its own sync, so it still survives.
        let inner: Arc<MemDevice> = Arc::new(MemDevice::with_len(LOG_AREA_START + 4096));
        let dev = FaultDevice::new(
            inner.clone(),
            CrashPlan::lose_unsynced_at(STATUS_BLOCK_SIZE + 1500),
        );
        assert!(format_log(&dev).is_err());
        let got = read_status(inner.as_ref()).unwrap();
        assert_eq!(got.seq, 0);
    }

    #[test]
    fn status_write_sync_separates_copies() {
        use rvm_storage::{TraceOpKind, TraceRecorder};
        use std::sync::Arc;

        // Audit the write path mechanically: in the recorded op stream,
        // every pair of status-copy writes must have a sync between them —
        // no single unsynced window may contain both copies.
        let rec = TraceRecorder::new();
        let dev = rec.wrap("log", Arc::new(MemDevice::with_len(LOG_AREA_START + 4096)));
        let mut sb = format_log(dev.as_ref()).unwrap();
        for i in 0..4 {
            sb.head = 100 + i;
            write_status(dev.as_ref(), &mut sb).unwrap();
        }

        let mut copies_in_window = 0;
        for op in rec.ops() {
            match op.kind {
                TraceOpKind::Write { offset, .. }
                    if offset == STATUS_A_OFFSET || offset == STATUS_B_OFFSET =>
                {
                    copies_in_window += 1;
                    assert!(
                        copies_in_window <= 1,
                        "two status copies written without an intervening sync"
                    );
                }
                TraceOpKind::Sync => copies_in_window = 0,
                _ => {}
            }
        }
    }

    #[test]
    fn table_room_check() {
        let mut sb = StatusBlock::fresh(512);
        assert!(sb.table_has_room(100));
        // Fill the table almost to capacity.
        let big_name = "x".repeat(4000);
        sb.segments.push(SegmentInfo {
            id: SegmentId::new(0),
            name: big_name.clone(),
            min_len: 0,
        });
        assert!(sb.table_has_room(100));
        sb.segments.push(SegmentInfo {
            id: SegmentId::new(1),
            name: big_name,
            min_len: 0,
        });
        assert!(!sb.table_has_room(1000));
    }
}
