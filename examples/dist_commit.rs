//! Two-phase commit over RVM (§8): two bank branches on separate RVM
//! instances, a coordinator with a durable decision log, and a
//! subordinate crash between the phases.
//!
//! Run with: `cargo run -p rvm-examples --bin dist_commit`

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{Options, Rvm, PAGE_SIZE};
use rvm_dist::{Coordinator, GlobalTxnId, Outcome, Subordinate, Update, Vote};
use rvm_storage::MemDevice;

struct NodeWorld {
    log: Arc<MemDevice>,
    segs: MemResolver,
}

impl NodeWorld {
    fn new() -> Self {
        Self {
            log: Arc::new(MemDevice::with_len(2 << 20)),
            segs: MemResolver::new(),
        }
    }

    fn boot(&self) -> Rvm {
        Rvm::initialize(
            Options::new(self.log.clone())
                .resolver(self.segs.clone().into_resolver())
                .create_if_empty(),
        )
        .expect("boot node")
    }
}

fn upd(offset: u64, data: &[u8]) -> Update {
    Update {
        offset,
        data: data.to_vec(),
    }
}

fn main() {
    let world_a = NodeWorld::new();
    let world_b = NodeWorld::new();
    let world_c = NodeWorld::new();

    println!("== a successful distributed transfer ==");
    {
        let branch_a = Subordinate::new(world_a.boot(), PAGE_SIZE).expect("branch A");
        let branch_b = Subordinate::new(world_b.boot(), PAGE_SIZE).expect("branch B");
        let coordinator = Coordinator::new(world_c.boot()).expect("coordinator");

        let outcome = coordinator
            .run(
                GlobalTxnId(1),
                &[
                    (&branch_a, vec![upd(0, &500u64.to_le_bytes())]),
                    (&branch_b, vec![upd(0, &500u64.to_le_bytes())]),
                ],
            )
            .expect("2pc run");
        println!("gid 1 -> {outcome:?}");
        assert_eq!(outcome, Outcome::Commit);

        println!("== a subordinate crashes between the phases ==");
        // Phase 1 happens...
        let vote = branch_a
            .prepare(GlobalTxnId(2), &[upd(64, b"in-doubt!")])
            .expect("prepare");
        assert_eq!(vote, Vote::Yes);
        // ...the coordinator decides commit (durably)...
        let _ = coordinator.run(GlobalTxnId(2), &[]).expect("decision only");
        // ...but branch A never hears it: crash.
        std::mem::forget(branch_a);
    }

    println!("== branch A restarts and resolves its in-doubt transaction ==");
    {
        let branch_a = Subordinate::new(world_a.boot(), PAGE_SIZE).expect("rebooted A");
        let coordinator = Coordinator::new(world_c.boot()).expect("rebooted coordinator");
        let in_doubt = branch_a.in_doubt();
        println!("in doubt after crash: {in_doubt:?}");
        assert_eq!(in_doubt, vec![GlobalTxnId(2)]);

        // The recovery upcall to the coordinator's durable decision log.
        branch_a
            .recover_with(|gid| coordinator.decision(gid))
            .expect("recovery");
        assert!(branch_a.in_doubt().is_empty());
        let value = branch_a.data().read_vec(64, 9).expect("read");
        println!(
            "recovered value at 64: {:?}",
            String::from_utf8_lossy(&value)
        );
        assert_eq!(&value, b"in-doubt!");
        // And the earlier committed transfer is still there.
        let balance = branch_a.data().get_u64(0).expect("balance");
        assert_eq!(balance, 500);
        println!("branch A balance: {balance}");
    }
    println!("ok: prepared state survived the crash and resolved to commit.");
}
