//! Bounded retry of transient device failures.
//!
//! Every device touchpoint in the library — log append and force,
//! status-block writes, segment writes during recovery and truncation —
//! goes through a [`Retrier`]: an operation that fails with a *transient*
//! error (per [`rvm_storage::DeviceError::is_transient`]) is retried up to
//! [`RetryPolicy::max_retries`] times with deterministic linear backoff.
//! The backoff sleeps through an injectable [`BackoffSleeper`], so tests
//! charge a simulated clock instead of wall time and run instantly.
//!
//! When retries exhaust — or the error was never transient — the failure
//! propagates and the caller decides whether the instance must be
//! poisoned (see `RvmError::Poisoned`).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use rvm_storage::Device;

use crate::segment::DeviceResolver;
use crate::stats::FaultCounters;

/// Sleeps for a backoff interval. The default sleeps the OS thread;
/// tests inject a closure that charges a `simclock::Clock` instead.
pub type BackoffSleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// A sleeper that blocks the calling thread for real.
pub fn thread_sleeper() -> BackoffSleeper {
    Arc::new(|d: Duration| {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    })
}

/// Bounded-retry policy for transient device faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure; 0 disables retry entirely.
    pub max_retries: u32,
    /// Base backoff; attempt `n` (1-based) sleeps `backoff * n` —
    /// deterministic linear backoff, no jitter, so schedules replay.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure propagates immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }
}

/// Executes device operations under a [`RetryPolicy`], charging the
/// shared [`FaultCounters`].
#[derive(Clone)]
pub(crate) struct Retrier {
    policy: RetryPolicy,
    sleeper: BackoffSleeper,
    counters: Arc<FaultCounters>,
}

impl Retrier {
    pub(crate) fn new(
        policy: RetryPolicy,
        sleeper: BackoffSleeper,
        counters: Arc<FaultCounters>,
    ) -> Self {
        Retrier {
            policy,
            sleeper,
            counters,
        }
    }

    /// Runs `f`, retrying transient failures per the policy.
    pub(crate) fn run<T>(
        &self,
        mut f: impl FnMut() -> rvm_storage::Result<T>,
    ) -> rvm_storage::Result<T> {
        let mut attempt: u32 = 0;
        loop {
            match f() {
                Ok(v) => {
                    if attempt > 0 {
                        self.counters
                            .transient_faults_healed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    (self.sleeper)(self.policy.backoff * attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`Device`] wrapper that retries transient failures of every
/// operation. This is what `Rvm::initialize` wraps the log device (and,
/// via [`retry_resolver`], every segment device) in.
///
/// Asynchronous submissions pass through to the inner device so a real
/// completion queue (file-device worker, simulated-disk overlap) stays
/// reachable; transient failures are healed at `wait`: a failed async
/// write is re-issued synchronously from a stash of its payload, and a
/// failed async sync falls back to a retried synchronous `sync` (a later
/// successful barrier covers at least the writes the original did).
pub(crate) struct RetryDevice {
    inner: Arc<dyn Device>,
    retrier: Retrier,
    /// Payloads of in-flight async writes, by token id, kept so a
    /// transient completion failure can be healed by re-issuing the write.
    inflight_writes: std::sync::Mutex<std::collections::HashMap<u64, (u64, Vec<u8>)>>,
}

impl RetryDevice {
    pub(crate) fn new(inner: Arc<dyn Device>, retrier: Retrier) -> Self {
        RetryDevice {
            inner,
            retrier,
            inflight_writes: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl Device for RetryDevice {
    fn len(&self) -> rvm_storage::Result<u64> {
        self.retrier.run(|| self.inner.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> rvm_storage::Result<()> {
        self.retrier.run(|| self.inner.read_at(offset, buf))
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> rvm_storage::Result<()> {
        self.retrier.run(|| self.inner.write_at(offset, buf))
    }

    fn sync(&self) -> rvm_storage::Result<()> {
        self.retrier.run(|| self.inner.sync())
    }

    fn set_len(&self, len: u64) -> rvm_storage::Result<()> {
        self.retrier.run(|| self.inner.set_len(len))
    }

    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> rvm_storage::Result<rvm_storage::VerifiedRead> {
        // Forwarded (not reimplemented over `read_at`) so mirror
        // read-repair underneath stays reachable through the retry layer.
        self.retrier
            .run(|| self.inner.read_verified(offset, buf, verify))
    }

    fn replica_health(&self) -> Option<(usize, usize)> {
        self.inner.replica_health()
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> rvm_storage::IoToken {
        let token = self.inner.submit_write(offset, data.clone());
        match token.into_inline() {
            Ok(Ok(())) => rvm_storage::IoToken::inline(Ok(())),
            Ok(Err(e)) if e.is_transient() => rvm_storage::IoToken::inline(
                self.retrier.run(|| self.inner.write_at(offset, &data)),
            ),
            Ok(Err(e)) => rvm_storage::IoToken::inline(Err(e)),
            Err(pending) => {
                self.inflight_writes
                    .lock()
                    .unwrap()
                    .insert(pending.id(), (offset, data));
                pending
            }
        }
    }

    fn submit_sync(&self) -> rvm_storage::IoToken {
        let token = self.inner.submit_sync();
        match token.into_inline() {
            Ok(Ok(())) => rvm_storage::IoToken::inline(Ok(())),
            Ok(Err(e)) if e.is_transient() => {
                rvm_storage::IoToken::inline(self.retrier.run(|| self.inner.sync()))
            }
            Ok(Err(e)) => rvm_storage::IoToken::inline(Err(e)),
            Err(pending) => pending,
        }
    }

    fn poll(&self, token: &rvm_storage::IoToken) -> bool {
        self.inner.poll(token)
    }

    fn wait(&self, token: rvm_storage::IoToken) -> rvm_storage::Result<()> {
        let pending = match token.into_inline() {
            Ok(result) => return result,
            Err(pending) => pending,
        };
        let id = pending.id();
        let result = self.inner.wait(pending);
        let stashed = self.inflight_writes.lock().unwrap().remove(&id);
        match result {
            Ok(()) => Ok(()),
            Err(e) if e.is_transient() => match stashed {
                Some((offset, data)) => self.retrier.run(|| self.inner.write_at(offset, &data)),
                None => self.retrier.run(|| self.inner.sync()),
            },
            Err(e) => Err(e),
        }
    }
}

/// Wraps a resolver so every device it hands out retries transient
/// failures. Covers segment writes in recovery and truncation.
pub(crate) fn retry_resolver(inner: DeviceResolver, retrier: Retrier) -> DeviceResolver {
    Arc::new(move |name: &str, min_len: u64| {
        let dev = inner(name, min_len)?;
        Ok(Arc::new(RetryDevice::new(dev, retrier.clone())) as Arc<dyn Device>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::DeviceError;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    fn retrier(policy: RetryPolicy) -> (Retrier, Arc<FaultCounters>, Arc<Mutex<Vec<Duration>>>) {
        let counters = Arc::new(FaultCounters::default());
        let sleeps = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sleeps);
        let sleeper: BackoffSleeper = Arc::new(move |d| s2.lock().unwrap().push(d));
        (
            Retrier::new(policy, sleeper, Arc::clone(&counters)),
            counters,
            sleeps,
        )
    }

    fn flaky_op(fail_first: u64, transient: bool) -> impl FnMut() -> rvm_storage::Result<u64> {
        let calls = AtomicU64::new(0);
        move || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            if n < fail_first {
                Err(DeviceError::Injected {
                    op: rvm_storage::FaultOp::Write,
                    transient,
                })
            } else {
                Ok(n)
            }
        }
    }

    #[test]
    fn transient_fault_heals_within_budget() {
        let (r, counters, sleeps) = retrier(RetryPolicy::default());
        let v = r.run(flaky_op(2, true)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(counters.io_retries.load(Ordering::Relaxed), 2);
        assert_eq!(counters.transient_faults_healed.load(Ordering::Relaxed), 1);
        // Linear backoff: base * 1, base * 2.
        let base = RetryPolicy::default().backoff;
        assert_eq!(*sleeps.lock().unwrap(), vec![base, base * 2]);
    }

    #[test]
    fn budget_exhaustion_propagates() {
        let (r, counters, _) = retrier(RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
        });
        let err = r.run(flaky_op(10, true)).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(counters.io_retries.load(Ordering::Relaxed), 2);
        assert_eq!(counters.transient_faults_healed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn permanent_fault_is_not_retried() {
        let (r, counters, _) = retrier(RetryPolicy::default());
        let err = r.run(flaky_op(1, false)).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(counters.io_retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_budget_disables_retry() {
        let (r, counters, _) = retrier(RetryPolicy::none());
        assert!(r.run(flaky_op(1, true)).is_err());
        assert_eq!(counters.io_retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn retry_device_heals_flaky_writes() {
        use rvm_storage::{FaultOp, FlakyDevice, FlakyFault, MemDevice};
        let mem = Arc::new(MemDevice::with_len(4096));
        let flaky = Arc::new(FlakyDevice::new(
            Arc::clone(&mem),
            vec![
                FlakyFault::transient(FaultOp::Write, 1),
                FlakyFault::transient(FaultOp::Sync, 1),
            ],
        ));
        let (r, counters, _) = retrier(RetryPolicy::default());
        let dev = RetryDevice::new(flaky, r);
        dev.write_at(0, b"hello").unwrap();
        dev.sync().unwrap();
        let mut buf = [0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(counters.transient_faults_healed.load(Ordering::Relaxed), 2);
    }
}
