//! Truncation machinery (§5.1.2).
//!
//! Truncation "is the process of reclaiming space allocated to log entries
//! by applying the changes contained in them to the recoverable data
//! segment". Two mechanisms exist:
//!
//! * **epoch truncation** — the crash-recovery procedure applied to the
//!   live log (implemented in [`crate::rvm`], reusing
//!   [`crate::recovery`]'s tree building exactly as the paper reused its
//!   recovery code);
//! * **incremental truncation** — dirty pages written directly from VM,
//!   coordinated by the per-region page vector (this module's
//!   [`page_vector`]) and the FIFO [`PageQueue`] of page modification
//!   descriptors (Figure 7).

pub mod page_vector;

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Weak};

use crate::region::RegionInner;

/// A page modification descriptor (Figure 7): the log offset and sequence
/// number of the *first* record referencing the page since it was last
/// clean.
pub(crate) struct PageDesc {
    /// The owning region (weak: regions may be unmapped while queued).
    pub region: Weak<RegionInner>,
    pub region_id: u64,
    /// Page index within the region.
    pub page: usize,
    /// Logical log offset of the first record referencing this page.
    pub offset: u64,
    /// Sequence number of that record.
    pub seq: u64,
}

/// FIFO queue of page modification descriptors.
///
/// "The queue contains no duplicate page references: a page is mentioned
/// only in the earliest descriptor in which it could appear." Because
/// records are enqueued in append order, descriptor offsets are
/// non-decreasing, so the head of the queue always bounds how far the log
/// head may advance.
#[derive(Default)]
pub(crate) struct PageQueue {
    queue: VecDeque<PageDesc>,
    queued: HashSet<(u64, usize)>,
}

impl PageQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a descriptor unless the page is already queued (in which
    /// case the earlier descriptor — with the earlier offset — stands).
    pub fn enqueue(&mut self, region: &Arc<RegionInner>, page: usize, offset: u64, seq: u64) {
        if self.queued.insert((region.id, page)) {
            self.queue.push_back(PageDesc {
                region: Arc::downgrade(region),
                region_id: region.id,
                page,
                offset,
                seq,
            });
        }
    }

    /// The earliest descriptor, if any.
    pub fn front(&self) -> Option<&PageDesc> {
        self.queue.front()
    }

    /// Removes the earliest descriptor.
    pub fn pop_front(&mut self) -> Option<PageDesc> {
        let desc = self.queue.pop_front()?;
        self.queued.remove(&(desc.region_id, desc.page));
        Some(desc)
    }

    /// Empties the queue (after an epoch truncation has applied the whole
    /// log).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.queued.clear();
    }

    /// Whether a descriptor for `(region_id, page)` is queued.
    pub fn contains(&self, region_id: u64, page: usize) -> bool {
        self.queued.contains(&(region_id, page))
    }

    /// Removes and returns every descriptor whose offset is below
    /// `offset`. Descriptor offsets are non-decreasing, so this is a
    /// prefix of the queue. Used when an epoch truncation freezes
    /// `[head, offset)`: the drained pages are covered by the epoch apply,
    /// and commits landing *during* the apply re-enqueue their pages with
    /// offsets at or past the boundary.
    pub fn drain_below(&mut self, offset: u64) -> Vec<PageDesc> {
        let mut drained = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.offset >= offset {
                break;
            }
            drained.push(self.pop_front().expect("front was Some"));
        }
        drained
    }

    /// Puts drained descriptors back at the queue front in their original
    /// order (epoch apply failed; the pages are still unapplied). A page
    /// re-enqueued meanwhile keeps its newer descriptor — the older
    /// drained one still lower-bounds it, so dropping the newer duplicate
    /// in favour of the earlier offset preserves the queue invariant.
    pub fn requeue_front(&mut self, drained: Vec<PageDesc>) {
        for desc in drained.into_iter().rev() {
            if self.queued.insert((desc.region_id, desc.page)) {
                self.queue.push_front(desc);
            } else {
                // A newer descriptor for the page was enqueued while the
                // epoch was in flight; replace it with the earlier one.
                if let Some(pos) = self
                    .queue
                    .iter()
                    .position(|d| d.region_id == desc.region_id && d.page == desc.page)
                {
                    self.queue.remove(pos);
                }
                self.queue.push_front(desc);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PAGE_SIZE;
    use crate::region::tests_support::make_test_region;

    #[test]
    fn enqueue_deduplicates_keeping_earliest() {
        let region = make_test_region(4 * PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&region, 0, 100, 1);
        q.enqueue(&region, 1, 200, 2);
        q.enqueue(&region, 0, 300, 3); // duplicate: ignored
        assert_eq!(q.len(), 2);
        let d = q.pop_front().unwrap();
        assert_eq!((d.page, d.offset, d.seq), (0, 100, 1));
        // After popping, the page may be enqueued again.
        q.enqueue(&region, 0, 400, 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().unwrap().page, 1);
    }

    #[test]
    fn clear_resets_dedup_state() {
        let region = make_test_region(PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&region, 0, 100, 1);
        q.clear();
        assert!(q.is_empty());
        q.enqueue(&region, 0, 500, 5);
        assert_eq!(q.len(), 1);
        assert_eq!(q.front().unwrap().offset, 500);
    }

    #[test]
    fn descriptors_survive_region_unmap_as_dead_weaks() {
        let region = make_test_region(PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&region, 0, 100, 1);
        drop(region);
        assert!(q.front().unwrap().region.upgrade().is_none());
    }

    #[test]
    fn drain_below_takes_the_offset_prefix() {
        let region = make_test_region(4 * PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&region, 0, 100, 1);
        q.enqueue(&region, 1, 200, 2);
        q.enqueue(&region, 2, 300, 3);
        let drained = q.drain_below(300);
        assert_eq!(drained.len(), 2);
        assert!(!q.contains(region.id, 0));
        assert!(!q.contains(region.id, 1));
        assert!(q.contains(region.id, 2));
        // Drained pages may be re-enqueued with new offsets.
        q.enqueue(&region, 0, 400, 4);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn requeue_front_restores_order_and_wins_over_duplicates() {
        let region = make_test_region(4 * PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&region, 0, 100, 1);
        q.enqueue(&region, 1, 200, 2);
        let drained = q.drain_below(u64::MAX);
        assert!(q.is_empty());
        // Page 1 re-enqueued with a newer offset while the epoch was in
        // flight; the drained (earlier) descriptor must win.
        q.enqueue(&region, 1, 900, 9);
        q.enqueue(&region, 3, 950, 10);
        q.requeue_front(drained);
        assert_eq!(q.len(), 3);
        let d = q.pop_front().unwrap();
        assert_eq!((d.page, d.offset), (0, 100));
        let d = q.pop_front().unwrap();
        assert_eq!((d.page, d.offset), (1, 200));
        let d = q.pop_front().unwrap();
        assert_eq!((d.page, d.offset), (3, 950));
    }

    #[test]
    fn distinct_regions_do_not_collide() {
        let a = make_test_region(PAGE_SIZE);
        let b = make_test_region(PAGE_SIZE);
        let mut q = PageQueue::new();
        q.enqueue(&a, 0, 100, 1);
        q.enqueue(&b, 0, 200, 2);
        assert_eq!(q.len(), 2);
    }
}
