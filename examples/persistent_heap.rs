//! A persistent linked structure: the recoverable allocator plus the
//! segment loader's stable pointers (§4.1's layered packages together).
//!
//! A linked list of log entries lives entirely in recoverable memory;
//! its links are [`PersistentPtr`]s that stay meaningful across process
//! lifetimes because the loader maps the segment at the same virtual
//! base every time.
//!
//! Run with: `cargo run -p rvm-examples --bin persistent_heap`

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, Rvm, TxnMode};
use rvm_alloc::RvmHeap;
use rvm_loader::{Loader, PersistentPtr};
use rvm_storage::MemDevice;

/// Node layout: `next: PersistentPtr (8) | len: u64 (8) | bytes`.
const NODE_HEADER: u64 = 16;
/// Head pointer lives at a fixed offset past the heap header.
const HEAD_SLOT_SIZE: u64 = 8;

fn push(
    rvm: &Rvm,
    loader: &Loader,
    heap: &RvmHeap,
    seg: &rvm_loader::LoadedSegment,
    head_slot: u64,
    text: &str,
) -> rvm::Result<()> {
    let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
    let node = heap.alloc(&seg.region, &mut txn, NODE_HEADER + text.len() as u64)?;
    let old_head = PersistentPtr(seg.region.get_u64(head_slot)?);
    seg.region.put_u64(&mut txn, node, old_head.0)?;
    seg.region.put_u64(&mut txn, node + 8, text.len() as u64)?;
    seg.region
        .write(&mut txn, node + NODE_HEADER, text.as_bytes())?;
    // Store the *stable* address in the head slot.
    loader.write_ptr(
        &mut txn,
        seg.ptr_to(head_slot),
        &seg.ptr_to(node).0.to_le_bytes(),
    )?;
    txn.commit(CommitMode::Flush)?;
    Ok(())
}

fn walk(
    loader: &Loader,
    seg: &rvm_loader::LoadedSegment,
    head_slot: u64,
) -> rvm::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut ptr = PersistentPtr(seg.region.get_u64(head_slot)?);
    while !ptr.is_null() {
        let header = loader.read_ptr(ptr, NODE_HEADER)?;
        let next = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let len = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let (segref, offset) = loader.resolve(ptr).expect("live pointer");
        let text = segref.region.read_vec(offset + NODE_HEADER, len)?;
        out.push(String::from_utf8_lossy(&text).into_owned());
        ptr = PersistentPtr(next);
    }
    Ok(out)
}

fn main() -> rvm::Result<()> {
    let log = Arc::new(MemDevice::with_len(4 << 20));
    let segments = MemResolver::new();
    let heap_len = 64 * rvm::PAGE_SIZE;
    let boot = |log: &Arc<MemDevice>, segs: &MemResolver| -> rvm::Result<Rvm> {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
    };

    // Incarnation 1: format the heap, push some entries.
    let head_slot;
    {
        let rvm = boot(&log, &segments)?;
        let mut loader = Loader::open(&rvm, "loadmap")?;
        let seg = loader.load(&rvm, "journal", heap_len)?;
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        let heap = RvmHeap::format(&seg.region, &mut txn)?;
        // Reserve the head slot as a real allocation so the heap never
        // hands it out again.
        head_slot = heap.alloc(&seg.region, &mut txn, HEAD_SLOT_SIZE)?;
        seg.region.put_u64(&mut txn, head_slot, 0)?;
        txn.commit(CommitMode::Flush)?;

        push(&rvm, &loader, &heap, &seg, head_slot, "first entry")?;
        push(&rvm, &loader, &heap, &seg, head_slot, "second entry")?;
        println!("incarnation 1 wrote: {:?}", walk(&loader, &seg, head_slot)?);
        rvm.terminate()?;
    }

    // Incarnation 2: reopen and keep appending — the stored pointers
    // still resolve because the loader reuses the same stable base.
    {
        let rvm = boot(&log, &segments)?;
        let mut loader = Loader::open(&rvm, "loadmap")?;
        let seg = loader.load(&rvm, "journal", heap_len)?;
        let heap = RvmHeap::open(&seg.region)?;
        push(
            &rvm,
            &loader,
            &heap,
            &seg,
            head_slot,
            "third entry (new life)",
        )?;
        let entries = walk(&loader, &seg, head_slot)?;
        println!("incarnation 2 reads: {entries:?}");
        assert_eq!(
            entries,
            vec!["third entry (new life)", "second entry", "first entry"]
        );
        let stats = heap.stats(&seg.region)?;
        println!(
            "heap: {} allocation(s), {} byte(s) used of {}",
            stats.allocations, stats.used_bytes, stats.total_bytes
        );
        rvm.terminate()?;
    }
    println!("ok: linked structure and its pointers survived the restart.");
    Ok(())
}
