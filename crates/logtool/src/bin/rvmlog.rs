//! `rvmlog` — post-mortem RVM log inspector (paper §6).
//!
//! ```text
//! rvmlog <log-file> summary
//! rvmlog <log-file> records [--backward]
//! rvmlog <log-file> history <segment> <offset> <len>
//! rvmlog <log-file> doctor
//! rvmlog <log-file> verify
//! ```
//!
//! `doctor` is a read-only damage scan: it reports torn/short records,
//! sequence gaps, and corrupt status copies — plus how much of each data
//! segment the checksum catalogs cover — and exits non-zero if the log
//! is damaged. It never mutates the image.
//!
//! `scrub` verifies every data segment page against its sidecar checksum
//! catalog, read-only, exiting non-zero on any mismatch. `salvage` is the
//! offline repair ladder: corrupt pages whose latest committed content
//! the live log span fully covers are rebuilt from the log; the rest are
//! reported unrecoverable (quarantined when next mapped).
//!
//! `verify` goes further: it proves the structural invariants of the log
//! format — reverse-displacement canonicality, forward/backward scan
//! symmetry, dual-copy status agreement, recovery-tree idempotence — and
//! exits non-zero on any violation, including ones `doctor` cannot see.
//!
//! `crashck` takes a crash-consistency *trace* (not a log) captured by
//! `rvm_crashmc`, enumerates every crash image the disk model permits,
//! and recovers each one, asserting the committed-prefix invariant.
//! `crashck-gen` produces such a trace from a canned workload.

use std::process::exit;
use std::sync::Arc;

use rvm_crashmc::enumerate::EnumConfig;
use rvm_crashmc::workload::{run_workload, Workload};
use rvm_crashmc::{check_trace, Trace};
use rvm_logtool::{format_entry, LogInspector};
use rvm_storage::FileDevice;

/// Resolves segment names (paths) to existing files only — unlike the
/// library's default resolver it never creates or grows a file, so scrub
/// and doctor stay side-effect-free on the filesystem.
fn strict_file_resolver() -> rvm_logtool::Resolver {
    Arc::new(|name: &str, _min_len: u64| {
        Ok(Arc::new(FileDevice::open(name)?) as Arc<dyn rvm_storage::Device>)
    })
}

fn usage() -> ! {
    eprintln!("usage: rvmlog <log-file> summary");
    eprintln!("       rvmlog <log-file> records [--backward]");
    eprintln!("       rvmlog <log-file> history <segment> <offset> <len>");
    eprintln!("       rvmlog <log-file> doctor");
    eprintln!("       rvmlog <log-file> verify");
    eprintln!("       rvmlog <log-file> scrub");
    eprintln!("       rvmlog <log-file> salvage");
    eprintln!("       rvmlog crashck <trace-file> [--seed <n>]");
    eprintln!(
        "       rvmlog crashck-gen <trace-file> <group|pipeline|truncate|spool|abort|bitrot|seeded:N>"
    );
    eprintln!("       rvmlog lint [rvm-lint options]");
    exit(2);
}

/// `rvmlog lint` — the workspace static analyzer. Takes no log file;
/// all arguments pass straight through to `rvm-lint` (`--json`,
/// `--root`, `--write-baseline`, `--update-design`, ...).
fn lint(args: &[String]) -> ! {
    exit(rvm_lint::cli_main(args));
}

fn crashck(args: &[String]) -> ! {
    let trace = match Trace::load(&args[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rvmlog: cannot load trace '{}': {e}", args[0]);
            exit(1);
        }
    };
    let mut cfg = EnumConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        let seed = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage());
        cfg.seed = seed;
    }
    let report = check_trace(&trace, &cfg);
    print!("{}", report.render());
    if !report.is_clean() {
        eprintln!(
            "rvmlog: crash-consistency violation (re-run with --seed {} on this trace to reproduce)",
            cfg.seed
        );
        exit(1);
    }
    exit(0);
}

fn crashck_gen(args: &[String]) -> ! {
    let workload = match args[1].as_str() {
        "group" => Workload::GroupCommit,
        "pipeline" => Workload::Pipeline,
        "truncate" => Workload::Truncation,
        "spool" => Workload::NoFlushSpool,
        "abort" => Workload::AbortMix,
        "bitrot" => Workload::BitRot,
        w => match w.strip_prefix("seeded:").and_then(|n| n.parse().ok()) {
            Some(seed) => Workload::Seeded(seed),
            None => usage(),
        },
    };
    let trace = run_workload(workload, Default::default());
    if let Err(e) = trace.save(&args[0]) {
        eprintln!("rvmlog: cannot write trace '{}': {e}", args[0]);
        exit(1);
    }
    println!(
        "wrote {} ({} ops, {} transactions)",
        args[0],
        trace.ops.len(),
        trace.txns.len()
    );
    exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("crashck") if args.len() >= 2 => crashck(&args[1..]),
        Some("crashck-gen") if args.len() == 3 => crashck_gen(&args[1..]),
        Some("lint") => lint(&args[1..]),
        _ => {}
    }
    if args.len() < 2 {
        usage();
    }
    let dev = match FileDevice::open(&args[0]) {
        Ok(dev) => Arc::new(dev),
        Err(e) => {
            eprintln!("rvmlog: cannot open '{}': {e}", args[0]);
            exit(1);
        }
    };
    let inspector = match LogInspector::open(dev) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("rvmlog: not a valid RVM log: {e}");
            exit(1);
        }
    };
    let result = match args[1].as_str() {
        "summary" => inspector.summary().map(|s| print!("{s}")),
        "records" => {
            let backward = args.get(2).is_some_and(|a| a == "--backward");
            let records = if backward {
                inspector.records_backward()
            } else {
                inspector.records()
            };
            records.map(|records| {
                for (off, rec) in records {
                    println!(
                        "@{off}: seq {} tid {} ranges {}",
                        rec.seq,
                        rec.tid,
                        rec.ranges.len()
                    );
                    for r in &rec.ranges {
                        println!(
                            "    {}[{}..{})",
                            r.seg,
                            r.offset,
                            r.offset + r.data.len() as u64
                        );
                    }
                }
            })
        }
        "history" if args.len() == 5 => {
            let offset: u64 = args[3].parse().unwrap_or_else(|_| usage());
            let len: u64 = args[4].parse().unwrap_or_else(|_| usage());
            inspector.history(&args[2], offset, len).map(|entries| {
                for e in entries {
                    println!("{}", format_entry(&e));
                }
            })
        }
        "doctor" => inspector.doctor().map(|report| {
            print!("{}", report.render());
            for coverage in inspector.checksum_coverage(&strict_file_resolver()) {
                println!("{}", coverage.render());
            }
            if report.is_damaged() {
                exit(1);
            }
        }),
        "scrub" => {
            let report = inspector.scrub_segments(&strict_file_resolver());
            print!("{}", report.render());
            if !report.is_clean() {
                exit(1);
            }
            Ok(())
        }
        "salvage" => inspector
            .salvage_segments(&strict_file_resolver())
            .map(|report| {
                print!("{}", report.render());
                if !report.is_clean() {
                    exit(1);
                }
            }),
        "verify" => inspector.verify().map(|report| {
            print!("{}", report.render());
            if !report.is_clean() {
                exit(1);
            }
        }),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("rvmlog: {e}");
        exit(1);
    }
}
