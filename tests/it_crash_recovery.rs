//! The crash-point matrix: a deterministic workload is run against a
//! fault-injecting log device that crashes after N bytes written, for a
//! sweep of N and both unsynced-write fates. After every crash the world
//! reboots from the surviving image and must satisfy the WAL contract:
//!
//! * every transaction whose flush-mode commit *returned* is present;
//! * the recovered state equals the state after some prefix of commits
//!   (atomicity: no transaction is half-applied);
//! * recovery is idempotent.

mod common {
    include!("lib.rs");
}

use std::sync::{Arc, Barrier};

use common::World;
use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{CrashPlan, Device, FaultDevice, MemDevice};

const SLOTS: u64 = 16;
const SLOT_SIZE: u64 = 64;
/// Offset where each transaction records its own index.
const INDEX_OFF: u64 = 2048;

/// Runs transaction `i` of the canonical workload: fill slot `i % SLOTS`
/// with byte `i` and record `i` at INDEX_OFF, all in one transaction.
fn run_txn(rvm: &Rvm, region: &Region, i: u64) -> rvm::Result<()> {
    let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
    region.write(
        &mut txn,
        (i % SLOTS) * SLOT_SIZE,
        &[i as u8; SLOT_SIZE as usize],
    )?;
    region.put_u64(&mut txn, INDEX_OFF, i)?;
    txn.commit(CommitMode::Flush)
}

/// Asserts the region equals the state after transactions `1..=k`.
fn assert_state_is_prefix(region: &Region, k: u64) {
    assert_eq!(region.get_u64(INDEX_OFF).unwrap(), k, "recorded index");
    for slot in 0..SLOTS {
        // The latest transaction <= k that wrote this slot.
        let expect: u8 = (1..=k)
            .rev()
            .find(|i| i % SLOTS == slot)
            .map(|i| i as u8)
            .unwrap_or(0);
        let got = region.read_vec(slot * SLOT_SIZE, SLOT_SIZE).unwrap();
        assert_eq!(
            got,
            vec![expect; SLOT_SIZE as usize],
            "slot {slot} after prefix {k}"
        );
    }
}

/// Runs the workload against a crash plan; returns (acked commits,
/// post-crash durable log image is left in `inner`).
fn run_until_crash(
    inner: Arc<MemDevice>,
    segments: &rvm::segment::MemResolver,
    plan: CrashPlan,
) -> u64 {
    let fault = Arc::new(FaultDevice::new(inner, plan));
    let rvm = match Rvm::initialize(
        Options::new(fault.clone())
            .resolver(segments.clone().into_resolver())
            .create_if_empty(),
    ) {
        Ok(rvm) => rvm,
        Err(_) => return 0, // crashed during create/recovery: nothing acked
    };
    let region = match rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)) {
        Ok(r) => r,
        Err(_) => {
            std::mem::forget(rvm);
            return 0;
        }
    };
    let mut acked = 0u64;
    for i in 1..=60u64 {
        match run_txn(&rvm, &region, i) {
            Ok(()) => acked = i,
            Err(_) => break,
        }
    }
    // The machine is dead: no destructors.
    std::mem::forget(rvm);
    acked
}

fn crash_matrix(unsynced_lost: bool) {
    // First, record how many bytes the full scenario writes.
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        for i in 1..=60 {
            run_txn(&rvm, &region, i).unwrap();
        }
        rvm.terminate().unwrap();
    }
    let total_bytes = {
        // Re-run against a recording FaultDevice to count bytes.
        let segments = rvm::segment::MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let fault = Arc::new(FaultDevice::recording(inner));
        let rvm = Rvm::initialize(
            Options::new(fault.clone())
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        for i in 1..=60 {
            run_txn(&rvm, &region, i).unwrap();
        }
        let n = fault.bytes_written();
        rvm.terminate().unwrap();
        n
    };
    assert!(total_bytes > 60 * 512, "sanity: {total_bytes}");

    // Sweep crash points across the whole run.
    let step = (total_bytes / 97).max(1); // a prime-ish sample of points
    let mut points_checked = 0;
    let mut crash_at = step / 2;
    while crash_at < total_bytes {
        let segments = rvm::segment::MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let plan = if unsynced_lost {
            CrashPlan::lose_unsynced_at(crash_at)
        } else {
            CrashPlan::torn_at(crash_at)
        };
        let acked = run_until_crash(inner.clone(), &segments, plan);

        // Reboot from the surviving image.
        let rvm = Rvm::initialize(
            Options::new(inner.clone())
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap_or_else(|e| panic!("recovery failed at crash point {crash_at}: {e}"));
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let recovered = region.get_u64(INDEX_OFF).unwrap();
        assert!(
            recovered >= acked,
            "crash at {crash_at}: acked {acked} but recovered only {recovered}"
        );
        assert!(recovered <= 60, "crash at {crash_at}");
        assert_state_is_prefix(&region, recovered);
        points_checked += 1;
        crash_at += step;
    }
    assert!(points_checked > 60, "checked {points_checked} crash points");
}

#[test]
fn crash_matrix_with_torn_writes() {
    crash_matrix(false);
}

#[test]
fn crash_matrix_with_lost_unsynced_writes() {
    crash_matrix(true);
}

/// Boots an RVM over `log` with a long group-commit accumulation window
/// and runs the group scenario: map, one warm-up flush commit, then
/// `n` barrier-released threads each flush-committing one slot (thread
/// `t` fills slot `t` with byte `10 + t`). Returns the number of group
/// members whose commit was acknowledged.
fn run_group_scenario(log: Arc<dyn Device>, segments: &rvm::segment::MemResolver, n: u64) -> u64 {
    let tuning = Tuning {
        group_commit_wait_us: 30_000,
        ..Tuning::default()
    };
    let rvm = match Rvm::initialize(
        Options::new(log)
            .resolver(segments.clone().into_resolver())
            .tuning(tuning)
            .create_if_empty(),
    ) {
        Ok(rvm) => Arc::new(rvm),
        Err(_) => return 0,
    };
    let region = match rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)) {
        Ok(r) => r,
        Err(_) => {
            std::mem::forget(rvm);
            return 0;
        }
    };
    if run_txn(&rvm, &region, 1).is_err() {
        std::mem::forget(rvm);
        return 0;
    }
    let barrier = Arc::new(Barrier::new(n as usize));
    let threads: Vec<_> = (0..n)
        .map(|t| {
            let rvm = Arc::clone(&rvm);
            let region = region.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
                region.write(&mut txn, t * SLOT_SIZE, &[10 + t as u8; SLOT_SIZE as usize])?;
                txn.commit(CommitMode::Flush)
            })
        })
        .collect();
    let acked = threads
        .into_iter()
        .map(|t| t.join())
        .filter(|r| matches!(r, Ok(Ok(()))))
        .count() as u64;
    std::mem::forget(rvm); // the machine dies
    acked
}

#[test]
fn crash_mid_group_recovers_the_whole_group_or_none() {
    const N: u64 = 4;

    // Measure the byte window the group batch occupies on the log.
    let (before_group, after_group) = {
        let segments = rvm::segment::MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let fault = Arc::new(FaultDevice::recording(inner));
        // Warm-up happens inside; measure around the whole scenario and
        // re-derive the group window from a second recording run that
        // stops after the warm-up.
        let acked = run_group_scenario(fault.clone(), &segments, N);
        assert_eq!(acked, N, "fault-free group run must ack all members");
        let total = fault.bytes_written();

        let segments2 = rvm::segment::MemResolver::new();
        let inner2 = Arc::new(MemDevice::with_len(1 << 20));
        let fault2 = Arc::new(FaultDevice::recording(inner2));
        let acked = run_group_scenario(fault2.clone(), &segments2, 0);
        assert_eq!(acked, 0);
        (fault2.bytes_written(), total)
    };
    assert!(
        after_group > before_group + N * SLOT_SIZE,
        "group window [{before_group}, {after_group}) too small"
    );

    // Sweep a sync-barrier crash (unsynced writes lost) across the group
    // window. Wherever it lands, the recovered image must contain the
    // whole group or none of it: the members shared one force, so no
    // proper subset may be durable.
    let step = ((after_group - before_group) / 13).max(1);
    let mut crash_at = before_group + 1;
    let mut none_seen = false;
    let mut all_seen = false;
    while crash_at < after_group + step {
        let segments = rvm::segment::MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let fault = Arc::new(FaultDevice::new(
            inner.clone(),
            CrashPlan::lose_unsynced_at(crash_at),
        ));
        let acked = run_group_scenario(fault, &segments, N);

        let rvm = Rvm::initialize(
            Options::new(inner)
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap_or_else(|e| panic!("recovery failed at crash point {crash_at}: {e}"));
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let present: Vec<bool> = (0..N)
            .map(|t| region.read_vec(t * SLOT_SIZE, 1).unwrap()[0] == 10 + t as u8)
            .collect();
        let count = present.iter().filter(|&&p| p).count() as u64;
        assert!(
            count == 0 || count == N,
            "crash at {crash_at}: partial group recovered: {present:?}"
        );
        if count == 0 {
            none_seen = true;
        } else {
            all_seen = true;
            assert_eq!(acked, N, "members present without every ack at {crash_at}");
        }
        assert!(acked == 0 || count == N, "acked but lost at {crash_at}");
        // The warm-up commit (slot 1 <- byte 1, unless the group
        // overwrote... it did not: the group writes 10+t) must survive
        // every crash point past the warm-up force.
        assert_eq!(region.get_u64(INDEX_OFF).unwrap(), 1, "warm-up lost");
        crash_at += step;
    }
    assert!(
        none_seen && all_seen,
        "sweep never saw both outcomes (none={none_seen}, all={all_seen})"
    );
}

#[test]
fn recovery_is_idempotent_after_a_crash() {
    let segments = rvm::segment::MemResolver::new();
    let inner = Arc::new(MemDevice::with_len(1 << 20));
    // Formatting + the first status write consume ~25 KB before the
    // first record; crash a few transactions in.
    let acked = run_until_crash(inner.clone(), &segments, CrashPlan::torn_at(60_000));
    assert!(acked > 0);

    // First recovery.
    let boot = |img: Arc<MemDevice>| {
        Rvm::initialize(
            Options::new(img)
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap()
    };
    let rvm = boot(inner.clone());
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let first = region.get_u64(INDEX_OFF).unwrap();
    let snapshot: Vec<u8> = segments.get("seg").unwrap().snapshot();
    std::mem::forget(rvm); // crash immediately after recovery

    // Second recovery over the same image must land in the same state.
    let rvm = boot(inner);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_eq!(region.get_u64(INDEX_OFF).unwrap(), first);
    assert_eq!(segments.get("seg").unwrap().snapshot(), snapshot);
}

#[test]
fn crash_during_spool_flush_preserves_commit_order_prefix() {
    // No-flush commits build up in the spool; the crash hits mid-flush.
    // Whatever survives must be a *prefix* of the commit order: seeing
    // transaction i implies seeing every j < i that wrote the log before
    // it.
    for crash_at in [600u64, 2000, 4000, 8000, 16000] {
        let segments = rvm::segment::MemResolver::new();
        let inner = Arc::new(MemDevice::with_len(1 << 20));
        let fault = Arc::new(FaultDevice::new(
            inner.clone(),
            CrashPlan::torn_at(crash_at),
        ));
        {
            let rvm = match Rvm::initialize(
                Options::new(fault.clone())
                    .resolver(segments.clone().into_resolver())
                    .create_if_empty(),
            ) {
                Ok(rvm) => rvm,
                Err(_) => continue,
            };
            let Ok(region) = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)) else {
                std::mem::forget(rvm);
                continue;
            };
            for i in 1..=20u64 {
                let Ok(mut txn) = rvm.begin_transaction(TxnMode::Restore) else {
                    break;
                };
                if region.put_u64(&mut txn, i * 8, i).is_err() {
                    break;
                }
                if txn.commit(CommitMode::NoFlush).is_err() {
                    break;
                }
            }
            let _ = rvm.flush(); // may crash here
            std::mem::forget(rvm);
        }

        let rvm = Rvm::initialize(
            Options::new(inner)
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        // Find the highest surviving transaction, then require all lower
        // ones to be present too.
        let mut highest = 0;
        for i in 1..=20u64 {
            if region.get_u64(i * 8).unwrap() == i {
                highest = i;
            }
        }
        for i in 1..=highest {
            assert_eq!(
                region.get_u64(i * 8).unwrap(),
                i,
                "crash at {crash_at}: transaction {i} missing below survivor {highest}"
            );
        }
    }
}

#[test]
fn segment_data_survives_even_when_log_is_reused() {
    // Commit, truncate (data reaches the segment), crash, recover with an
    // empty log: the segment alone must carry the state.
    let world = World::new(64 * 1024);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        for i in 1..=10 {
            run_txn(&rvm, &region, i).unwrap();
        }
        rvm.truncate().unwrap();
        assert_eq!(rvm.query().log.used, 0);
        std::mem::forget(rvm);
    }
    let rvm = world.boot();
    assert_eq!(rvm.recovery_report().records_replayed, 0);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    assert_state_is_prefix(&region, 10);
}
