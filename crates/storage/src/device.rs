//! The [`Device`] trait.

use std::sync::Arc;

use crate::Result;

/// Outcome of a [`Device::read_verified`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedRead {
    /// The data read passed verification on the first attempt.
    Clean,
    /// Verified data was found, but only after at least one copy failed
    /// verification and was repaired (mirrored devices: read-repair of the
    /// losing replica).
    Repaired,
    /// No copy of the data passed verification; the buffer holds the
    /// best-effort (unverified) bytes. The caller escalates — e.g. to log
    /// reconstruction or quarantine.
    Corrupt,
}

impl VerifiedRead {
    /// `true` unless the read came back [`VerifiedRead::Corrupt`].
    pub fn is_verified(self) -> bool {
        !matches!(self, VerifiedRead::Corrupt)
    }
}

/// Completion token for an asynchronous device operation submitted with
/// [`Device::submit_write`] or [`Device::submit_sync`].
///
/// A token is either *inline* — the operation already ran synchronously at
/// submit time and the token carries its result, which [`Device::wait`]
/// simply returns — or *pending*, carrying a device-assigned completion id
/// that the submitting device resolves in its own `wait`/`poll` overrides.
/// The inline form is what the default trait methods produce, so every
/// existing [`Device`] implementation is async-capable (just without
/// overlap) for free; devices with a real asynchronous path (a thread-backed
/// file device, the simulated disk's overlapped cost model) return pending
/// tokens.
///
/// Tokens are not `Clone`: completion is consumed exactly once by `wait`.
#[derive(Debug)]
pub struct IoToken {
    id: u64,
    inline: Option<Result<()>>,
}

impl IoToken {
    /// A token for an operation that already completed at submit time with
    /// `result`. [`Device::wait`]'s default returns the stored result.
    pub fn inline(result: Result<()>) -> Self {
        IoToken {
            id: 0,
            inline: Some(result),
        }
    }

    /// A token for an in-flight operation identified by the submitting
    /// device's completion id `id`. The device that minted it must override
    /// [`Device::wait`] (and usually [`Device::poll`]) to resolve it.
    pub fn pending(id: u64) -> Self {
        IoToken { id, inline: None }
    }

    /// The completion id for pending tokens (0 for inline tokens).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `true` if the operation completed at submit time and the token
    /// carries its result.
    pub fn is_inline(&self) -> bool {
        self.inline.is_some()
    }

    /// Consumes the token, returning the inline result if there is one.
    /// Wrappers call this first and forward pending tokens to their inner
    /// device.
    pub fn into_inline(self) -> std::result::Result<Result<()>, IoToken> {
        match self.inline {
            Some(r) => Ok(r),
            None => Err(self),
        }
    }
}

/// A byte-addressable, synchronizable storage device.
///
/// This is the paper's notion of "a Unix file or a raw disk partition"
/// (§3.3): positional reads and writes plus a synchronous flush whose return
/// is the *only* durability point. RVM's permanence guarantee rests entirely
/// on the contract of [`Device::sync`]:
///
/// * data from a `write_at` that completed *before* the last successful
///   `sync` must survive a crash;
/// * data written *after* the last `sync` may be lost, and a single write
///   may be torn (a prefix persists).
///
/// Implementations must be safe to share across threads; RVM serializes
/// conflicting accesses itself but may issue reads concurrently.
pub trait Device: Send + Sync {
    /// Returns the current length of the device in bytes.
    fn len(&self) -> Result<u64>;

    /// Returns `true` if the device has zero length.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads `buf.len()` bytes starting at `offset`, filling `buf` exactly.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes all of `data` starting at `offset`.
    ///
    /// Writes beyond the end of the device must fail with
    /// [`DeviceError::OutOfBounds`](crate::DeviceError::OutOfBounds);
    /// devices are sized explicitly with [`Device::set_len`].
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Forces all completed writes to stable storage.
    fn sync(&self) -> Result<()>;

    /// Resizes the device, zero-filling any extension.
    fn set_len(&self, len: u64) -> Result<()>;

    /// Reads `buf.len()` bytes at `offset` and checks them against
    /// `verify` (typically a checksum predicate supplied by the caller —
    /// the device itself holds no checksums).
    ///
    /// The default implementation is a plain read followed by the check.
    /// Devices holding redundant copies (see
    /// [`MirrorDevice`](crate::MirrorDevice)) override it to try each copy
    /// until one verifies, repairing the losers in place (read-repair).
    /// Wrappers should forward so the redundancy underneath stays visible.
    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> Result<VerifiedRead> {
        self.read_at(offset, buf)?;
        Ok(if verify(buf) {
            VerifiedRead::Clean
        } else {
            VerifiedRead::Corrupt
        })
    }

    /// Replica health as `(alive, total)` for devices with internal
    /// redundancy; `None` for plain devices. Wrappers forward.
    fn replica_health(&self) -> Option<(usize, usize)> {
        None
    }

    /// Submits an asynchronous write of `data` at `offset`, returning a
    /// completion token for [`Device::wait`].
    ///
    /// The durability contract is unchanged: the write is *completed* (in
    /// the [`Device::sync`] sense) only once `wait` on its token returns.
    /// A sync submitted after a write covers that write exactly when the
    /// write was submitted first on the same device.
    ///
    /// The default runs the write synchronously and returns an inline
    /// token, so plain devices need no override. Fault-injecting wrappers
    /// evaluate their schedule here, at submit, but deliver the error at
    /// `wait` — mirroring real completion-queue semantics.
    fn submit_write(&self, offset: u64, data: Vec<u8>) -> IoToken {
        IoToken::inline(self.write_at(offset, &data))
    }

    /// Submits an asynchronous durability barrier covering every write
    /// submitted (or issued with [`Device::write_at`]) before this call,
    /// returning a completion token. The barrier has *taken effect* only
    /// once [`Device::wait`] on the token returns `Ok`.
    ///
    /// The default runs [`Device::sync`] synchronously and returns an
    /// inline token.
    fn submit_sync(&self) -> IoToken {
        IoToken::inline(self.sync())
    }

    /// Returns `true` once the operation behind `token` has completed
    /// (successfully or not); `wait` will then not block. Inline tokens
    /// are always complete.
    fn poll(&self, token: &IoToken) -> bool {
        let _ = token;
        true
    }

    /// Blocks until the operation behind `token` completes and returns its
    /// result. Must be called on the same device that minted the token.
    ///
    /// The default resolves inline tokens; devices that mint pending
    /// tokens must override it.
    fn wait(&self, token: IoToken) -> Result<()> {
        match token.into_inline() {
            Ok(result) => result,
            // A pending token can only reach the default when a device
            // overrode submit_* without overriding wait; treat the
            // operation as already complete rather than hang.
            Err(_pending) => Ok(()),
        }
    }
}

/// A reference-counted trait object for any device.
pub type SharedDevice = Arc<dyn Device>;

impl<D: Device + ?Sized> Device for Arc<D> {
    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        (**self).write_at(offset, data)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        (**self).set_len(len)
    }

    fn read_verified(
        &self,
        offset: u64,
        buf: &mut [u8],
        verify: &(dyn Fn(&[u8]) -> bool + Sync),
    ) -> Result<VerifiedRead> {
        (**self).read_verified(offset, buf, verify)
    }

    fn replica_health(&self) -> Option<(usize, usize)> {
        (**self).replica_health()
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> IoToken {
        (**self).submit_write(offset, data)
    }

    fn submit_sync(&self) -> IoToken {
        (**self).submit_sync()
    }

    fn poll(&self, token: &IoToken) -> bool {
        (**self).poll(token)
    }

    fn wait(&self, token: IoToken) -> Result<()> {
        (**self).wait(token)
    }
}
