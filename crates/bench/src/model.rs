//! The simulated machine and cost model.
//!
//! Constants are calibrated against the anchors the paper states
//! explicitly (derivations in EXPERIMENTS.md):
//!
//! * a log force averages **17.4 ms** (§7.1.2) — produced by
//!   [`DiskParams::circa_1990`];
//! * a Mach RPC costs **430 µs** against 0.7 µs for a local call (§3.3);
//! * RVM needs **about half** the CPU per transaction of Camelot
//!   (Figure 9);
//! * best-case observed throughput is within 15 % of the 57.4 txn/s bound
//!   (§7.1.2), i.e. ≈ 48.5 txn/s, fixing total per-transaction CPU+I/O
//!   overhead beyond the force at ≈ 3 ms.

use simclock::SimTime;
use simdisk::DiskParams;

/// The benchmark machine (a DECstation 5000/200-class host, §7.1).
#[derive(Debug, Clone)]
pub struct Machine {
    /// Physical memory: 64 MB.
    pub pmem_bytes: u64,
    /// Frames available to RVM's recoverable data after the OS, the
    /// server binary, and RVM's own buffers take their share.
    pub rvm_avail_bytes: u64,
    /// Frames available under Camelot: its six system tasks squeeze the
    /// pool further (§2.3 "considerable paging and context switching
    /// overheads").
    pub camelot_avail_bytes: u64,
    /// Parameters of the three dedicated disks (log, data, paging).
    pub disk: DiskParams,
}

impl Default for Machine {
    fn default() -> Self {
        Self {
            pmem_bytes: 64 << 20,
            rvm_avail_bytes: 48 << 20,
            camelot_avail_bytes: 36 << 20,
            disk: DiskParams::circa_1990(),
        }
    }
}

/// CPU path-length model for the RVM library.
#[derive(Debug, Clone)]
pub struct RvmCostModel {
    /// `begin_transaction`.
    pub cpu_begin: SimTime,
    /// One `set_range` (range bookkeeping + old-value copy).
    pub cpu_set_range: SimTime,
    /// `end_transaction` fixed path (record build, force issue).
    pub cpu_commit: SimTime,
    /// Per byte copied into the log record.
    pub cpu_per_logged_byte_ns: u64,
    /// VM fault service (trap + pagein bookkeeping).
    pub cpu_fault: SimTime,
    /// Truncation: per log byte scanned.
    pub cpu_trunc_per_scanned_byte_ns: u64,
    /// Truncation: per disjoint range applied to a segment.
    pub cpu_trunc_per_range: SimTime,
}

impl Default for RvmCostModel {
    fn default() -> Self {
        Self {
            cpu_begin: SimTime::from_micros(60),
            cpu_set_range: SimTime::from_micros(90),
            cpu_commit: SimTime::from_micros(1500),
            cpu_per_logged_byte_ns: 150,
            cpu_fault: SimTime::from_micros(500),
            cpu_trunc_per_scanned_byte_ns: 20,
            cpu_trunc_per_range: SimTime::from_micros(40),
        }
    }
}

impl RvmCostModel {
    /// Base CPU of one 4-range TPC-A transaction, excluding faults and
    /// truncation (should come out near 1.6–1.7 ms — half of Camelot's).
    pub fn base_txn_cpu(&self, logged_bytes: u64) -> SimTime {
        self.cpu_begin
            + self.cpu_set_range * 4
            + self.cpu_commit
            + SimTime::from_nanos(self.cpu_per_logged_byte_ns * logged_bytes)
    }
}

/// Log device sizing for the TPC-A runs: large enough that epoch
/// truncation is amortized over tens of thousands of transactions, as a
/// dedicated log disk or raw partition would be (§3.3).
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Log device size.
    pub device_bytes: u64,
    /// Truncation threshold (fraction of the record area).
    pub threshold: f64,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            device_bytes: 96 << 20,
            threshold: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rvm_base_cpu_is_about_half_of_camelots() {
        let rvm = RvmCostModel::default().base_txn_cpu(600);
        // Camelot: 5 IPCs + context switches + base (see CamelotParams).
        let camelot_approx = SimTime::from_micros(5 * 550 + 900 + 120);
        let ratio = camelot_approx.as_secs_f64() / rvm.as_secs_f64();
        assert!(
            (1.6..2.6).contains(&ratio),
            "CPU ratio should be ~2 (Figure 9), got {ratio}"
        );
    }

    #[test]
    fn machine_defaults_are_consistent() {
        let m = Machine::default();
        assert!(m.rvm_avail_bytes < m.pmem_bytes);
        assert!(m.camelot_avail_bytes < m.rvm_avail_bytes);
    }
}
