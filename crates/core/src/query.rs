//! Results of the `query` operation (§4.2, Figure 4d).

use crate::check::CheckViolation;
use crate::stats::StatsSnapshot;

/// Log geometry and occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogInfo {
    /// Logical offset of the oldest live record.
    pub head: u64,
    /// Logical offset one past the newest record.
    pub tail: u64,
    /// Live bytes (`tail - head`).
    pub used: u64,
    /// Record-area capacity.
    pub capacity: u64,
    /// `used / capacity`.
    pub utilization: f64,
}

/// Library-wide information returned by [`Rvm::query`](crate::Rvm::query).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInfo {
    /// Transactions begun but not yet committed or aborted.
    pub active_transactions: u64,
    /// Currently mapped regions.
    pub mapped_regions: usize,
    /// Mapped regions quarantined into read-only degraded mode by
    /// unrecoverable media corruption (see
    /// [`RvmError::Media`](crate::RvmError::Media)).
    pub regions_degraded: usize,
    /// Healthy replicas across every mirrored device in play (the log
    /// plus resolved segments); 0 when nothing is mirrored.
    pub replicas_alive: usize,
    /// Total replicas across those mirrors; `replicas_alive <
    /// replicas_total` means a mirror is running degraded and
    /// [`MirrorDevice::readmit_replica`](rvm_storage::MirrorDevice) (or a
    /// resilver) is due.
    pub replicas_total: usize,
    /// Committed no-flush transactions awaiting a flush.
    pub spooled_transactions: usize,
    /// Record bytes awaiting a flush.
    pub spool_bytes: u64,
    /// Dirty pages queued for incremental truncation.
    pub queued_pages: usize,
    /// Whether an epoch truncation is applying its frozen span right
    /// now (commits keep flowing past it; see
    /// [`Rvm::truncate`](crate::Rvm::truncate)).
    pub truncation_in_flight: bool,
    /// Log geometry.
    pub log: LogInfo,
    /// Whether the instance is poisoned (see
    /// [`RvmError::Poisoned`](crate::RvmError::Poisoned)).
    pub poisoned: bool,
    /// Contract violations recorded by the debug-mode checker (empty
    /// unless [`Tuning::check_unlogged_writes`](crate::Tuning) or
    /// [`Tuning::check_range_conflicts`](crate::Tuning) is on).
    pub check_violations: Vec<CheckViolation>,
    /// Operation counters.
    pub stats: StatsSnapshot,
}

impl QueryInfo {
    /// Log forces per flush-mode commit — the measured group-commit
    /// amortization ratio. 1.0 means every flush commit paid its own
    /// force; with group commit engaged under concurrency this drops
    /// toward `1 / mean batch size`. See
    /// [`StatsSnapshot::forces_per_flush_commit`] for the caveat about
    /// mixed workloads.
    pub fn log_force_amortization(&self) -> f64 {
        self.stats.forces_per_flush_commit()
    }

    /// Mean transactions per group-commit batch (0 when no batch ran).
    pub fn mean_group_batch(&self) -> f64 {
        self.stats.mean_group_batch()
    }
}
