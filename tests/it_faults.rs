//! The transient-fault matrix: a deterministic workload runs against a
//! flaky log device (and flaky segment devices) whose Nth operations
//! fail on a scripted or seeded schedule. The library's contract under
//! injected faults:
//!
//! * transient faults within the retry budget *heal* — every commit
//!   succeeds and the final state is identical to a fault-free run,
//!   with the healing visible in the stats counters;
//! * faults that exhaust the budget (or permanent faults) *poison* the
//!   instance: mutating operations fail fast with `RvmError::Poisoned`,
//!   reads of mapped regions keep working, and a fresh `initialize`
//!   over the same devices recovers every acknowledged commit;
//! * a crash at *any* device operation during recovery or truncation
//!   leaves an image from which re-recovery reaches the full committed
//!   state, idempotently.

mod common {
    include!("lib.rs");
}

use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use common::World;
use rvm::segment::{flaky_resolver, MemResolver};
use rvm::{
    BackoffSleeper, CommitMode, Options, Region, RegionDescriptor, RetryPolicy, Rvm, RvmError,
    Tuning, TxnMode, PAGE_SIZE,
};
use rvm_storage::{FaultClock, FaultOp, FlakyDevice, FlakyFault, MemDevice};

const SLOTS: u64 = 16;
const SLOT_SIZE: u64 = 64;
/// Offset where each transaction records its own index.
const INDEX_OFF: u64 = 2048;

/// Runs transaction `i` of the canonical workload: fill slot `i % SLOTS`
/// with byte `i` and record `i` at INDEX_OFF, all in one transaction.
fn run_txn(rvm: &Rvm, region: &Region, i: u64) -> rvm::Result<()> {
    let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
    region.write(
        &mut txn,
        (i % SLOTS) * SLOT_SIZE,
        &[i as u8; SLOT_SIZE as usize],
    )?;
    region.put_u64(&mut txn, INDEX_OFF, i)?;
    txn.commit(CommitMode::Flush)
}

/// Asserts the region equals the state after transactions `1..=k`.
fn assert_state_is_prefix(region: &Region, k: u64) {
    assert_eq!(region.get_u64(INDEX_OFF).unwrap(), k, "recorded index");
    for slot in 0..SLOTS {
        let expect: u8 = (1..=k)
            .rev()
            .find(|i| i % SLOTS == slot)
            .map(|i| i as u8)
            .unwrap_or(0);
        let got = region.read_vec(slot * SLOT_SIZE, SLOT_SIZE).unwrap();
        assert_eq!(
            got,
            vec![expect; SLOT_SIZE as usize],
            "slot {slot} after prefix {k}"
        );
    }
}

/// A sleeper that records the requested backoffs instead of sleeping, so
/// fault tests run instantly.
fn recording_sleeper() -> (BackoffSleeper, Arc<Mutex<Vec<Duration>>>) {
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&sleeps);
    (Arc::new(move |d| s2.lock().unwrap().push(d)), sleeps)
}

fn descriptor() -> RegionDescriptor {
    RegionDescriptor::new("seg", 0, PAGE_SIZE)
}

/// Options for a flaky world: the log and every resolved segment device
/// share one fault clock, and retry backoff is instant.
fn flaky_options(
    log: &Arc<MemDevice>,
    segments: &MemResolver,
    clock: &Arc<FaultClock>,
    sleeper: BackoffSleeper,
) -> Options {
    Options::new(Arc::new(FlakyDevice::with_clock(
        Arc::clone(log),
        Arc::clone(clock),
    )))
    .resolver(flaky_resolver(
        segments.clone().into_resolver(),
        Arc::clone(clock),
    ))
    .retry_sleeper(sleeper)
    .create_if_empty()
}

/// Options over the bare devices (the "repaired hardware" reboot).
fn clean_options(log: &Arc<MemDevice>, segments: &MemResolver) -> Options {
    Options::new(log.clone())
        .resolver(segments.clone().into_resolver())
        .create_if_empty()
}

#[test]
fn transient_faults_heal_and_state_matches_fault_free_run() {
    const N: u64 = 25;

    // Fault-free reference run.
    let reference = {
        let world = World::new(1 << 20);
        let rvm = world.boot();
        let region = rvm.map(&descriptor()).unwrap();
        for i in 1..=N {
            run_txn(&rvm, &region, i).unwrap();
        }
        let snap = region.read_vec(0, PAGE_SIZE).unwrap();
        rvm.terminate().unwrap();
        snap
    };

    // The same run over a flaky log + flaky segments: transient faults
    // sprinkled across reads, writes, and syncs, every run shorter than
    // the default retry budget.
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let clock = FaultClock::new(vec![
        FlakyFault::transient(FaultOp::Read, 1),
        FlakyFault::transient(FaultOp::Write, 3),
        FlakyFault::transient(FaultOp::Sync, 2),
        FlakyFault::transient_run(FaultOp::Write, 12, 2),
        FlakyFault::transient_run(FaultOp::Sync, 9, 3),
        FlakyFault::transient(FaultOp::Write, 31),
    ]);
    let (sleeper, sleeps) = recording_sleeper();
    let rvm = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    for i in 1..=N {
        run_txn(&rvm, &region, i).unwrap_or_else(|e| panic!("txn {i} failed to heal: {e}"));
    }
    assert_state_is_prefix(&region, N);
    assert_eq!(region.read_vec(0, PAGE_SIZE).unwrap(), reference);

    let q = rvm.query();
    assert!(!q.poisoned);
    assert!(q.stats.io_retries >= clock.injected(), "{q:?}");
    assert!(q.stats.transient_faults_healed > 0, "{q:?}");
    assert_eq!(q.stats.poisonings, 0, "{q:?}");
    assert!(clock.injected() > 0, "schedule never fired");
    assert!(
        !sleeps.lock().unwrap().is_empty(),
        "backoff went through the injected sleeper"
    );
    rvm.terminate().unwrap();

    // The durable image is also identical to the fault-free run.
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    assert_eq!(region.read_vec(0, PAGE_SIZE).unwrap(), reference);
}

#[test]
fn exhausted_retries_poison_the_instance_and_recovery_rescues_commits() {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    // From the 30th log/segment write on, every write fails; the retry
    // budget (3) cannot outlast the run, so some commit must poison.
    let clock = FaultClock::new(vec![FlakyFault::transient_run(FaultOp::Write, 30, 1_000)]);
    let (sleeper, _) = recording_sleeper();
    let rvm = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();

    let mut acked = 0u64;
    let mut failure = None;
    for i in 1..=40u64 {
        match run_txn(&rvm, &region, i) {
            Ok(()) => acked = i,
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    let failure = failure.expect("the write fault never hit a commit");
    assert!(acked > 0, "no transaction committed before the fault");
    assert!(
        matches!(failure, RvmError::Device(_)),
        "commit failed with {failure}"
    );

    // Poisoned: mutating entry points fail fast, before touching devices.
    assert!(rvm.is_poisoned());
    assert!(matches!(
        rvm.begin_transaction(TxnMode::Restore),
        Err(RvmError::Poisoned)
    ));
    assert!(matches!(rvm.flush(), Err(RvmError::Poisoned)));
    assert!(matches!(rvm.truncate(), Err(RvmError::Poisoned)));
    assert!(matches!(rvm.map(&descriptor()), Err(RvmError::Poisoned)));

    // Reads of the mapped region keep working.
    assert_state_is_prefix(&region, acked);

    let q = rvm.query();
    assert!(q.poisoned);
    assert_eq!(q.stats.poisonings, 1);
    assert!(q.stats.io_retries >= u64::from(RetryPolicy::default().max_retries));

    // Shutdown refuses to touch the durable image; the failure hands the
    // poisoned instance back for inspection before it is dropped.
    let failure = rvm.terminate().expect_err("poisoned terminate must fail");
    assert!(matches!(failure.error, RvmError::Poisoned));

    // A fresh instance over the same devices recovers every acknowledged
    // commit.
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    let recovered = region.get_u64(INDEX_OFF).unwrap();
    assert!(recovered >= acked, "acked {acked}, recovered {recovered}");
    assert_state_is_prefix(&region, recovered);
    assert!(!rvm.is_poisoned());
    rvm.terminate().unwrap();
}

/// Tuning with a long group-commit accumulation window, so that
/// barrier-released committers deterministically land in one batch.
fn grouped_tuning() -> Tuning {
    Tuning {
        group_commit_wait_us: 100_000,
        ..Tuning::default()
    }
}

/// Runs the setup prefix of the group-fault scenario — initialize, map,
/// one warm-up flush commit — against `options`, returning the instance
/// and region. The prefix's device-operation counts are deterministic,
/// which lets callers schedule a fault at the first group operation.
fn group_setup(options: Options) -> (Arc<Rvm>, Region) {
    let rvm = Arc::new(Rvm::initialize(options).unwrap());
    let region = rvm.map(&descriptor()).unwrap();
    run_txn(&rvm, &region, 1).unwrap(); // warm-up: slot 1 holds byte 1
    (rvm, region)
}

/// Releases `n` threads into one flush commit each (thread `t` fills
/// slot `t` with byte `10 + t`) and collects the per-thread results.
fn run_group(rvm: &Arc<Rvm>, region: &Region, n: u64) -> Vec<rvm::Result<()>> {
    let barrier = Arc::new(Barrier::new(n as usize));
    let threads: Vec<_> = (0..n)
        .map(|t| {
            let rvm = Arc::clone(rvm);
            let region = region.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
                region.write(&mut txn, t * SLOT_SIZE, &[10 + t as u8; SLOT_SIZE as usize])?;
                txn.commit(CommitMode::Flush)
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// Asserts slot `t` holds `expected` in every byte.
fn assert_slot(region: &Region, t: u64, expected: u8) {
    assert_eq!(
        region.read_vec(t * SLOT_SIZE, SLOT_SIZE).unwrap(),
        vec![expected; SLOT_SIZE as usize],
        "slot {t}"
    );
}

#[test]
fn failed_group_force_fails_every_member_and_poisons_once() {
    const N: u64 = 4;

    // Dry run: count device syncs consumed by the setup prefix. The next
    // sync after that is the group's shared force.
    let dry_syncs = {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let segments = MemResolver::new();
        let clock = FaultClock::new(vec![]);
        let (sleeper, _) = recording_sleeper();
        let (rvm, _region) =
            group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(grouped_tuning()));
        let (_, _, syncs) = clock.ops_seen();
        std::mem::forget(rvm);
        syncs
    };
    assert!(dry_syncs > 0);

    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let clock = FaultClock::new(vec![FlakyFault::permanent(FaultOp::Sync, dry_syncs + 1)]);
    let (sleeper, _) = recording_sleeper();
    let (rvm, region) =
        group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(grouped_tuning()));

    let results = run_group(&rvm, &region, N);

    // The shared force failed: *every* member of the batch fails — none
    // may report durability the log never achieved.
    assert_eq!(
        results.iter().filter(|r| r.is_ok()).count(),
        0,
        "a member of a failed group reported success: {results:?}"
    );
    assert!(
        results
            .iter()
            .any(|r| matches!(r, Err(RvmError::Device(_)))),
        "no member surfaced the device error: {results:?}"
    );
    for r in &results {
        assert!(
            matches!(r, Err(RvmError::Device(_)) | Err(RvmError::Poisoned)),
            "unexpected member outcome: {r:?}"
        );
    }

    // One failure, one poisoning — not one per member.
    assert!(rvm.is_poisoned());
    assert_eq!(rvm.query().stats.poisonings, 1);

    // Every member's in-memory state rolled back.
    assert_slot(&region, 0, 0);
    assert_slot(&region, 1, 1); // warm-up value, not 11
    assert_slot(&region, 2, 0);
    assert_slot(&region, 3, 0);

    // Reboot on repaired hardware. The records were fully written before
    // the force failed, so recovery replays the *whole* group — and must
    // never replay a partial one.
    std::mem::forget(rvm);
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    let replayed: Vec<bool> = (0..N)
        .map(|t| region.read_vec(t * SLOT_SIZE, 1).unwrap()[0] == 10 + t as u8)
        .collect();
    assert!(
        replayed.iter().all(|&p| p),
        "sync-failure group must replay whole (records persisted): {replayed:?}"
    );
}

#[test]
fn failed_group_append_recovers_none_of_the_group() {
    const N: u64 = 4;

    // Dry run: count device writes in the setup prefix; the next write is
    // the leader's first group append.
    let dry_writes = {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let segments = MemResolver::new();
        let clock = FaultClock::new(vec![]);
        let (sleeper, _) = recording_sleeper();
        let (rvm, _region) =
            group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(grouped_tuning()));
        let (_, writes, _) = clock.ops_seen();
        std::mem::forget(rvm);
        writes
    };

    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let clock = FaultClock::new(vec![FlakyFault::permanent(FaultOp::Write, dry_writes + 1)]);
    let (sleeper, _) = recording_sleeper();
    let (rvm, region) =
        group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(grouped_tuning()));

    let results = run_group(&rvm, &region, N);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 0);
    assert!(rvm.is_poisoned());
    assert_eq!(rvm.query().stats.poisonings, 1);
    std::mem::forget(rvm);

    // No group record reached the device: recovery replays none of the
    // group, and the warm-up commit survives untouched.
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    assert_state_is_prefix(&region, 1);
    for t in 0..N {
        let first = region.read_vec(t * SLOT_SIZE, 1).unwrap()[0];
        assert_ne!(
            first,
            10 + t as u8,
            "group member {t} leaked into the durable image"
        );
    }
}

/// Pipelined variant of the failed-group-force scenario
/// (`Tuning::log_pipeline`): the force is *submitted* asynchronously and
/// its failure surfaces at the reap, not inline in the leader. The
/// contract must be unchanged — the in-flight batch rolls its WAL cursor
/// back and poisons exactly once, every member fails, and work arriving
/// after the poison fails fast without touching the device.
#[test]
fn failed_pipelined_force_rolls_back_and_poisons_once() {
    const N: u64 = 4;

    fn pipelined_tuning() -> Tuning {
        Tuning {
            log_pipeline: true,
            ..grouped_tuning()
        }
    }

    // Dry run: count device syncs consumed by the setup prefix. The next
    // sync after that is the pipelined batch's submitted force.
    let dry_syncs = {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let segments = MemResolver::new();
        let clock = FaultClock::new(vec![]);
        let (sleeper, _) = recording_sleeper();
        let (rvm, _region) =
            group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(pipelined_tuning()));
        let (_, _, syncs) = clock.ops_seen();
        std::mem::forget(rvm);
        syncs
    };
    assert!(dry_syncs > 0);

    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let clock = FaultClock::new(vec![FlakyFault::permanent(FaultOp::Sync, dry_syncs + 1)]);
    let (sleeper, _) = recording_sleeper();
    let (rvm, region) =
        group_setup(flaky_options(&log, &segments, &clock, sleeper).tuning(pipelined_tuning()));

    let results = run_group(&rvm, &region, N);

    // The submitted force failed at the reap: every member fails — none
    // may report durability the log never achieved.
    assert_eq!(
        results.iter().filter(|r| r.is_ok()).count(),
        0,
        "a member of a failed pipelined batch reported success: {results:?}"
    );
    assert!(
        results
            .iter()
            .any(|r| matches!(r, Err(RvmError::Device(_)))),
        "no member surfaced the device error: {results:?}"
    );

    // Exactly one poisoning for the whole batch — not one per member,
    // and not one per staging buffer.
    assert!(rvm.is_poisoned());
    let q = rvm.query();
    assert_eq!(q.stats.poisonings, 1);
    assert!(q.stats.pipeline_submits >= 1, "{q:?}");

    // Committers arriving after the poison fail fast, before any staging
    // or device work.
    let ops_at_poison = clock.total_ops();
    let late = run_group(&rvm, &region, 2);
    assert!(
        late.iter().all(|r| matches!(r, Err(RvmError::Poisoned))),
        "commit after poison: {late:?}"
    );
    assert_eq!(
        clock.total_ops(),
        ops_at_poison,
        "a poisoned pipeline touched the device"
    );

    // Every member's in-memory state rolled back; the matching WAL cursor
    // rollback is what keeps the next image reboot-consistent.
    assert_slot(&region, 0, 0);
    assert_slot(&region, 1, 1); // warm-up value, not 11
    assert_slot(&region, 2, 0);
    assert_slot(&region, 3, 0);

    // Reboot on repaired hardware: the records were fully written before
    // the submitted force failed, so recovery replays the whole batch —
    // and must never replay a partial one.
    std::mem::forget(rvm);
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    let replayed: Vec<bool> = (0..N)
        .map(|t| region.read_vec(t * SLOT_SIZE, 1).unwrap()[0] == 10 + t as u8)
        .collect();
    assert!(
        replayed.iter().all(|&p| p) || replayed.iter().all(|&p| !p),
        "pipelined batch replayed partially: {replayed:?}"
    );
}

/// Builds a log + segments image holding `n` acknowledged commits whose
/// owner crashed without terminating (the log is un-truncated).
fn build_crashed_image(n: u64) -> (Arc<MemDevice>, MemResolver) {
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    for i in 1..=n {
        run_txn(&rvm, &region, i).unwrap();
    }
    std::mem::forget(rvm); // the machine dies: no destructors
    (log, segments)
}

#[test]
fn crash_during_recovery_matrix_re_recovers_idempotently() {
    const N: u64 = 20;

    // Count the device operations a recovery (initialize + map) performs,
    // with the log and all segment devices on one shared clock.
    let (log, segments) = build_crashed_image(N);
    let clock = FaultClock::new(vec![]);
    let (sleeper, _) = recording_sleeper();
    let rvm = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    assert_state_is_prefix(&region, N);
    let total_ops = clock.total_ops();
    std::mem::forget(rvm);
    assert!(total_ops > 0);

    // Crash recovery at every single device operation.
    for k in 1..=total_ops {
        let (log, segments) = build_crashed_image(N);
        let clock = FaultClock::new(vec![FlakyFault::crash_after_ops(k)]);
        let (sleeper, _) = recording_sleeper();
        if let Ok(rvm) = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)) {
            // The crash lands during map (or just after); either way
            // this incarnation is dead.
            let _ = rvm.map(&descriptor());
            std::mem::forget(rvm);
        }
        assert!(clock.has_crashed(), "crash op {k} never fired");

        // Re-recovery over the surviving image reaches the full committed
        // state...
        let rvm = Rvm::initialize(clean_options(&log, &segments))
            .unwrap_or_else(|e| panic!("re-recovery failed after crash at op {k}: {e}"));
        let region = rvm.map(&descriptor()).unwrap();
        assert_eq!(
            region.get_u64(INDEX_OFF).unwrap(),
            N,
            "crash at recovery op {k} lost committed transactions"
        );
        assert_state_is_prefix(&region, N);
        let seg_snap = segments.get("seg").unwrap().snapshot();
        std::mem::forget(rvm); // crash again immediately after recovery

        // ...and is idempotent: a third recovery lands in the same state.
        let rvm = Rvm::initialize(clean_options(&log, &segments)).unwrap();
        let region = rvm.map(&descriptor()).unwrap();
        assert_eq!(region.get_u64(INDEX_OFF).unwrap(), N);
        assert_eq!(
            segments.get("seg").unwrap().snapshot(),
            seg_snap,
            "recovery after crash op {k} is not idempotent"
        );
    }
}

#[test]
fn crash_during_truncation_matrix_preserves_all_commits() {
    const N: u64 = 20;

    // Baseline: count the operation window occupied by an explicit
    // truncation after N commits.
    let log = Arc::new(MemDevice::with_len(1 << 20));
    let segments = MemResolver::new();
    let clock = FaultClock::new(vec![]);
    let (sleeper, _) = recording_sleeper();
    let rvm = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)).unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    for i in 1..=N {
        run_txn(&rvm, &region, i).unwrap();
    }
    let ops_before = clock.total_ops();
    rvm.truncate().unwrap();
    let ops_after = clock.total_ops();
    rvm.terminate().unwrap();
    assert!(ops_after > ops_before, "truncation performed no device ops");

    // Crash at every operation inside the truncation window.
    for k in (ops_before + 1)..=ops_after {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let segments = MemResolver::new();
        let clock = FaultClock::new(vec![FlakyFault::crash_after_ops(k)]);
        let (sleeper, _) = recording_sleeper();
        let rvm = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)).unwrap();
        let region = rvm.map(&descriptor()).unwrap();
        for i in 1..=N {
            run_txn(&rvm, &region, i)
                .unwrap_or_else(|e| panic!("txn {i} failed before crash op {k}: {e}"));
        }
        let err = rvm.truncate().unwrap_err();
        assert!(
            matches!(err, RvmError::Device(_)),
            "crash op {k}: truncate failed with {err}"
        );
        assert!(rvm.is_poisoned(), "crash op {k} did not poison");
        std::mem::forget(rvm);

        // Reboot from the torn image: every acknowledged commit survives.
        let rvm = Rvm::initialize(clean_options(&log, &segments))
            .unwrap_or_else(|e| panic!("recovery failed after truncation crash at op {k}: {e}"));
        let region = rvm.map(&descriptor()).unwrap();
        assert_eq!(
            region.get_u64(INDEX_OFF).unwrap(),
            N,
            "truncation crash at op {k} lost committed transactions"
        );
        assert_state_is_prefix(&region, N);
    }
}

/// Regression: a *transient* replica error under a mirror must be
/// retried (writes) or skipped (reads) without dropping the replica.
/// An earlier draft dropped a replica on its first error of any kind,
/// silently halving redundancy on every hiccup.
#[test]
fn mirrored_log_transient_faults_retry_and_skip_without_dropping_replicas() {
    use rvm_storage::{Device, MirrorDevice};
    const N: u64 = 12;

    let a_mem = Arc::new(MemDevice::with_len(1 << 20));
    let b_mem = Arc::new(MemDevice::with_len(1 << 20));
    // Transient faults on one replica only: short write runs (inside the
    // mirror's retry budget), a read hiccup (skipped to the healthy
    // replica), and a sync failure (retried).
    let clock = FaultClock::new(vec![
        FlakyFault::transient(FaultOp::Read, 2),
        FlakyFault::transient(FaultOp::Write, 5),
        FlakyFault::transient_run(FaultOp::Write, 20, 2),
        FlakyFault::transient(FaultOp::Sync, 4),
    ]);
    let a = Arc::new(FlakyDevice::with_clock(
        Arc::clone(&a_mem),
        Arc::clone(&clock),
    ));
    let mirror = Arc::new(
        MirrorDevice::new(vec![
            a as Arc<dyn Device>,
            Arc::clone(&b_mem) as Arc<dyn Device>,
        ])
        .unwrap(),
    );
    let segments = MemResolver::new();
    let rvm = Rvm::initialize(
        Options::new(mirror)
            .resolver(segments.clone().into_resolver())
            .create_if_empty(),
    )
    .unwrap();
    let region = rvm.map(&descriptor()).unwrap();
    for i in 1..=N {
        run_txn(&rvm, &region, i).unwrap_or_else(|e| panic!("txn {i} failed to heal: {e}"));
    }
    assert!(clock.injected() > 0, "fault schedule never fired");
    assert_state_is_prefix(&region, N);

    // Every fault was transient: both replicas must still be in service.
    let q = rvm.query();
    assert_eq!(
        (q.replicas_alive, q.replicas_total),
        (2, 2),
        "a transient fault dropped a replica: {q:?}"
    );
    rvm.terminate().unwrap();

    // And the retried writes really landed: both replicas carry the same
    // durable log image.
    assert_eq!(a_mem.snapshot(), b_mem.snapshot());
}

#[test]
fn seeded_fault_storms_either_heal_or_poison_recoverably() {
    const N: u64 = 25;
    for per_mille in [30u32, 400] {
        for seed in 1..=4u64 {
            let log = Arc::new(MemDevice::with_len(1 << 20));
            let segments = MemResolver::new();
            let clock = FaultClock::seeded(seed, per_mille);
            let (sleeper, _) = recording_sleeper();
            let tag = format!("seed {seed} @ {per_mille}\u{2030}");

            let mut acked = 0u64;
            let mut clean_exit = false;
            // A failed initialization means it was flooded: acked == 0.
            if let Ok(rvm) = Rvm::initialize(flaky_options(&log, &segments, &clock, sleeper)) {
                if let Ok(region) = rvm.map(&descriptor()) {
                    for i in 1..=N {
                        match run_txn(&rvm, &region, i) {
                            Ok(()) => acked = i,
                            Err(e) => {
                                assert!(
                                    rvm.is_poisoned(),
                                    "{tag}: commit failed ({e}) without poisoning"
                                );
                                break;
                            }
                        }
                    }
                }
                if acked == N {
                    // terminate consumes the instance whether or not it
                    // succeeds; the durable image must stay recoverable.
                    clean_exit = rvm.terminate().is_ok();
                } else {
                    std::mem::forget(rvm);
                }
            }

            // Whatever happened, a fresh instance over the bare devices
            // recovers a prefix containing every acknowledged commit.
            let rvm = Rvm::initialize(clean_options(&log, &segments))
                .unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
            let region = rvm.map(&descriptor()).unwrap();
            let recovered = region.get_u64(INDEX_OFF).unwrap();
            assert!(
                recovered >= acked,
                "{tag}: acked {acked} but recovered {recovered}"
            );
            assert!(recovered <= N, "{tag}");
            assert_state_is_prefix(&region, recovered);
            if clean_exit {
                assert_eq!(recovered, N, "{tag}: clean run lost state");
            }
            rvm.terminate().unwrap();
        }
    }
}
