//! The TPC-A benchmark variant of §7.1.1.
//!
//! "The TPC-A benchmark is stated in terms of a hypothetical bank with one
//! or more branches, multiple tellers per branch, and many customer
//! accounts per branch. A transaction updates a randomly chosen account,
//! updates branch and teller balances, and appends a history record to an
//! audit trail."
//!
//! In the paper's variant all data structures live in recoverable memory:
//! accounts are 128-byte records, audit-trail entries 64-byte records, and
//! each of those two arrays "occupies close to half the total recoverable
//! memory"; teller and branch balances are insignificant. The audit trail
//! is accessed sequentially with wraparound. The pattern of account
//! accesses is the benchmark's second parameter:
//!
//! * **sequential** — the best case for paging;
//! * **random** — uniform over all accounts, the worst case;
//! * **localized** — 70 % of transactions update accounts on 5 % of the
//!   pages, 25 % on a different 15 %, and 5 % on the remaining 80 %,
//!   uniform within each set.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Size of one account record.
pub const ACCOUNT_SIZE: u64 = 128;
/// Size of one audit-trail record.
pub const AUDIT_SIZE: u64 = 64;
/// Size of one teller record.
pub const TELLER_SIZE: u64 = 128;
/// Size of one branch record.
pub const BRANCH_SIZE: u64 = 128;
/// Tellers per branch.
pub const NUM_TELLERS: u64 = 10;
/// Branches.
pub const NUM_BRANCHES: u64 = 1;
/// Page size assumed by the locality pattern (accounts per page = 32).
pub const PAGE_SIZE: u64 = 4096;

/// Account access pattern (§7.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Accounts accessed in array order with wraparound.
    Sequential,
    /// Uniformly random accounts.
    Random,
    /// The 70/25/5 over 5 %/15 %/80 % page mixture.
    Localized,
}

impl AccessPattern {
    /// All three patterns, in the order the paper's tables list them.
    pub const ALL: [AccessPattern; 3] = [
        AccessPattern::Sequential,
        AccessPattern::Random,
        AccessPattern::Localized,
    ];

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            AccessPattern::Sequential => "Sequential",
            AccessPattern::Random => "Random",
            AccessPattern::Localized => "Localized",
        }
    }
}

/// Byte layout of the benchmark's recoverable memory.
///
/// Offsets are stable across runs so RVM and the Camelot model see
/// identical traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcaLayout {
    /// Number of customer accounts.
    pub num_accounts: u64,
    /// Number of audit-trail slots (same byte volume as the accounts).
    pub num_audit_slots: u64,
}

impl TpcaLayout {
    /// Builds the layout for `num_accounts` accounts.
    pub fn new(num_accounts: u64) -> Self {
        Self {
            num_accounts,
            // "Each of these data structures occupies close to half the
            // total recoverable memory."
            num_audit_slots: num_accounts * ACCOUNT_SIZE / AUDIT_SIZE,
        }
    }

    /// Offset of account `i`.
    pub fn account_offset(&self, i: u64) -> u64 {
        debug_assert!(i < self.num_accounts);
        i * ACCOUNT_SIZE
    }

    /// Offset of the teller array.
    pub fn tellers_offset(&self) -> u64 {
        self.num_accounts * ACCOUNT_SIZE
    }

    /// Offset of teller `t`.
    pub fn teller_offset(&self, t: u64) -> u64 {
        self.tellers_offset() + (t % NUM_TELLERS) * TELLER_SIZE
    }

    /// Offset of the branch record.
    pub fn branch_offset(&self) -> u64 {
        self.tellers_offset() + NUM_TELLERS * TELLER_SIZE
    }

    /// Offset of the audit trail.
    pub fn audit_offset(&self) -> u64 {
        self.branch_offset() + NUM_BRANCHES * BRANCH_SIZE
    }

    /// Offset of audit slot `i` (callers wrap `i` by
    /// [`TpcaLayout::num_audit_slots`]).
    pub fn audit_slot_offset(&self, i: u64) -> u64 {
        self.audit_offset() + (i % self.num_audit_slots) * AUDIT_SIZE
    }

    /// Total bytes of recoverable memory, rounded up to a page multiple.
    pub fn total_len(&self) -> u64 {
        let raw = self.audit_offset() + self.num_audit_slots * AUDIT_SIZE;
        raw.div_ceil(PAGE_SIZE) * PAGE_SIZE
    }
}

/// One generated transaction: which account, teller and audit slot to
/// update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcaTxn {
    /// Account index to debit/credit.
    pub account: u64,
    /// Teller index.
    pub teller: u64,
    /// Audit slot (pre-wrapped).
    pub audit_slot: u64,
}

/// Deterministic transaction stream for one benchmark configuration.
pub struct TpcaWorkload {
    layout: TpcaLayout,
    pattern: AccessPattern,
    rng: StdRng,
    counter: u64,
    /// Page-set boundaries for the localized pattern, in account pages.
    hot_pages: u64,
    warm_pages: u64,
    total_pages: u64,
}

impl TpcaWorkload {
    /// Creates a stream over `layout` with the given pattern and seed.
    pub fn new(layout: TpcaLayout, pattern: AccessPattern, seed: u64) -> Self {
        let total_pages = (layout.num_accounts * ACCOUNT_SIZE).div_ceil(PAGE_SIZE);
        let hot_pages = (total_pages * 5 / 100).max(1);
        let warm_pages = (total_pages * 15 / 100).max(1);
        Self {
            layout,
            pattern,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            hot_pages,
            warm_pages,
            total_pages,
        }
    }

    /// The layout this stream was built over.
    pub fn layout(&self) -> TpcaLayout {
        self.layout
    }

    fn account_in_pages(&mut self, first_page: u64, num_pages: u64) -> u64 {
        let accounts_per_page = PAGE_SIZE / ACCOUNT_SIZE;
        let page = first_page + self.rng.random_range(0..num_pages);
        let account = page * accounts_per_page + self.rng.random_range(0..accounts_per_page);
        account.min(self.layout.num_accounts - 1)
    }

    /// Generates the next transaction.
    pub fn next_txn(&mut self) -> TpcaTxn {
        let n = self.layout.num_accounts;
        let account = match self.pattern {
            AccessPattern::Sequential => self.counter % n,
            AccessPattern::Random => self.rng.random_range(0..n),
            AccessPattern::Localized => {
                let p: u32 = self.rng.random_range(0..100);
                if p < 70 {
                    self.account_in_pages(0, self.hot_pages)
                } else if p < 95 {
                    self.account_in_pages(self.hot_pages, self.warm_pages)
                } else {
                    let cold_first = self.hot_pages + self.warm_pages;
                    let cold = self.total_pages.saturating_sub(cold_first).max(1);
                    self.account_in_pages(cold_first.min(self.total_pages - 1), cold)
                }
            }
        };
        let txn = TpcaTxn {
            account,
            teller: self.counter % NUM_TELLERS,
            audit_slot: self.counter % self.layout.num_audit_slots,
        };
        self.counter += 1;
        txn
    }
}

/// The account-array sizes of Table 1: 32 Ki accounts (Rmem/Pmem = 12.5 %)
/// up to 448 Ki (175 %) in steps of 32 Ki, on the paper's 64 MB machine.
pub fn table1_account_sizes() -> Vec<u64> {
    (1..=14).map(|k| k * 32 * 1024).collect()
}

/// Rmem/Pmem percentage for a row of Table 1 on a 64 MB machine.
pub fn rmem_pmem_percent(num_accounts: u64) -> f64 {
    let layout = TpcaLayout::new(num_accounts);
    layout.total_len() as f64 / (64.0 * 1024.0 * 1024.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_halves_match_the_paper() {
        let layout = TpcaLayout::new(32 * 1024);
        let accounts_bytes = layout.num_accounts * ACCOUNT_SIZE;
        let audit_bytes = layout.num_audit_slots * AUDIT_SIZE;
        assert_eq!(accounts_bytes, audit_bytes);
        // 32 Ki accounts -> 4 MiB + 4 MiB ≈ 8 MiB = 12.5 % of 64 MB.
        let pct = rmem_pmem_percent(32 * 1024);
        assert!((12.4..12.7).contains(&pct), "got {pct}");
        let pct = rmem_pmem_percent(448 * 1024);
        assert!((174.0..176.0).contains(&pct), "got {pct}");
    }

    #[test]
    fn offsets_are_disjoint_and_ordered() {
        let l = TpcaLayout::new(1024);
        assert!(l.account_offset(1023) + ACCOUNT_SIZE <= l.tellers_offset());
        assert!(l.teller_offset(9) + TELLER_SIZE <= l.branch_offset());
        assert!(l.branch_offset() + BRANCH_SIZE <= l.audit_offset());
        assert!(l.audit_slot_offset(l.num_audit_slots - 1) + AUDIT_SIZE <= l.total_len());
        assert_eq!(l.total_len() % PAGE_SIZE, 0);
    }

    #[test]
    fn sequential_pattern_wraps() {
        let l = TpcaLayout::new(64);
        let mut w = TpcaWorkload::new(l, AccessPattern::Sequential, 1);
        let accounts: Vec<u64> = (0..130).map(|_| w.next_txn().account).collect();
        assert_eq!(accounts[0], 0);
        assert_eq!(accounts[63], 63);
        assert_eq!(accounts[64], 0, "wraps around");
        assert_eq!(accounts[129], 1);
    }

    #[test]
    fn random_pattern_covers_the_space() {
        let l = TpcaLayout::new(1024);
        let mut w = TpcaWorkload::new(l, AccessPattern::Random, 42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let t = w.next_txn();
            assert!(t.account < 1024);
            seen.insert(t.account);
        }
        assert!(seen.len() > 900, "uniform draw covers most accounts");
    }

    #[test]
    fn localized_pattern_concentrates_on_hot_pages() {
        let l = TpcaLayout::new(32 * 1024); // 1024 account pages
        let mut w = TpcaWorkload::new(l, AccessPattern::Localized, 7);
        let hot_pages = 1024 * 5 / 100; // 51
        let mut hot = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let t = w.next_txn();
            let page = t.account * ACCOUNT_SIZE / PAGE_SIZE;
            if page < hot_pages as u64 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((0.65..0.75).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn audit_slots_advance_sequentially_with_wraparound() {
        let l = TpcaLayout::new(64);
        let mut w = TpcaWorkload::new(l, AccessPattern::Random, 3);
        let slots: Vec<u64> = (0..l.num_audit_slots + 2)
            .map(|_| w.next_txn().audit_slot)
            .collect();
        assert_eq!(slots[0], 0);
        assert_eq!(slots[1], 1);
        assert_eq!(slots[l.num_audit_slots as usize], 0, "wraps");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let l = TpcaLayout::new(4096);
        let mut a = TpcaWorkload::new(l, AccessPattern::Random, 99);
        let mut b = TpcaWorkload::new(l, AccessPattern::Random, 99);
        for _ in 0..100 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
        let mut c = TpcaWorkload::new(l, AccessPattern::Random, 100);
        let differs = (0..100).any(|_| a.next_txn() != c.next_txn());
        assert!(differs);
    }

    #[test]
    fn table1_sizes_span_the_sweep() {
        let sizes = table1_account_sizes();
        assert_eq!(sizes.len(), 14);
        assert_eq!(sizes[0], 32768);
        assert_eq!(sizes[13], 458752);
    }
}
