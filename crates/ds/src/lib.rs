//! Recoverable data structures layered on RVM.
//!
//! The paper's motivating domain is "the meta-data of storage
//! repositories" (§1): directories, indices, housekeeping tables — small
//! structured data that must be updated fault-tolerantly. Coda kept its
//! directories as "manipulations of in-memory data structures" in
//! recoverable memory (§2.3). This crate packages the two structures
//! that pattern keeps reinventing:
//!
//! * [`RecoverableMap`] — a chained hash table whose buckets, entries,
//!   keys and values all live in recoverable memory (allocated from an
//!   [`rvm_alloc::RvmHeap`]), so every mutation is transactional and the
//!   whole table survives crashes;
//! * [`RingLog`] — a fixed-capacity ring of fixed-size records with a
//!   persistent head counter: the TPC-A audit trail (§7.1.1), the Coda
//!   replay log (§6), every "last N events" table.
//!
//! Both are just disciplined layouts over the `rvm` + `rvm-alloc` public
//! APIs — exactly the kind of layering the paper's Figure 2 prescribes.

mod map;
mod ring;

pub use map::{put_durably, MapStats, RecoverableMap};
pub use ring::RingLog;
