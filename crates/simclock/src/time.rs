//! A simulated duration / instant type with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time (also used as an instant on the virtual
/// timeline), stored as whole nanoseconds.
///
/// `SimTime` is deliberately simpler than [`std::time::Duration`]: it is
/// `Copy`, saturating on subtraction, and convertible to `f64` seconds for
/// reporting. Benchmarks never convert it back to wall-clock time.
///
/// # Examples
///
/// ```
/// use simclock::SimTime;
///
/// let force = SimTime::from_micros(17_400);
/// assert_eq!(force.as_millis_f64(), 17.4);
/// assert_eq!(force * 3, SimTime::from_micros(52_200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64: invalid seconds value {secs}"
        );
        Self {
            nanos: (secs * 1e9).round() as u64,
        }
    }

    /// Creates a time from fractional microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros * 1e-6)
    }

    /// Returns the value in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Returns the value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 * 1e-9
    }

    /// Returns the value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 * 1e-6
    }

    /// Returns the value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.nanos as f64 * 1e-3
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating: subtracting a later time from an earlier one yields zero.
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self.nanos * rhs,
        }
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self.nanos / rhs,
        }
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_micros_f64(17.4).as_nanos(), 17_400);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b - a, SimTime::ZERO, "subtraction saturates");
        assert_eq!(a * 3, SimTime::from_millis(30));
        assert_eq!(a / 2, SimTime::from_millis(5));
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
