//! Offline shim for `criterion`: a minimal but runnable bench harness
//! covering the API the workspace's benches use. Measures mean wall-clock
//! time over a fixed number of iterations and prints one line per
//! benchmark — no statistics, plots, or baselines. See
//! `vendor/README.md`.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are sized; accepted for compatibility, the shim
/// always runs one routine call per setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (printed, not used for statistics).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            hint::black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(id: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iters > 0 {
        b.elapsed.as_nanos() / iters as u128
    } else {
        0
    };
    println!("bench {id:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) {}

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

/// The bench context: creates groups and standalone benchmarks.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Enough iterations to be meaningful, few enough that running
        // the suite without statistics stays fast.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// Bundles bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
