// Known-bad fixture for the panic-surface pass: aborts reachable from
// the public API, directly and through private helpers.

pub fn api_unwraps(values: &[u64]) -> u64 {
    values.first().unwrap() + private_helper_expects(values)
}

fn private_helper_expects(values: &[u64]) -> u64 {
    values.last().copied().expect("caller checked")
}

pub fn api_indexes(buf: &[u8]) -> u8 {
    buf[3]
}

pub fn api_reaches_panic_macro(kind: u8) {
    dispatch_on_kind(kind);
}

fn dispatch_on_kind(kind: u8) {
    if kind > 3 {
        panic!("unknown kind {kind}");
    }
}
