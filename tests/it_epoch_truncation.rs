//! Concurrent epoch truncation: commits must keep flowing while an epoch
//! apply runs off-lock, and a crash at *any* stage of an in-flight epoch
//! must recover every acknowledged commit.
//!
//! The tests park the epoch apply on a gated segment device (its writes
//! or syncs block until the test releases them), which holds the
//! truncation in its off-lock phase indefinitely. "Crashes" are device
//! snapshots taken while the apply is parked — byte-exact images of what
//! a kill at that instant would leave behind — rebooted into a fresh
//! instance.

use std::sync::{Arc, Condvar, Mutex};

use rvm::segment::{DeviceResolver, MemResolver};
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, Tuning, TxnMode};
use rvm_storage::{Device, MemDevice};

const SLOTS: u64 = 16;
const SLOT_STRIDE: u64 = 512; // distinct pagesworth-of-separation ranges
const REGION_LEN: u64 = SLOTS * SLOT_STRIDE;

/// Where the gate parks the epoch apply.
#[derive(Clone, Copy, Debug)]
enum Park {
    /// Allow this many segment writes, then park the next one.
    Writes(u64),
    /// Allow every write, park the first sync.
    Sync,
}

struct GateState {
    allow_writes: u64,
    gate_sync: bool,
    open: bool,
    parked: bool,
}

/// A shared gate: the device side parks on it, the test side observes
/// and releases.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn closed(park: Park) -> Arc<Self> {
        let (allow_writes, gate_sync) = match park {
            Park::Writes(n) => (n, false),
            Park::Sync => (u64::MAX, true),
        };
        Arc::new(Self {
            state: Mutex::new(GateState {
                allow_writes,
                gate_sync,
                open: false,
                parked: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Blocks the calling (device) thread if the gate says so.
    fn pass(&self, is_sync: bool) {
        let mut st = self.state.lock().unwrap();
        let blocked = if st.open {
            false
        } else if is_sync {
            st.gate_sync
        } else if st.allow_writes > 0 {
            st.allow_writes -= 1;
            false
        } else {
            true
        };
        if blocked {
            st.parked = true;
            self.cv.notify_all();
            while !st.open {
                st = self.cv.wait(st).unwrap();
            }
            st.parked = false;
        }
    }

    /// Test side: wait until the apply thread is parked at the gate.
    fn wait_parked(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.parked {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Test side: release everything, permanently.
    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }
}

/// A segment device whose writes and syncs pass through a [`Gate`].
struct GatedDevice {
    inner: Arc<MemDevice>,
    gate: Arc<Gate>,
}

impl Device for GatedDevice {
    fn len(&self) -> rvm_storage::Result<u64> {
        self.inner.len()
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> rvm_storage::Result<()> {
        self.inner.read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, data: &[u8]) -> rvm_storage::Result<()> {
        self.gate.pass(false);
        self.inner.write_at(offset, data)
    }
    fn sync(&self) -> rvm_storage::Result<()> {
        self.gate.pass(true);
        self.inner.sync()
    }
    fn set_len(&self, len: u64) -> rvm_storage::Result<()> {
        self.inner.set_len(len)
    }
}

/// One world with a gated segment: the log is a plain memory device, the
/// single segment `seg` parks per the gate.
struct GatedWorld {
    log: Arc<MemDevice>,
    seg_inner: Arc<MemDevice>,
    gate: Arc<Gate>,
    resolver: DeviceResolver,
}

impl GatedWorld {
    fn new(log_len: u64, park: Park) -> Self {
        let seg_inner = Arc::new(MemDevice::with_len(REGION_LEN));
        let gate = Gate::closed(park);
        let gated: Arc<dyn Device> = Arc::new(GatedDevice {
            inner: seg_inner.clone(),
            gate: gate.clone(),
        });
        // The checksum sidecar gets its own ungated device: the gate
        // models a stuck *segment*, and parking catalog maintenance
        // would stall `map` before the scenario even starts.
        let sums: Arc<dyn Device> = Arc::new(MemDevice::with_len(0));
        let for_resolver = gated.clone();
        let resolver: DeviceResolver = Arc::new(move |name, min| {
            let dev = if rvm::scrub::is_sidecar(name) {
                sums.clone()
            } else {
                for_resolver.clone()
            };
            if dev.len()? < min {
                dev.set_len(min)?;
            }
            Ok(dev)
        });
        Self {
            log: Arc::new(MemDevice::with_len(log_len)),
            seg_inner,
            gate,
            resolver,
        }
    }

    fn boot(&self) -> Rvm {
        Rvm::initialize(
            Options::new(self.log.clone())
                .resolver(self.resolver.clone())
                .tuning(Tuning {
                    truncation_threshold: 0.99,
                    ..Tuning::default()
                })
                .create_if_empty(),
        )
        .expect("initialize")
    }
}

/// Commits `value` into slot `value % SLOTS` (8-byte range, slots far
/// enough apart that the epoch apply makes one segment write per slot).
fn commit_slot(rvm: &Rvm, region: &rvm::Region, value: u64) {
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region
        .put_u64(&mut txn, (value % SLOTS) * SLOT_STRIDE, value)
        .unwrap();
    txn.commit(CommitMode::Flush).unwrap();
}

/// The latest value committed into `slot` after `committed` sequential
/// `commit_slot` calls (1..=committed).
fn expected_slot(slot: u64, committed: u64) -> u64 {
    (1..=committed)
        .rev()
        .find(|i| i % SLOTS == slot)
        .unwrap_or(0)
}

fn assert_slots(region: &rvm::Region, committed: u64, ctx: &str) {
    for s in 0..SLOTS {
        assert_eq!(
            region.get_u64(s * SLOT_STRIDE).unwrap(),
            expected_slot(s, committed),
            "{ctx}: slot {s}"
        );
    }
}

/// The headline property: with the epoch apply parked mid-span on the
/// gated segment, commits still complete — their latency is bounded by
/// the log force, not by the truncation. If commits serialized behind
/// the apply (the pre-concurrent behavior), this test would deadlock:
/// the gate only opens after the commits have finished.
#[test]
fn commits_progress_while_epoch_apply_is_parked() {
    let world = GatedWorld::new(256 * 1024, Park::Writes(0));
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
        .unwrap();
    for i in 1..=32 {
        commit_slot(&rvm, &region, i);
    }

    std::thread::scope(|s| {
        let handle = s.spawn(|| rvm.truncate());
        world.gate.wait_parked();
        assert!(rvm.query().truncation_in_flight);

        // 16 commits land while the apply is provably stuck.
        let before = rvm.stats().commits_during_truncation;
        for i in 33..=48 {
            commit_slot(&rvm, &region, i);
        }
        let during = rvm.stats().commits_during_truncation - before;
        assert!(
            during >= 16,
            "all 16 commits ran inside the apply window, counted {during}"
        );
        assert!(rvm.query().truncation_in_flight);

        world.gate.open();
        handle.join().unwrap().unwrap();
    });

    // The epoch advanced the head past its span; only the 16 new-epoch
    // records remain live.
    let q = rvm.query();
    assert!(!q.truncation_in_flight);
    assert_eq!(rvm.stats().epochs_truncated, 1);
    assert!(q.log.used > 0, "new-epoch records stay live");
    rvm.truncate().unwrap();
    assert_eq!(rvm.query().log.used, 0);
    assert_slots(&region, 48, "after both truncations");
    drop(region);
    rvm.terminate().unwrap();

    // Reboot: the segment alone (log empty) holds every commit.
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
        .unwrap();
    assert_slots(&region, 48, "after reboot");
}

/// The crash matrix: snapshot the devices while the epoch apply is
/// parked at each stage — before the first segment write, after one,
/// mid-span, and after every write but before the sync — with and
/// without commits landing in the new epoch during the park. Reboot the
/// snapshot; recovery must report the interrupted epoch and restore
/// every acknowledged commit.
#[test]
fn crash_at_every_stage_of_an_inflight_epoch_recovers() {
    for park in [
        Park::Writes(0),
        Park::Writes(1),
        Park::Writes(5),
        Park::Sync,
    ] {
        for commits_during in [0u64, 6] {
            let world = GatedWorld::new(256 * 1024, park);
            let rvm = world.boot();
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
                .unwrap();
            let mut committed = 0;
            for i in 1..=40 {
                commit_slot(&rvm, &region, i);
                committed = i;
            }

            let (log_image, seg_image) = std::thread::scope(|s| {
                let handle = s.spawn(|| rvm.truncate());
                world.gate.wait_parked();
                // Commits that land in the new epoch before the crash.
                for i in 41..=40 + commits_during {
                    commit_slot(&rvm, &region, i);
                    committed = i;
                }
                // The crash image: both devices, frozen mid-apply.
                let images = (world.log.snapshot(), world.seg_inner.snapshot());
                world.gate.open();
                handle.join().unwrap().unwrap();
                images
            });
            drop(region);
            drop(rvm);

            // Reboot the crash image.
            let crash_log = Arc::new(MemDevice::from_image(log_image));
            let segments = MemResolver::new();
            segments.resolve("seg", REGION_LEN).unwrap();
            segments.get("seg").unwrap().restore(seg_image);
            let rvm = Rvm::initialize(
                Options::new(crash_log.clone()).resolver(segments.clone().into_resolver()),
            )
            .unwrap();
            let ctx = format!("park {park:?}, {commits_during} new-epoch commits");
            assert!(
                rvm.recovery_report().interrupted_epoch,
                "{ctx}: the status block carried the epoch boundary"
            );
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
                .unwrap();
            assert_slots(&region, committed, &ctx);

            // The recovered instance is fully live: commit once more and
            // reboot again over the same devices.
            commit_slot(&rvm, &region, committed + 1);
            drop(region);
            drop(rvm);
            let rvm =
                Rvm::initialize(Options::new(crash_log).resolver(segments.clone().into_resolver()))
                    .unwrap();
            assert!(!rvm.recovery_report().interrupted_epoch, "{ctx}");
            let region = rvm
                .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
                .unwrap();
            assert_slots(&region, committed + 1, &ctx);
        }
    }
}

/// A crash *after* the epoch completed (head advanced, boundary cleared)
/// is ordinary recovery: nothing to re-apply, no interrupted epoch.
#[test]
fn crash_after_epoch_completion_is_ordinary_recovery() {
    let world = GatedWorld::new(256 * 1024, Park::Writes(0));
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
        .unwrap();
    for i in 1..=24 {
        commit_slot(&rvm, &region, i);
    }
    std::thread::scope(|s| {
        let handle = s.spawn(|| rvm.truncate());
        world.gate.wait_parked();
        world.gate.open();
        handle.join().unwrap().unwrap();
    });
    let (log_image, seg_image) = (world.log.snapshot(), world.seg_inner.snapshot());
    drop(region);
    std::mem::forget(rvm); // the "crash": the instance never shuts down

    let segments = MemResolver::new();
    segments.resolve("seg", REGION_LEN).unwrap();
    segments.get("seg").unwrap().restore(seg_image);
    let rvm = Rvm::initialize(
        Options::new(Arc::new(MemDevice::from_image(log_image)))
            .resolver(segments.clone().into_resolver()),
    )
    .unwrap();
    assert!(!rvm.recovery_report().interrupted_epoch);
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, REGION_LEN))
        .unwrap();
    assert_slots(&region, 24, "post-completion crash");
}
