//! A latency-modeling sink device.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Device, DeviceError, Result};

/// A device that discards writes and reads back zeros.
///
/// Simulations that only care about *latency* (which the `simdisk` wrapper
/// charges) and not contents — paging files, modelled backing stores — use
/// this to avoid allocating hundreds of megabytes of images. Do **not**
/// back an RVM log with it: the log must read back what it wrote.
#[derive(Debug)]
pub struct NullDevice {
    len: AtomicU64,
}

impl NullDevice {
    /// Creates a sink of the given nominal length.
    pub fn new(len: u64) -> Self {
        Self {
            len: AtomicU64::new(len),
        }
    }
}

impl Device for NullDevice {
    fn len(&self) -> Result<u64> {
        Ok(self.len.load(Ordering::Relaxed))
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let len = self.len.load(Ordering::Relaxed);
        if offset.checked_add(buf.len() as u64).is_none_or(|e| e > len) {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                device_len: len,
            });
        }
        buf.fill(0);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let len = self.len.load(Ordering::Relaxed);
        if offset
            .checked_add(data.len() as u64)
            .is_none_or(|e| e > len)
        {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: data.len() as u64,
                device_len: len,
            });
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.len.store(len, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_zeros_and_discards_writes() {
        let dev = NullDevice::new(1024);
        dev.write_at(0, &[1, 2, 3]).unwrap();
        let mut buf = [9u8; 3];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0]);
    }

    #[test]
    fn bounds_and_resize() {
        let dev = NullDevice::new(10);
        assert!(dev.write_at(8, &[0; 4]).is_err());
        dev.set_len(20).unwrap();
        assert!(dev.write_at(8, &[0; 4]).is_ok());
        assert_eq!(dev.len().unwrap(), 20);
    }
}
