//! Sanity checks of the simulation substrate and quick shape checks of
//! the benchmark harness: the paper's qualitative claims must hold even
//! on reduced sweeps (full sweeps live in the `table1`/`figure8`/
//! `figure9` binaries).

use std::sync::{Arc, Barrier};

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_bench::tpca_run::{run_cell, SweepConfig, SystemKind};
use rvm_storage::MemDevice;
use simclock::Clock;
use simdisk::{DiskOp, DiskParams, SimDisk};
use tpca::AccessPattern;

fn quick_cfg() -> SweepConfig {
    SweepConfig {
        txns_per_trial: 4_000,
        trials: 1,
        ..SweepConfig::default()
    }
}

#[test]
fn log_force_bound_holds() {
    // §7.1.2: observed best case within 15% of the 57.4 txn/s bound.
    let cfg = quick_cfg();
    let cell = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Sequential, &cfg);
    let tps = cell.mean_tps();
    assert!(tps < 57.5, "cannot beat the log-force bound: {tps}");
    assert!(
        tps > 57.5 * 0.80,
        "best case within ~15-20% of bound: {tps}"
    );
}

#[test]
fn rvm_beats_camelot_across_the_board() {
    let cfg = quick_cfg();
    for pattern in AccessPattern::ALL {
        for accounts in [32 * 1024u64, 262_144] {
            let rvm = run_cell(SystemKind::Rvm, accounts, pattern, &cfg).mean_tps();
            let cam = run_cell(SystemKind::Camelot, accounts, pattern, &cfg).mean_tps();
            assert!(
                rvm > cam,
                "RVM must outperform Camelot ({pattern:?}, {accounts} accounts): {rvm} vs {cam}"
            );
        }
    }
}

#[test]
fn camelot_is_locality_sensitive_at_small_sizes_and_rvm_is_not() {
    // §7.1.2: at Rmem/Pmem = 12.5%, Camelot's throughput drops from
    // sequential to localized to random; RVM's barely moves.
    let cfg = quick_cfg();
    let accounts = 32 * 1024;
    let cam_seq = run_cell(
        SystemKind::Camelot,
        accounts,
        AccessPattern::Sequential,
        &cfg,
    )
    .mean_tps();
    let cam_loc = run_cell(
        SystemKind::Camelot,
        accounts,
        AccessPattern::Localized,
        &cfg,
    )
    .mean_tps();
    let cam_rnd = run_cell(SystemKind::Camelot, accounts, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        cam_seq > cam_loc && cam_loc > cam_rnd,
        "{cam_seq} > {cam_loc} > {cam_rnd}"
    );
    assert!(cam_rnd < cam_seq * 0.95, "sensitivity is material");

    let rvm_seq = run_cell(SystemKind::Rvm, accounts, AccessPattern::Sequential, &cfg).mean_tps();
    let rvm_rnd = run_cell(SystemKind::Rvm, accounts, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        (rvm_seq - rvm_rnd).abs() / rvm_seq < 0.06,
        "RVM is pattern-insensitive at 12.5%: {rvm_seq} vs {rvm_rnd}"
    );
}

#[test]
fn rvm_random_throughput_knees_when_rmem_exceeds_memory() {
    let cfg = quick_cfg();
    let small = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Random, &cfg).mean_tps();
    let large = run_cell(SystemKind::Rvm, 425_984, AccessPattern::Random, &cfg).mean_tps();
    assert!(
        large < small * 0.85,
        "paging must bite at 162.5%: {small} -> {large}"
    );
}

#[test]
fn cpu_per_transaction_ratio_matches_figure_9() {
    // "RVM requires about half the CPU usage of Camelot" (sequential).
    let cfg = quick_cfg();
    let rvm = run_cell(SystemKind::Rvm, 32 * 1024, AccessPattern::Sequential, &cfg).mean_cpu();
    let cam = run_cell(
        SystemKind::Camelot,
        32 * 1024,
        AccessPattern::Sequential,
        &cfg,
    )
    .mean_cpu();
    let ratio = cam / rvm;
    assert!(
        (1.5..3.0).contains(&ratio),
        "Camelot/RVM CPU ratio ~2, got {ratio:.2} ({cam:.2}/{rvm:.2})"
    );
}

#[test]
fn sweeps_are_deterministic() {
    let cfg = quick_cfg();
    let a = run_cell(SystemKind::Rvm, 65_536, AccessPattern::Localized, &cfg).mean_tps();
    let b = run_cell(SystemKind::Rvm, 65_536, AccessPattern::Localized, &cfg).mean_tps();
    assert_eq!(a, b, "virtual-clock runs must be bit-for-bit repeatable");
}

#[test]
fn pipelined_forces_overlap_record_serialization_on_simdisk() {
    // The pipeline's whole point on real hardware: while one buffer's
    // force spins the platter, the next buffer's records stream over the
    // bus into the write-behind cache. The simulated disk records per-op
    // `[start, end)` intervals on the virtual timeline, so the claim is
    // checked mechanically rather than inferred from throughput totals.
    const THREADS: u64 = 8;
    const TXNS: u64 = 12;
    let clock = Clock::new();
    let disk = Arc::new(SimDisk::new(
        Arc::new(MemDevice::with_len(8 << 20)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let rvm = Arc::new(
        Rvm::initialize(
            Options::new(disk.clone())
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty()
                .tuning(Tuning {
                    log_pipeline: true,
                    group_commit_wait_us: 2_000,
                    group_commit_max_txns: 4,
                    ..Tuning::default()
                }),
        )
        .expect("initialize"),
    );
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, THREADS * PAGE_SIZE))
        .unwrap();

    // Trace only the workload, not initialization/recovery I/O.
    let boot_stats = disk.stats();
    disk.set_interval_trace(true);
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let rvm = rvm.clone();
            let region = region.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..TXNS {
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
                    region
                        .put_u64(&mut txn, t * PAGE_SIZE + (i % 16) * 8, t * 1000 + i + 1)
                        .unwrap();
                    txn.commit(CommitMode::Flush).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // (Disabling the trace clears the buffer, so drain it first.)
    let intervals = disk.take_intervals();
    disk.set_interval_trace(false);

    // The pipeline engaged...
    let q = rvm.query();
    assert_eq!(q.stats.flush_commits, THREADS * TXNS);
    assert!(q.stats.pipeline_submits >= 2, "{:?}", q.stats);

    // ...and the disk saw it: queued syncs were submitted while the
    // mechanism was still busy on the previous operation,
    let delta = disk.stats().delta_since(&boot_stats);
    assert!(
        delta.overlapped_syncs > 0,
        "no sync was ever queued behind an in-flight operation: {delta:?}"
    );

    // ...and at least one force's service interval intersects a record
    // transfer (a log write) on the virtual timeline.
    let syncs: Vec<_> = intervals.iter().filter(|i| i.op == DiskOp::Sync).collect();
    let writes: Vec<_> = intervals.iter().filter(|i| i.op == DiskOp::Write).collect();
    assert!(!syncs.is_empty() && !writes.is_empty());
    assert!(
        syncs.iter().any(|s| writes.iter().any(|w| s.overlaps(w))),
        "no force overlapped record serialization across {} syncs / {} writes",
        syncs.len(),
        writes.len()
    );
}

#[test]
fn coda_workload_reproduces_table_2_bands() {
    // Scaled-down check: servers get intra-only savings around 20%;
    // the burstiest client (berlioz) gets majority inter savings.
    let profiles = coda_wl::profiles();
    let grieg = profiles.iter().find(|p| p.name == "grieg").unwrap();
    let mut p = grieg.clone();
    p.txns = 2_000;
    let row = coda_wl::run_machine(&p, 42);
    assert!(
        (15.0..30.0).contains(&row.intra_pct),
        "grieg intra {}",
        row.intra_pct
    );
    assert_eq!(row.inter_pct, 0.0);

    let berlioz = profiles.iter().find(|p| p.name == "berlioz").unwrap();
    let mut p = berlioz.clone();
    p.txns = 3_000;
    let row = coda_wl::run_machine(&p, 42);
    assert!(row.inter_pct > 45.0, "berlioz inter {}", row.inter_pct);
    assert!(row.inter_pct > row.intra_pct);
}
