//! CRC-32 (IEEE 802.3 polynomial) for log-record integrity.
//!
//! The log must detect torn writes: a record whose force did not complete
//! before a crash may be partially present on disk. Every record carries a
//! CRC over its header and payload; recovery treats a CRC mismatch as
//! end-of-log (§5.1.2).

const POLY: u32 = 0xEDB8_8320;

/// Table-driven CRC-32, generated at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // The well-known check value for "123456789".
/// assert_eq!(rvm::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streams more data into a raw (not yet finalized) CRC state.
///
/// Start from `0xFFFF_FFFF`, feed chunks, and XOR with `0xFFFF_FFFF` to
/// finalize; [`crc32`] does all three for a single slice.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state = (state >> 8) ^ TABLE[((state ^ byte as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"recoverable virtual memory";
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 512];
        let base = crc32(&data);
        for i in [0usize, 100, 511] {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} must change CRC");
            data[i] ^= 1;
        }
    }
}
