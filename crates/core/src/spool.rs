//! The no-flush commit spool and inter-transaction optimization (§5.2).
//!
//! No-flush ("lazy") commits do not force the log: their records are
//! spooled in memory and written out together on the next `flush`. The
//! spool is where the inter-transaction optimization lives: "if the
//! modifications being committed subsume those from an earlier unflushed
//! transaction, the older log records are discarded."
//!
//! Dropping a spooled record must release the *unflushed* page counts it
//! holds (see
//! [`PageVector`](crate::truncation::page_vector::PageVector)), otherwise
//! incremental truncation would block forever on pages whose pending
//! records no longer exist.

use std::collections::{HashMap, VecDeque};
use std::sync::Weak;

use crate::log::record::RecordRange;
use crate::ranges::{ByteRange, RangeSet};
use crate::region::RegionInner;
use crate::segment::SegmentId;

/// One committed-but-unflushed transaction.
pub(crate) struct SpooledTxn {
    /// Transaction id (diagnostics).
    pub tid: u64,
    /// New-value ranges, segment-absolute, exactly as they will be logged.
    pub ranges: Vec<RecordRange>,
    /// Pages whose unflushed count this record holds, per region.
    pub pages: Vec<(Weak<RegionInner>, Vec<usize>)>,
    /// Unpadded record size, for Table 2 accounting.
    pub record_bytes: u64,
}

impl SpooledTxn {
    fn release_unflushed(&self) {
        for (weak, pages) in &self.pages {
            if let Some(region) = weak.upgrade() {
                let mut pv = region.page_vector.lock();
                for &p in pages {
                    pv.dec_unflushed(p);
                }
            }
        }
    }
}

/// FIFO of committed, unflushed transaction records.
#[derive(Default)]
pub(crate) struct Spool {
    txns: VecDeque<SpooledTxn>,
    bytes: u64,
}

impl Spool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spooled records.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Total unpadded record bytes pending.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Returns `true` if any pending record touches `seg`.
    pub fn references(&self, seg: SegmentId) -> bool {
        self.txns
            .iter()
            .any(|t| t.ranges.iter().any(|r| r.seg == seg))
    }

    /// Appends a record, first discarding any older records it subsumes
    /// when `inter_opt` is enabled. Returns the record bytes saved.
    pub fn push(&mut self, txn: SpooledTxn, inter_opt: bool) -> u64 {
        let mut saved = 0u64;
        if inter_opt && !self.txns.is_empty() {
            // Coverage of the new record, per segment.
            let mut coverage: HashMap<u32, RangeSet> = HashMap::new();
            for r in &txn.ranges {
                coverage
                    .entry(r.seg.as_u32())
                    .or_default()
                    .insert(ByteRange::at(r.offset, r.data.len() as u64));
            }
            self.txns.retain(|old| {
                let subsumed = old.ranges.iter().all(|r| {
                    coverage.get(&r.seg.as_u32()).is_some_and(|set| {
                        set.covers(&ByteRange::at(r.offset, r.data.len() as u64))
                    })
                });
                if subsumed {
                    saved += old.record_bytes;
                    old.release_unflushed();
                }
                !subsumed
            });
            self.bytes -= saved;
        }
        self.bytes += txn.record_bytes;
        self.txns.push_back(txn);
        saved
    }

    /// Removes and returns the oldest record.
    pub fn pop_front(&mut self) -> Option<SpooledTxn> {
        let txn = self.txns.pop_front()?;
        self.bytes -= txn.record_bytes;
        Some(txn)
    }

    /// Puts a record back at the front (after a failed flush attempt).
    pub fn push_front(&mut self, txn: SpooledTxn) {
        self.bytes += txn.record_bytes;
        self.txns.push_front(txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seg: u32, offset: u64, len: usize, bytes: u64) -> SpooledTxn {
        SpooledTxn {
            tid: 0,
            ranges: vec![RecordRange {
                seg: SegmentId::new(seg),
                offset,
                data: vec![0; len],
            }],
            pages: Vec::new(),
            record_bytes: bytes,
        }
    }

    #[test]
    fn push_and_pop_preserve_fifo_and_bytes() {
        let mut spool = Spool::new();
        spool.push(rec(0, 0, 10, 100), false);
        spool.push(rec(0, 100, 10, 120), false);
        assert_eq!(spool.len(), 2);
        assert_eq!(spool.bytes(), 220);
        let first = spool.pop_front().unwrap();
        assert_eq!(first.record_bytes, 100);
        assert_eq!(spool.bytes(), 120);
        spool.push_front(first);
        assert_eq!(spool.bytes(), 220);
        assert_eq!(spool.pop_front().unwrap().record_bytes, 100);
    }

    #[test]
    fn partial_overlap_does_not_subsume() {
        let mut spool = Spool::new();
        spool.push(rec(0, 10, 10, 100), true);
        // The second covers only [15, 20) of the first's [10, 20): the
        // older record survives.
        let saved = spool.push(rec(0, 15, 5, 50), true);
        assert_eq!(saved, 0);
        assert_eq!(spool.bytes(), 150);
        assert_eq!(spool.len(), 2);
    }

    #[test]
    fn exact_and_superset_coverage_subsumes() {
        let mut spool = Spool::new();
        spool.push(rec(0, 10, 10, 100), true);
        // Exact same range: subsumes (the cp d1/* d2 case).
        let saved = spool.push(rec(0, 10, 10, 100), true);
        assert_eq!(saved, 100);
        assert_eq!(spool.len(), 1);
        // Superset subsumes too.
        let saved = spool.push(rec(0, 0, 100, 300), true);
        assert_eq!(saved, 100);
        assert_eq!(spool.len(), 1);
        assert_eq!(spool.bytes(), 300);
    }

    #[test]
    fn different_segment_never_subsumes() {
        let mut spool = Spool::new();
        spool.push(rec(0, 10, 10, 100), true);
        let saved = spool.push(rec(1, 10, 10, 100), true);
        assert_eq!(saved, 0);
        assert_eq!(spool.len(), 2);
    }

    #[test]
    fn optimization_disabled_keeps_everything() {
        let mut spool = Spool::new();
        spool.push(rec(0, 10, 10, 100), false);
        let saved = spool.push(rec(0, 10, 10, 100), false);
        assert_eq!(saved, 0);
        assert_eq!(spool.len(), 2);
    }

    #[test]
    fn multi_range_subsumption_requires_all_ranges_covered() {
        let mut spool = Spool::new();
        let old = SpooledTxn {
            tid: 1,
            ranges: vec![
                RecordRange {
                    seg: SegmentId::new(0),
                    offset: 0,
                    data: vec![0; 10],
                },
                RecordRange {
                    seg: SegmentId::new(0),
                    offset: 100,
                    data: vec![0; 10],
                },
            ],
            pages: Vec::new(),
            record_bytes: 200,
        };
        spool.push(old, true);
        // Covers only the first range: no subsumption.
        assert_eq!(spool.push(rec(0, 0, 10, 50), true), 0);
        assert_eq!(spool.len(), 2);
        // Covers both: subsumes the two-range record (but not the 50-byte
        // one, whose [0,10) is inside the new coverage — it IS subsumed).
        let new = SpooledTxn {
            tid: 2,
            ranges: vec![
                RecordRange {
                    seg: SegmentId::new(0),
                    offset: 0,
                    data: vec![0; 20],
                },
                RecordRange {
                    seg: SegmentId::new(0),
                    offset: 90,
                    data: vec![0; 30],
                },
            ],
            pages: Vec::new(),
            record_bytes: 400,
        };
        let saved = spool.push(new, true);
        assert_eq!(saved, 250);
        assert_eq!(spool.len(), 1);
        assert_eq!(spool.bytes(), 400);
    }

    #[test]
    fn references_checks_segments() {
        let mut spool = Spool::new();
        spool.push(rec(3, 0, 4, 10), false);
        assert!(spool.references(SegmentId::new(3)));
        assert!(!spool.references(SegmentId::new(4)));
    }
}
