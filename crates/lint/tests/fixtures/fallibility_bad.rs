// Known-bad fixture for the device-fallibility pass: the four ways a
// Device/WAL Result gets lost.

fn discard_let_underscore(dev: &dyn Device) {
    let _ = dev.sync();
}

fn discard_ok(dev: &dyn Device, buf: &[u8]) {
    dev.write_at(0, buf).ok();
}

fn discard_bare_statement(wal: &Wal) {
    wal.force();
}

fn unwrap_outside_tests(dev: &dyn Device, buf: &mut [u8]) {
    dev.read_at(0, buf).unwrap();
}

fn expect_outside_tests(dev: &dyn Device) {
    dev.set_len(4096).expect("grow");
}
