//! Error type shared by all device implementations.

use std::fmt;
use std::io;

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// An error from a storage device.
#[derive(Debug)]
pub enum DeviceError {
    /// An underlying operating-system I/O error.
    Io(io::Error),
    /// Access beyond the end of the device.
    OutOfBounds {
        /// Offset of the first byte of the rejected access.
        offset: u64,
        /// Length of the rejected access.
        len: u64,
        /// Current device length.
        device_len: u64,
    },
    /// The device hit its planned crash point (see
    /// [`FaultDevice`](crate::FaultDevice)); all subsequent operations fail
    /// with this error.
    Crashed,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Io(err) => write!(f, "device I/O error: {err}"),
            DeviceError::OutOfBounds {
                offset,
                len,
                device_len,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for device of length {device_len}",
                offset + len
            ),
            DeviceError::Crashed => write!(f, "device crashed (simulated)"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for DeviceError {
    fn from(err: io::Error) -> Self {
        DeviceError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DeviceError::OutOfBounds {
            offset: 10,
            len: 4,
            device_len: 12,
        };
        assert_eq!(
            e.to_string(),
            "access [10, 14) out of bounds for device of length 12"
        );
        assert!(DeviceError::Crashed.to_string().contains("crashed"));
        let io_err = DeviceError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e = DeviceError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(DeviceError::Crashed.source().is_none());
    }
}
