//! A latency-modelled simulated disk.
//!
//! The paper's evaluation machine (a DECstation 5000/200, §7.1) had three
//! dedicated disks — log, external data segment, and paging file — and its
//! throughput numbers are largely arithmetic over their latencies: the
//! average log force cost 17.4 ms, bounding throughput at 57.4 txn/s
//! (§7.1.2). [`SimDisk`] reproduces that arithmetic deterministically.
//!
//! # Model
//!
//! A disk has a head position, a seek curve, rotational latency, a transfer
//! rate, and a write-behind cache:
//!
//! * **reads** are serviced immediately: seek (distance-dependent) + half a
//!   rotation on average + transfer time;
//! * **writes** land in the cache (transfer time only);
//! * **sync** flushes the cache: contiguous dirty extents are coalesced and
//!   each extent costs a seek + rotational latency + transfer. This makes a
//!   small log force cost one seek + rotation (≈ 17 ms on the default
//!   parameters) regardless of how many `write_at` calls composed the
//!   record — exactly the behaviour the paper's log relies on.
//!
//! All costs are charged to the I/O account of a shared [`simclock::Clock`],
//! never to wall-clock time, so experiments are fast and deterministic.
//!
//! # Overlapped submission
//!
//! The asynchronous device interface ([`rvm_storage::Device::submit_sync`]
//! and friends) maps onto a command-queuing model. The disk keeps a
//! *mechanism busy horizon* (`busy_until`, a point on the virtual I/O
//! timeline): a submitted operation is scheduled to start at
//! `max(now, busy_until)` and advances the horizon to its end, but charges
//! nothing at submit time. [`rvm_storage::Device::wait`] charges only the
//! *residual* `end - now` — so any I/O the system performs between submit
//! and wait (e.g. transferring the next batch's records over the bus)
//! genuinely overlaps the in-flight force on the virtual clock, exactly as
//! DMA into the write-behind cache overlaps a platter flush on real
//! hardware. The synchronous [`rvm_storage::Device::sync`] is submit +
//! immediate wait, which degenerates to the old additive charge.
//!
//! A sync *submitted while the mechanism is still busy* is a queued
//! command: the controller processes its setup during the in-flight
//! operation (so the fixed `controller_overhead` is hidden), and if its
//! first extent is within the near-extent window of the head position the
//! track buffer streams it without the half-rotation wait — the same
//! elevator/track-buffer discount batched extents already get. This is
//! what tagged command queuing buys on real disks, and it is why a
//! pipelined log writer beats a strictly serial force loop on the same
//! simulated hardware.
//!
//! With interval tracing enabled ([`SimDisk::set_interval_trace`]) every
//! serviced operation records its `[start, end)` span on the virtual
//! timeline as an [`OpInterval`], so a benchmark can *mechanically check*
//! that a force overlapped concurrent record serialization instead of
//! inferring it from totals.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rvm_storage::{Device, IoToken, Result};
use simclock::{Clock, SimTime};

mod params;
mod stats;

pub use params::DiskParams;
pub use stats::DiskStats;

/// The operation class of a recorded [`OpInterval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A positional read.
    Read,
    /// A write into the write-behind cache (bus transfer).
    Write,
    /// A cache flush (a log force).
    Sync,
}

/// One serviced operation's span on the virtual I/O timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpInterval {
    /// What the operation was.
    pub op: DiskOp,
    /// First byte touched (for a sync: the lowest flushed extent start).
    pub offset: u64,
    /// Bytes transferred (for a sync: total bytes across flushed extents).
    pub len: u64,
    /// Virtual time the operation began service.
    pub start: SimTime,
    /// Virtual time the operation completed.
    pub end: SimTime,
}

impl OpInterval {
    /// `true` if the two half-open spans `[start, end)` intersect — the
    /// mechanical definition of "these operations overlapped in time".
    pub fn overlaps(&self, other: &OpInterval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[derive(Debug)]
struct DiskState {
    /// Current head position in bytes (block-granular positions are not
    /// needed for latency shape).
    head: u64,
    /// Dirty extents in the write-behind cache, kept sorted and coalesced.
    pending: Vec<(u64, u64)>,
    /// Extent currently held by the read-ahead buffer.
    readahead: (u64, u64),
    /// Virtual time the mechanism (platter + controller) is busy until.
    busy_until: SimTime,
    /// Virtual time the host bus is busy until (write transfers chain on
    /// this so concurrent cache writes still serialize over the bus).
    bus_busy_until: SimTime,
    /// Completion time of each in-flight submitted operation, by token id.
    completions: HashMap<u64, SimTime>,
    /// Next token id to mint.
    next_token: u64,
    /// Whether to record per-op intervals.
    trace_intervals: bool,
    /// Recorded intervals (when tracing is on).
    intervals: Vec<OpInterval>,
    stats: DiskStats,
}

/// A simulated disk: wraps any inner [`Device`] (usually a
/// [`rvm_storage::MemDevice`]) and charges modelled latency to a virtual
/// clock on every access.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm_storage::{Device, MemDevice};
/// use simclock::Clock;
/// use simdisk::{DiskParams, SimDisk};
///
/// let clock = Clock::new();
/// let disk = SimDisk::new(
///     Arc::new(MemDevice::with_len(1 << 20)),
///     clock.clone(),
///     DiskParams::circa_1990(),
/// );
/// disk.write_at(0, &[0u8; 256]).unwrap();
/// disk.sync().unwrap(); // a log force
/// let ms = clock.io_time().as_millis_f64();
/// assert!((15.0..20.0).contains(&ms), "log force cost {ms} ms");
/// ```
pub struct SimDisk {
    inner: Arc<dyn Device>,
    clock: Clock,
    params: DiskParams,
    state: Mutex<DiskState>,
}

impl SimDisk {
    /// Creates a simulated disk over `inner`, charging latency to `clock`.
    pub fn new(inner: Arc<dyn Device>, clock: Clock, params: DiskParams) -> Self {
        Self {
            inner,
            clock,
            params,
            state: Mutex::new(DiskState {
                head: 0,
                pending: Vec::new(),
                readahead: (0, 0),
                busy_until: SimTime::ZERO,
                bus_busy_until: SimTime::ZERO,
                completions: HashMap::new(),
                next_token: 1,
                trace_intervals: false,
                intervals: Vec::new(),
                stats: DiskStats::default(),
            }),
        }
    }

    /// Returns a copy of the cumulative operation statistics.
    pub fn stats(&self) -> DiskStats {
        self.state.lock().stats.clone()
    }

    /// Returns the disk parameter set in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Returns the clock this disk charges.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Enables or disables per-operation interval recording. Disabled by
    /// default (long runs would otherwise accumulate unbounded memory).
    pub fn set_interval_trace(&self, enabled: bool) {
        let mut state = self.state.lock();
        state.trace_intervals = enabled;
        if !enabled {
            state.intervals.clear();
        }
    }

    /// Drains and returns the recorded intervals.
    pub fn take_intervals(&self) -> Vec<OpInterval> {
        std::mem::take(&mut self.state.lock().intervals)
    }

    fn record(
        state: &mut DiskState,
        op: DiskOp,
        offset: u64,
        len: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if state.trace_intervals {
            state.intervals.push(OpInterval {
                op,
                offset,
                len,
                start,
                end,
            });
        }
    }

    /// Cost of a positioned access: seek from the current head to `offset`
    /// plus average rotational delay, then `len` bytes of transfer.
    ///
    /// With `in_batch` set (a non-first extent of a batched flush, or the
    /// first extent of an overlapped queued flush), a nearby extent pays
    /// only the discounted rotational wait: the elevator ordering and the
    /// track buffer let the controller write sectors as they come around
    /// instead of waiting half a revolution per extent.
    fn access_cost(&self, state: &mut DiskState, offset: u64, len: u64, in_batch: bool) -> SimTime {
        let capacity = self.params.capacity_bytes;
        let distance = state.head.abs_diff(offset);
        let seek = self.params.seek_time(distance, capacity);
        if !seek.is_zero() {
            state.stats.seeks += 1;
        }
        let rotation = if in_batch && distance < self.params.near_extent_threshold {
            SimTime::from_nanos(
                (self.params.rotational_latency().as_nanos() as f64
                    * self.params.near_extent_rotation_factor) as u64,
            )
        } else {
            self.params.rotational_latency()
        };
        let cost = seek + rotation + self.params.transfer_time(len);
        state.head = offset + len;
        cost
    }

    /// Inserts `[offset, offset + len)` into the pending extent list,
    /// coalescing overlapping or adjacent extents.
    fn add_pending(pending: &mut Vec<(u64, u64)>, offset: u64, len: u64) {
        let (mut start, mut end) = (offset, offset + len);
        pending.retain(|&(s, e)| {
            if s <= end && e >= start {
                start = start.min(s);
                end = end.max(e);
                false
            } else {
                true
            }
        });
        let idx = pending.partition_point(|&(s, _)| s < start);
        pending.insert(idx, (start, end));
    }

    /// Schedules a bus (cache) write of `len` bytes at `offset`: chains on
    /// the bus-busy horizon, records the interval, and returns its
    /// `(start, end)` without charging the clock.
    fn schedule_write(&self, state: &mut DiskState, offset: u64, len: u64) -> (SimTime, SimTime) {
        Self::add_pending(&mut state.pending, offset, len);
        state.stats.writes += 1;
        state.stats.bytes_written += len;
        let now = self.clock.io_time();
        let start = now.max(state.bus_busy_until);
        let end = start + self.params.transfer_time(len);
        state.bus_busy_until = end;
        Self::record(state, DiskOp::Write, offset, len, start, end);
        (start, end)
    }

    /// Schedules a cache flush: coalesced extents, queued-submission
    /// discount, mechanism-busy chaining. Returns the completion token id
    /// (a fresh entry in `completions`) without charging the clock.
    fn schedule_sync(&self, state: &mut DiskState) -> u64 {
        let pending = std::mem::take(&mut state.pending);
        let now = self.clock.io_time();
        // A queued command: submitted while the mechanism is still busy on
        // the previous operation, so the controller's per-command setup is
        // hidden behind that in-flight window, and a sequential first
        // extent streams out of the track buffer (the in_batch discount).
        let overlapped = state.busy_until > now && !pending.is_empty();
        let mut cost = SimTime::ZERO;
        let mut first = true;
        let mut lo = u64::MAX;
        let mut total = 0u64;
        for &(s, e) in &pending {
            cost += self.access_cost(state, s, e - s, !first || overlapped);
            first = false;
            state.stats.sync_extents += 1;
            lo = lo.min(s);
            total += e - s;
        }
        if !cost.is_zero() && !overlapped {
            cost += self.params.controller_overhead;
        }
        state.stats.syncs += 1;
        if overlapped {
            state.stats.overlapped_syncs += 1;
        }
        // The flush cannot begin before the bus has finished transferring
        // the writes it covers, nor before the mechanism is free.
        let start = now.max(state.busy_until).max(state.bus_busy_until);
        let end = start + cost;
        state.busy_until = end;
        Self::record(
            state,
            DiskOp::Sync,
            if lo == u64::MAX { 0 } else { lo },
            total,
            start,
            end,
        );
        let id = state.next_token;
        state.next_token += 1;
        state.completions.insert(id, end);
        id
    }
}

impl Device for SimDisk {
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)?;
        let mut state = self.state.lock();
        let len = buf.len() as u64;
        let (ra_start, ra_end) = state.readahead;
        let cost = if offset >= ra_start && offset + len <= ra_end {
            // Served from the drive's read-ahead buffer: streaming. The
            // window *slides* to the current stream position (it must not
            // simply grow, or it would eventually cover the whole disk).
            state.readahead = (offset, offset + len + self.params.readahead_bytes);
            state.head = offset + len;
            self.params.transfer_time(len)
        } else {
            state.readahead = (offset, offset + len + self.params.readahead_bytes);
            self.access_cost(&mut state, offset, len, false)
        };
        state.stats.reads += 1;
        state.stats.bytes_read += buf.len() as u64;
        let now = self.clock.io_time();
        let start = now.max(state.busy_until);
        let end = start + cost;
        state.busy_until = end;
        Self::record(&mut state, DiskOp::Read, offset, len, start, end);
        // Charged while holding the state lock so concurrent ops on this
        // disk cannot double-count the same busy window.
        self.clock.charge_io(end - now);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)?;
        let mut state = self.state.lock();
        // Into the write-behind cache: transfer over the bus only.
        let (_, end) = self.schedule_write(&mut state, offset, data.len() as u64);
        let now = self.clock.io_time();
        self.clock.charge_io(end - now);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let token = self.submit_sync();
        self.wait(token)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> IoToken {
        if let Err(e) = self.inner.write_at(offset, &data) {
            return IoToken::inline(Err(e));
        }
        let mut state = self.state.lock();
        let (_, end) = self.schedule_write(&mut state, offset, data.len() as u64);
        let id = state.next_token;
        state.next_token += 1;
        state.completions.insert(id, end);
        IoToken::pending(id)
    }

    fn submit_sync(&self) -> IoToken {
        if let Err(e) = self.inner.sync() {
            return IoToken::inline(Err(e));
        }
        let mut state = self.state.lock();
        let id = self.schedule_sync(&mut state);
        IoToken::pending(id)
    }

    fn poll(&self, token: &IoToken) -> bool {
        if token.is_inline() {
            return true;
        }
        let state = self.state.lock();
        match state.completions.get(&token.id()) {
            Some(&end) => end <= self.clock.io_time(),
            None => true,
        }
    }

    fn wait(&self, token: IoToken) -> Result<()> {
        let id = match token.into_inline() {
            Ok(result) => return result,
            Err(pending) => pending.id(),
        };
        let mut state = self.state.lock();
        if let Some(end) = state.completions.remove(&id) {
            let now = self.clock.io_time();
            // Only the residual: time the system spent on other I/O while
            // this operation was in flight already advanced the clock.
            self.clock.charge_io(end - now);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    fn disk_with(params: DiskParams) -> (SimDisk, Clock) {
        let clock = Clock::new();
        let disk = SimDisk::new(
            Arc::new(MemDevice::with_len(100 << 20)),
            clock.clone(),
            params,
        );
        (disk, clock)
    }

    #[test]
    fn data_round_trips_through_the_model() {
        let (disk, _clock) = disk_with(DiskParams::circa_1990());
        disk.write_at(4096, b"hello").unwrap();
        disk.sync().unwrap();
        let mut buf = [0u8; 5];
        disk.read_at(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn log_force_costs_about_17ms() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        // Steady-state: head already parked at the log tail.
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap();
        let before = clock.snapshot();
        disk.write_at(64, &[0u8; 256]).unwrap();
        disk.sync().unwrap();
        let ms = (clock.snapshot() - before).io.as_millis_f64();
        assert!(
            (15.0..20.0).contains(&ms),
            "sequential log force should cost ~17.4 ms, got {ms}"
        );
    }

    #[test]
    fn sequential_writes_coalesce_into_one_extent() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        for i in 0..10u64 {
            disk.write_at(i * 100, &[0u8; 100]).unwrap();
        }
        let before = clock.snapshot();
        disk.sync().unwrap();
        let one_extent = (clock.snapshot() - before).io;
        assert_eq!(disk.stats().syncs, 1);

        // Ten far-scattered writes cost roughly ten seeks + rotations
        // (beyond the near-extent threshold, no elevator discount).
        let (disk2, clock2) = disk_with(DiskParams::circa_1990());
        for i in 0..10u64 {
            disk2.write_at(i * (8 << 20), &[0u8; 100]).unwrap();
        }
        let before = clock2.snapshot();
        disk2.sync().unwrap();
        let scattered = (clock2.snapshot() - before).io;
        assert!(
            scattered.as_nanos() > 5 * one_extent.as_nanos(),
            "scattered {scattered} vs sequential {one_extent}"
        );
    }

    #[test]
    fn grouped_force_costs_one_seek_and_contiguous_transfer() {
        // A group commit appends N records back to back and forces once.
        // The model must charge that like a single sequential transfer —
        // one coalesced extent, one seek — not N individual forces.
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap(); // park the head at the log tail
        let parked = disk.stats();

        let before = clock.snapshot();
        for i in 0..8u64 {
            disk.write_at(64 + i * 512, &[0u8; 512]).unwrap();
        }
        disk.sync().unwrap();
        let grouped_ms = (clock.snapshot() - before).io.as_millis_f64();
        let delta = disk.stats().delta_since(&parked);
        assert_eq!(delta.syncs, 1);
        assert_eq!(delta.sync_extents, 1, "contiguous appends must coalesce");
        assert!(
            (15.0..25.0).contains(&grouped_ms),
            "a grouped force should cost about one ~17.4 ms force, got {grouped_ms}"
        );

        // The same eight records forced one at a time pay ~8 rotations.
        let (disk2, clock2) = disk_with(DiskParams::circa_1990());
        disk2.write_at(0, &[0u8; 64]).unwrap();
        disk2.sync().unwrap();
        let before = clock2.snapshot();
        for i in 0..8u64 {
            disk2.write_at(64 + i * 512, &[0u8; 512]).unwrap();
            disk2.sync().unwrap();
        }
        let serial_ms = (clock2.snapshot() - before).io.as_millis_f64();
        assert_eq!(disk2.stats().sync_extents, 1 + 8);
        assert!(
            serial_ms > 4.0 * grouped_ms,
            "serialized forces ({serial_ms} ms) should dwarf one grouped force ({grouped_ms} ms)"
        );
    }

    #[test]
    fn reads_charge_seek_plus_rotation_plus_transfer() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        let mut buf = [0u8; 4096];
        disk.read_at(50 << 20, &mut buf).unwrap();
        let ms = clock.io_time().as_millis_f64();
        assert!(ms > 10.0, "random 4K read should cost >10 ms, got {ms}");
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(disk.stats().bytes_read, 4096);
    }

    #[test]
    fn sequential_read_after_read_skips_the_seek() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        let mut buf = [0u8; 4096];
        disk.read_at(0, &mut buf).unwrap();
        let before = clock.snapshot();
        disk.read_at(4096, &mut buf).unwrap();
        let sequential = (clock.snapshot() - before).io;
        let before = clock.snapshot();
        disk.read_at(90 << 20, &mut buf).unwrap();
        let random = (clock.snapshot() - before).io;
        assert!(random > sequential);
    }

    #[test]
    fn empty_sync_is_free() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        disk.sync().unwrap();
        assert_eq!(clock.io_time(), SimTime::ZERO);
    }

    #[test]
    fn pending_extent_coalescing() {
        let mut pending = Vec::new();
        SimDisk::add_pending(&mut pending, 0, 10);
        SimDisk::add_pending(&mut pending, 10, 10); // adjacent
        SimDisk::add_pending(&mut pending, 5, 3); // contained
        assert_eq!(pending, vec![(0, 20)]);
        SimDisk::add_pending(&mut pending, 100, 10);
        SimDisk::add_pending(&mut pending, 50, 10);
        assert_eq!(pending, vec![(0, 20), (50, 60), (100, 110)]);
        SimDisk::add_pending(&mut pending, 15, 40); // bridges first two
        assert_eq!(pending, vec![(0, 60), (100, 110)]);
    }

    #[test]
    fn overlapped_submission_charges_only_the_residual() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        // Park the head at the tail so the overlapped force is sequential.
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap();

        let before = clock.snapshot();
        disk.write_at(64, &[0u8; 256]).unwrap();
        let force = disk.submit_sync();
        assert!(!disk.poll(&force), "a real force takes virtual time");
        // While the force is in flight, "the next batch" transfers 1 MB
        // over the bus (250 ms at 4 MB/s — far more than the force).
        disk.write_at(4096, &[0u8; 1 << 20]).unwrap();
        disk.wait(force).unwrap();
        let with_overlap = (clock.snapshot() - before).io;

        // The force residual must have been absorbed by the bus transfer:
        // total is the transfer (~250 ms) plus epsilon, not + 17 ms.
        let transfer_only = DiskParams::circa_1990().transfer_time((1 << 20) + 256);
        assert!(
            with_overlap < transfer_only + SimTime::from_millis(2),
            "force did not overlap the transfer: {with_overlap} vs {transfer_only}"
        );
    }

    #[test]
    fn queued_sequential_sync_skips_rotation_and_controller() {
        let (disk, clock) = disk_with(DiskParams::circa_1990());
        disk.write_at(0, &[0u8; 64]).unwrap();
        disk.sync().unwrap();

        // Submit force A, then (while A is in flight) write the next batch
        // sequentially and submit force B: B is a queued command.
        disk.write_at(64, &[0u8; 512]).unwrap();
        let a = disk.submit_sync();
        disk.write_at(576, &[0u8; 512]).unwrap();
        let b = disk.submit_sync();
        let before = clock.snapshot();
        disk.wait(a).unwrap();
        disk.wait(b).unwrap();
        let both = (clock.snapshot() - before).io.as_millis_f64();
        assert_eq!(disk.stats().overlapped_syncs, 1);
        // A pays a full ~17.4 ms force; queued B streams: transfer only.
        assert!(
            both < 20.0,
            "queued sequential force should not pay rotation again, got {both} ms"
        );
    }

    #[test]
    fn interval_trace_records_overlap() {
        let (disk, _clock) = disk_with(DiskParams::circa_1990());
        disk.set_interval_trace(true);
        disk.write_at(0, &[0u8; 256]).unwrap();
        let force = disk.submit_sync();
        disk.write_at(4096, &[0u8; 8192]).unwrap();
        disk.wait(force).unwrap();
        let intervals = disk.take_intervals();
        let sync = intervals
            .iter()
            .find(|i| i.op == DiskOp::Sync)
            .expect("sync interval");
        let concurrent_write = intervals
            .iter()
            .find(|i| i.op == DiskOp::Write && i.offset == 4096)
            .expect("write interval");
        assert!(
            sync.overlaps(concurrent_write),
            "sync {sync:?} should overlap write {concurrent_write:?}"
        );
        // Draining leaves the trace empty; disabled tracing records nothing.
        assert!(disk.take_intervals().is_empty());
        disk.set_interval_trace(false);
        disk.write_at(0, &[1u8; 16]).unwrap();
        assert!(disk.take_intervals().is_empty());
    }

    #[test]
    fn serial_sync_is_never_an_overlapped_submission() {
        let (disk, _clock) = disk_with(DiskParams::circa_1990());
        for i in 0..4u64 {
            disk.write_at(i * 512, &[0u8; 512]).unwrap();
            disk.sync().unwrap();
        }
        assert_eq!(disk.stats().overlapped_syncs, 0);
    }
}
