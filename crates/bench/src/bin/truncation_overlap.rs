//! Commit throughput *during* epoch truncation: the concurrency gate.
//!
//! Before truncation became concurrent, an epoch truncation held the core
//! lock for its entire scan-and-apply, so commit throughput dropped to
//! zero for the duration — on the paper's hardware, hundreds of
//! milliseconds of dead air every time the log crossed the threshold.
//! The concurrent protocol releases the lock while the frozen span is
//! applied, so commits keep flowing and only the log force bounds their
//! latency.
//!
//! This bench makes the apply phase expensive on purpose (every segment
//! write sleeps) and measures commit throughput inside truncation windows
//! versus steady state, plus commit latency split the same way.
//!
//! Usage: `truncation_overlap [--quick] [--check] [--txns N]`
//!
//! Writes `BENCH_truncation_overlap.json` (repo root) and
//! `results/truncation_overlap.txt`. `--check` exits non-zero unless
//! throughput during truncation is at least 50% of steady state and at
//! least one epoch actually overlapped the run — the CI perf-smoke gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rvm::segment::DeviceResolver;
use rvm::{CommitMode, Options, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{Device, MemDevice};

/// A segment device that makes every write and sync cost real wall time,
/// standing in for a positioning-bound data disk.
struct SlowDevice {
    inner: Arc<MemDevice>,
    write_delay: Duration,
}

impl Device for SlowDevice {
    fn len(&self) -> rvm_storage::Result<u64> {
        self.inner.len()
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> rvm_storage::Result<()> {
        self.inner.read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, data: &[u8]) -> rvm_storage::Result<()> {
        std::thread::sleep(self.write_delay);
        self.inner.write_at(offset, data)
    }
    fn sync(&self) -> rvm_storage::Result<()> {
        std::thread::sleep(self.write_delay);
        self.inner.sync()
    }
    fn set_len(&self, len: u64) -> rvm_storage::Result<()> {
        self.inner.set_len(len)
    }
}

const COMMITTERS: u64 = 2;
/// Distinct pages the workload dirties: one slow segment write each per
/// epoch apply, so an apply costs ~PAGES * write_delay of wall time.
const PAGES: u64 = 32;

struct Measured {
    txns: u64,
    wall_s: f64,
    in_flight_s: f64,
    epochs: u64,
    commits_during: u64,
    rate_during: f64,
    rate_steady: f64,
    ratio: f64,
    p99_during_us: f64,
    p99_steady_us: f64,
    stall_ms: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1000.0
}

fn run(total: u64) -> Measured {
    let log = Arc::new(MemDevice::with_len(16 << 20));
    let seg: Arc<dyn Device> = Arc::new(SlowDevice {
        inner: Arc::new(MemDevice::with_len(PAGES * PAGE_SIZE)),
        write_delay: Duration::from_millis(1),
    });
    let seg_for_resolver = seg.clone();
    let resolver: DeviceResolver = Arc::new(move |_name, min_len| {
        if seg_for_resolver.len()? < min_len {
            seg_for_resolver.set_len(min_len)?;
        }
        Ok(seg_for_resolver.clone())
    });
    let rvm = Arc::new(
        Rvm::initialize(
            Options::new(log)
                .resolver(resolver)
                .tuning(Tuning {
                    background_truncation: true,
                    truncation_threshold: 0.1,
                    // One shared segment device behind every name, so
                    // checksum sidecars are off.
                    segment_checksums: false,
                    ..Tuning::default()
                })
                .create_if_empty(),
        )
        .expect("initialize"),
    );
    let region = rvm
        .map(&rvm::RegionDescriptor::new("bench", 0, PAGES * PAGE_SIZE))
        .expect("map");

    let stop = Arc::new(AtomicBool::new(false));
    let in_flight_now = Arc::new(AtomicBool::new(false));

    // Monitor: tracks when an epoch is in flight and accumulates the
    // total in-flight wall time.
    let monitor = {
        let rvm = Arc::clone(&rvm);
        let stop = Arc::clone(&stop);
        let flag = Arc::clone(&in_flight_now);
        std::thread::spawn(move || {
            let mut in_flight = Duration::ZERO;
            let mut last = Instant::now();
            while !stop.load(Ordering::Acquire) {
                let now = Instant::now();
                if flag.load(Ordering::Acquire) {
                    in_flight += now - last;
                }
                last = now;
                flag.store(rvm.query().truncation_in_flight, Ordering::Release);
                std::thread::sleep(Duration::from_micros(200));
            }
            in_flight
        })
    };

    let before = rvm.stats();
    let barrier = Arc::new(Barrier::new(COMMITTERS as usize));
    let started = Instant::now();
    let workers: Vec<_> = (0..COMMITTERS)
        .map(|t| {
            let rvm = Arc::clone(&rvm);
            let region = region.clone();
            let barrier = Arc::clone(&barrier);
            let flag = Arc::clone(&in_flight_now);
            let per_thread = total / COMMITTERS;
            std::thread::spawn(move || {
                barrier.wait();
                let mut lat_during: Vec<u64> = Vec::new();
                let mut lat_steady: Vec<u64> = Vec::new();
                let mut payload = [0u8; 64];
                for i in 0..per_thread {
                    payload[..8].copy_from_slice(&(t * per_thread + i).to_le_bytes());
                    let page = (t * per_thread + i) % PAGES;
                    let t0 = Instant::now();
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                    region
                        .write(&mut txn, page * PAGE_SIZE, &payload)
                        .expect("write");
                    txn.commit(CommitMode::Flush).expect("commit");
                    let ns = t0.elapsed().as_nanos() as u64;
                    if flag.load(Ordering::Acquire) {
                        lat_during.push(ns);
                    } else {
                        lat_steady.push(ns);
                    }
                }
                (lat_during, lat_steady)
            })
        })
        .collect();
    let mut lat_during: Vec<u64> = Vec::new();
    let mut lat_steady: Vec<u64> = Vec::new();
    for w in workers {
        let (d, s) = w.join().expect("committer");
        lat_during.extend(d);
        lat_steady.extend(s);
    }
    let wall = started.elapsed();
    stop.store(true, Ordering::Release);
    let in_flight = monitor.join().expect("monitor");

    // Let an epoch that is still applying finish so its completion shows
    // up in the stats; rates below use only the committer window.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while rvm.query().truncation_in_flight && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = rvm.stats().delta_since(&before);
    let txns = (total / COMMITTERS) * COMMITTERS;
    let wall_s = wall.as_secs_f64();
    let in_flight_s = in_flight.as_secs_f64().min(wall_s);
    let steady_s = (wall_s - in_flight_s).max(f64::EPSILON);
    let commits_during = stats.commits_during_truncation;
    let rate_during = if in_flight_s > 0.0 {
        commits_during as f64 / in_flight_s
    } else {
        0.0
    };
    let rate_steady = (txns - commits_during) as f64 / steady_s;
    lat_during.sort_unstable();
    lat_steady.sort_unstable();
    Measured {
        txns,
        wall_s,
        in_flight_s,
        epochs: stats.epochs_truncated,
        commits_during,
        rate_during,
        rate_steady,
        ratio: if rate_steady > 0.0 {
            rate_during / rate_steady
        } else {
            0.0
        },
        p99_during_us: percentile(&lat_during, 0.99),
        p99_steady_us: percentile(&lat_steady, 0.99),
        stall_ms: stats.truncation_stall_ns as f64 / 1e6,
    }
}

fn main() {
    let mut total: u64 = 120_000;
    let mut check = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => total = 40_000,
            "--check" => check = true,
            "--txns" => {
                i += 1;
                total = args[i].parse().expect("--txns N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let m = run(total);
    let mut table = String::new();
    table.push_str(&format!(
        "commit throughput during concurrent epoch truncation, {} commits, \
         {COMMITTERS} committers, 1 ms/segment-write apply\n\n",
        m.txns
    ));
    table.push_str(&format!("{:<26} {:>12}\n", "epochs truncated", m.epochs));
    table.push_str(&format!("{:<26} {:>12.3}\n", "wall time (s)", m.wall_s));
    table.push_str(&format!(
        "{:<26} {:>12.3}\n",
        "truncation in flight (s)", m.in_flight_s
    ));
    table.push_str(&format!(
        "{:<26} {:>12}\n",
        "commits during truncation", m.commits_during
    ));
    table.push_str(&format!(
        "{:<26} {:>12.0}\n",
        "rate during (txn/s)", m.rate_during
    ));
    table.push_str(&format!(
        "{:<26} {:>12.0}\n",
        "rate steady (txn/s)", m.rate_steady
    ));
    table.push_str(&format!(
        "{:<26} {:>12.2}\n",
        "during/steady ratio", m.ratio
    ));
    table.push_str(&format!(
        "{:<26} {:>12.1}\n",
        "p99 latency during (us)", m.p99_during_us
    ));
    table.push_str(&format!(
        "{:<26} {:>12.1}\n",
        "p99 latency steady (us)", m.p99_steady_us
    ));
    table.push_str(&format!(
        "{:<26} {:>12.1}\n",
        "committer stall (ms)", m.stall_ms
    ));
    print!("{table}");

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"truncation_overlap\",\n",
            "  \"txns\": {},\n  \"committers\": {},\n",
            "  \"epochs_truncated\": {},\n  \"wall_s\": {:.4},\n",
            "  \"in_flight_s\": {:.4},\n  \"commits_during_truncation\": {},\n",
            "  \"rate_during_txn_s\": {:.1},\n  \"rate_steady_txn_s\": {:.1},\n",
            "  \"during_over_steady\": {:.4},\n",
            "  \"p99_during_us\": {:.1},\n  \"p99_steady_us\": {:.1},\n",
            "  \"stall_ms\": {:.2}\n}}\n"
        ),
        m.txns,
        COMMITTERS,
        m.epochs,
        m.wall_s,
        m.in_flight_s,
        m.commits_during,
        m.rate_during,
        m.rate_steady,
        m.ratio,
        m.p99_during_us,
        m.p99_steady_us,
        m.stall_ms,
    );
    std::fs::write("BENCH_truncation_overlap.json", &json).expect("write JSON");
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/truncation_overlap.txt", &table).expect("write table");

    if check {
        if m.epochs == 0 || m.in_flight_s <= 0.0 {
            eprintln!("FAIL: no epoch truncation overlapped the run");
            std::process::exit(1);
        }
        if m.ratio < 0.5 {
            eprintln!(
                "FAIL: throughput during truncation is {:.2}x steady state (need >= 0.5x)",
                m.ratio
            );
            std::process::exit(1);
        }
    }
}
