//! End-to-end test of the `rvm-lint` binary: a miniature workspace with
//! seeded findings, the JSON report schema, and the baseline ratchet
//! round-trip (convict -> --write-baseline -> suppressed -> fixed ->
//! stale entry reported).

use std::path::{Path, PathBuf};
use std::process::Command;

fn rvm_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvm-lint"))
}

/// A tiny workspace with one lock-order inversion and one discarded
/// device Result, both in lock-order/fallibility scope.
fn write_mini_workspace(dir: &Path) -> PathBuf {
    let core = dir.join("crates/core/src");
    std::fs::create_dir_all(&core).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        core.join("badcode.rs"),
        "pub struct S;\n\
         impl S {\n\
             pub fn careless(&self, dev: &dyn Device) {\n\
                 let _ = dev.sync();\n\
             }\n\
             fn inverted(&self) {\n\
                 let _r = self.regions.read();\n\
                 let _c = self.core.lock();\n\
             }\n\
         }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("lockorder.toml"),
        "[[lock]]\nrank = 10\nname = \"core\"\npatterns = [\"core.lock\"]\ndesc = \"core\"\n\n\
         [[lock]]\nrank = 20\nname = \"regions\"\npatterns = [\"regions.read\", \"regions.write\"]\ndesc = \"regions\"\n",
    )
    .unwrap();
    core.join("badcode.rs")
}

/// Pulls the integer after `"key"` — searched from the end, so for keys
/// that also appear per-finding this reads the trailing `counts` object.
fn count(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\"");
    let at = json
        .rfind(&needle)
        .unwrap_or_else(|| panic!("no {needle} in {json}"));
    json[at + needle.len()..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn json_schema_baseline_ratchet_round_trip() {
    let dir = std::env::temp_dir().join(format!("rvm-lint-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bad_file = write_mini_workspace(&dir);
    let root = dir.to_str().unwrap();

    // 1. Fresh findings: exit 1, JSON carries the documented fields.
    let out = rvm_lint()
        .args(["--root", root, "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    for field in [
        "\"schema\"",
        "\"findings\"",
        "\"id\"",
        "\"pass\"",
        "\"file\"",
        "\"line\"",
        "\"function\"",
        "\"message\"",
        "\"baselined\"",
        "\"counts\"",
        "\"total\"",
        "\"fresh\"",
        "\"stale_baseline\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    assert!(json.contains("RVML-LOCK-"), "{json}");
    assert!(json.contains("RVML-DEV-"), "{json}");
    assert_eq!(count(&json, "total"), 2, "{json}");
    assert_eq!(count(&json, "fresh"), 2, "{json}");
    assert_eq!(count(&json, "baselined"), 0, "{json}");

    // 2. Ratchet the findings into the baseline.
    let out = rvm_lint()
        .args(["--root", root, "--write-baseline"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let baseline = std::fs::read_to_string(dir.join("lint-baseline.toml")).unwrap();
    assert!(baseline.contains("[[suppress]]"), "{baseline}");
    assert!(baseline.contains("RVML-LOCK-"), "{baseline}");

    // 3. Same findings, now baselined: exit 0.
    let out = rvm_lint()
        .args(["--root", root, "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(count(&json, "fresh"), 0, "{json}");
    assert_eq!(count(&json, "baselined"), 2, "{json}");

    // 4. Fix the fallibility finding; its baseline entry goes stale but
    //    the run stays green (the ratchet only tightens).
    std::fs::write(
        &bad_file,
        "pub struct S;\n\
         impl S {\n\
             pub fn careful(&self, dev: &dyn Device) -> Result<()> {\n\
                 dev.sync()\n\
             }\n\
             fn inverted(&self) {\n\
                 let _r = self.regions.read();\n\
                 let _c = self.core.lock();\n\
             }\n\
         }\n",
    )
    .unwrap();
    let out = rvm_lint().args(["--root", root]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stale baseline entry RVML-DEV-"), "{text}");
    assert!(text.contains("1 stale baseline entry"), "{text}");

    // 5. Help and usage errors.
    let out = rvm_lint().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("rvmlog lint"));
    let out = rvm_lint().arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}
