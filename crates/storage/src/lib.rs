//! Storage device abstraction for RVM.
//!
//! The paper (§3.3) lets a log or external data segment live in "a Unix file
//! or on a raw disk partition", with permanence resting on the correct
//! implementation of `fsync`. This crate captures exactly that contract as
//! the [`Device`] trait, plus three implementations:
//!
//! * [`FileDevice`] — a real file, synced with `fdatasync`;
//! * [`MemDevice`] — an in-memory image, handy for tests and simulation;
//! * [`FaultDevice`] — a wrapper that models a machine crash: writes after
//!   the last `sync` may be lost or torn, and every operation after the
//!   planned crash point fails. This is the engine behind the crash-matrix
//!   integration tests.
//! * [`FlakyDevice`] — a wrapper that models flaky hardware: the Nth
//!   read/write/sync fails with a transient or permanent
//!   [`DeviceError::Injected`], on an explicit or seeded schedule. This is
//!   the engine behind the transient-fault and crash-during-recovery
//!   sweeps.
//! * [`TraceDevice`] — a wrapper that records every mutation into a shared
//!   [`TraceRecorder`] op-log, in global order across devices. This is the
//!   input to the `rvm-crashmc` crash-state model checker, which
//!   enumerates every durable image the op-log permits.
//!
//! The `simdisk` crate provides a further implementation that charges seek,
//! rotation and transfer latency to a virtual clock.

mod device;
mod error;
mod fault;
mod file;
mod flaky;
mod mem;
mod mirror;
mod null;
mod trace;

pub use device::{Device, IoToken, SharedDevice, VerifiedRead};
pub use error::{DeviceError, FaultOp, Result};
pub use fault::{CrashPlan, FaultDevice, UnsyncedFate};
pub use file::FileDevice;
pub use flaky::{FaultClock, FaultKind, FlakyDevice, FlakyFault};
pub use mem::MemDevice;
pub use mirror::MirrorDevice;
pub use null::NullDevice;
pub use trace::{TraceDevice, TraceOp, TraceOpKind, TraceRecorder};
