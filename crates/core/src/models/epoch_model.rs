//! Interleaving model of the `epoch_done` condvar + `wait_generation`
//! handshake between concurrent epoch truncation and
//! `append_with_space`.
//!
//! Threads: one truncator running the three-phase epoch protocol, and
//! two committers appending into a log with no free space. A committer
//! that finds an epoch in flight waits on `epoch_done` (releasing the
//! core lock and bumping `wait_generation` on wake); one that finds no
//! epoch runs the synchronous space-critical truncation itself, exactly
//! as `append_with_space` falls back.
//!
//! Checked properties:
//!
//! * **No lost wakeup** — every schedule terminates; the explorer reports
//!   any state where a committer is parked and nothing can wake it.
//!   `notify_all` (not `notify_one`) matters here: both committers can be
//!   parked when the truncator completes.
//! * **Generation discipline** — a committer that waited must bump
//!   `wait_generation` *before* it re-derives any state from the core
//!   lock (the group-commit rollback guard depends on this).
//! * The model's own power is demonstrated by two mutations the explorer
//!   must catch: a non-atomic wait (release-then-park ⇒ deadlock) and a
//!   skipped generation bump (⇒ invariant violation).

use super::explore::Model;

const DONE: u8 = 99;

/// See the [module docs](self).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EpochModel {
    /// Model mutation: `false` splits the condvar wait into
    /// release-then-park, losing wakeups that land in between.
    pub atomic_wait: bool,
    /// Model mutation: `true` skips the `wait_generation` bump on wake,
    /// the omission that would silently re-enable unsafe group rollbacks.
    pub skip_gen_bump: bool,

    lock: Option<u8>,
    epoch: bool,
    /// Whether the log has room to append (starts false: log full).
    space: bool,
    wait_gen: u8,
    /// Bitmask of committers parked on `epoch_done`.
    waiters: u8,

    trunc_pc: u8,
    com_pc: [u8; 2],
    /// Per committer: it waited at least once.
    waited: [bool; 2],
    /// Per committer: it bumped `wait_gen` after its latest wake.
    bumped: [bool; 2],
    /// Per committer: it appended while `waited && !bumped` — the
    /// generation-discipline violation.
    bad_append: [bool; 2],
}

impl EpochModel {
    pub fn new(atomic_wait: bool, skip_gen_bump: bool) -> Self {
        EpochModel {
            atomic_wait,
            skip_gen_bump,
            lock: None,
            epoch: false,
            space: false,
            wait_gen: 0,
            waiters: 0,
            trunc_pc: 0,
            com_pc: [0; 2],
            waited: [false; 2],
            bumped: [false; 2],
            bad_append: [false; 2],
        }
    }

    fn step_truncator(&mut self) {
        match self.trunc_pc {
            0 => {
                self.lock = Some(0);
                self.trunc_pc = 1;
            }
            1 => {
                // Phase 1: snapshot the boundary under the lock. If a
                // space-critical committer already truncated, there is
                // nothing left to do.
                if self.space {
                    self.lock = None;
                    self.trunc_pc = DONE;
                } else {
                    self.epoch = true;
                    self.trunc_pc = 2;
                }
            }
            2 => {
                self.lock = None;
                self.trunc_pc = 3;
            }
            3 => {
                // Phase 2: apply the frozen span off-lock.
                self.trunc_pc = 4;
            }
            4 => {
                self.lock = Some(0);
                self.trunc_pc = 5;
            }
            5 => {
                // Phase 3: advance the head, free the span, wake every
                // waiter.
                self.space = true;
                self.epoch = false;
                for j in 0..2usize {
                    if self.waiters & (1 << j) != 0 {
                        self.com_pc[j] = 4;
                    }
                }
                self.waiters = 0;
                self.trunc_pc = 6;
            }
            6 => {
                self.lock = None;
                self.trunc_pc = DONE;
            }
            _ => unreachable!("truncator stepped while blocked"),
        }
    }

    fn step_committer(&mut self, i: usize) {
        let t = (i + 1) as u8;
        match self.com_pc[i] {
            0 => {
                self.lock = Some(t);
                self.com_pc[i] = 1;
            }
            1 => {
                // append_with_space, one iteration of its loop.
                if self.space {
                    if self.waited[i] && !self.bumped[i] {
                        self.bad_append[i] = true;
                    }
                    self.lock = None;
                    self.com_pc[i] = DONE;
                } else if self.epoch {
                    self.waited[i] = true;
                    self.bumped[i] = false;
                    if self.atomic_wait {
                        self.waiters |= 1 << i;
                        self.lock = None;
                        self.com_pc[i] = 2;
                    } else {
                        self.lock = None;
                        self.com_pc[i] = 3;
                    }
                } else {
                    // Synchronous space-critical epoch truncation.
                    self.space = true;
                    // Loop: the next step re-checks and appends.
                }
            }
            3 => {
                // Buggy non-atomic wait: park after releasing the lock; a
                // notify that fired in between is lost.
                self.waiters |= 1 << i;
                self.com_pc[i] = 2;
            }
            4 => {
                // Woken: reacquire the lock, bump the generation.
                self.lock = Some(t);
                if !self.skip_gen_bump {
                    self.wait_gen = self.wait_gen.wrapping_add(1);
                    self.bumped[i] = true;
                }
                self.com_pc[i] = 1;
            }
            _ => unreachable!("committer stepped while parked"),
        }
    }
}

impl Model for EpochModel {
    fn threads(&self) -> usize {
        3
    }

    fn runnable(&self, t: usize) -> bool {
        if t == 0 {
            return match self.trunc_pc {
                DONE => false,
                0 | 4 => self.lock.is_none(),
                3 => true,
                _ => self.lock == Some(0),
            };
        }
        let i = t - 1;
        match self.com_pc[i] {
            DONE | 2 => false,
            0 | 4 => self.lock.is_none(),
            3 => true,
            _ => self.lock == Some((i + 1) as u8),
        }
    }

    fn finished(&self, t: usize) -> bool {
        if t == 0 {
            self.trunc_pc == DONE
        } else {
            self.com_pc[t - 1] == DONE
        }
    }

    fn step(&mut self, t: usize) {
        if t == 0 {
            self.step_truncator();
        } else {
            self.step_committer(t - 1);
        }
    }

    fn check(&self) -> Result<(), String> {
        for i in 0..2 {
            if self.bad_append[i] {
                return Err(format!(
                    "committer {i} re-derived core state after a wait without bumping wait_generation"
                ));
            }
        }
        let all_done = self.trunc_pc == DONE && self.com_pc.iter().all(|&pc| pc == DONE);
        if all_done {
            if self.epoch {
                return Err("epoch still in flight past termination".into());
            }
            if self.waiters != 0 {
                return Err("waiter bitmask leaked past termination".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::explore::explore;

    #[test]
    fn epoch_handshake_has_no_lost_wakeup() {
        let report = explore(EpochModel::new(true, false), 2_000_000);
        assert!(report.complete, "state space fully covered");
        assert!(
            report.violation.is_none(),
            "every schedule terminates with the generation discipline intact: {:?}",
            report.violation
        );
        assert!(report.states > 50, "nontrivial state space");
    }

    #[test]
    fn non_atomic_wait_deadlocks_and_is_caught() {
        let report = explore(EpochModel::new(false, false), 2_000_000);
        let (msg, schedule) = report
            .violation
            .expect("release-then-park must lose a wakeup in some schedule");
        assert!(msg.contains("deadlock"), "unexpected violation: {msg}");
        assert!(!schedule.is_empty());
    }

    #[test]
    fn skipped_generation_bump_is_caught() {
        let report = explore(EpochModel::new(true, true), 2_000_000);
        let (msg, _) = report
            .violation
            .expect("a skipped wait_generation bump must be flagged");
        assert!(
            msg.contains("wait_generation"),
            "unexpected violation: {msg}"
        );
    }
}
