//! Tiny JSON emitter (no serde in the build environment).

/// Escapes `s` as a JSON string, including the surrounding quotes.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental object/array writer with stable key order.
#[derive(Default)]
pub struct JsonBuf {
    out: String,
    needs_comma: Vec<bool>,
}

impl JsonBuf {
    fn pre(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    pub fn obj_open(&mut self) -> &mut Self {
        self.pre();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    pub fn obj_close(&mut self) -> &mut Self {
        self.out.push('}');
        self.needs_comma.pop();
        self
    }

    pub fn arr_open(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    pub fn arr_close(&mut self) -> &mut Self {
        self.out.push(']');
        self.needs_comma.pop();
        self
    }

    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre();
        self.out.push_str(&esc(key));
        self.out.push(':');
        // The value that follows manages its own comma state.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    pub fn str_field(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key);
        self.pre();
        self.out.push_str(&esc(val));
        self
    }

    pub fn num_field(&mut self, key: &str, val: u64) -> &mut Self {
        self.key(key);
        self.pre();
        self.out.push_str(&val.to_string());
        self
    }

    pub fn bool_field(&mut self, key: &str, val: bool) -> &mut Self {
        self.key(key);
        self.pre();
        self.out.push_str(if val { "true" } else { "false" });
        self
    }

    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_object_layout() {
        let mut j = JsonBuf::default();
        j.obj_open()
            .str_field("a", "x\"y")
            .num_field("n", 3)
            .arr_open("items");
        j.obj_open().bool_field("ok", true).obj_close();
        j.obj_open().bool_field("ok", false).obj_close();
        j.arr_close().obj_close();
        assert_eq!(
            j.finish(),
            r#"{"a":"x\"y","n":3,"items":[{"ok":true},{"ok":false}]}"#
        );
    }
}
