//! Crash-injection wrapper used by the recovery test matrix.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Device, DeviceError, Result};

/// What happens to writes issued after the last successful `sync` when the
/// planned crash fires.
///
/// A real power failure may preserve any subset of unsynced writes.
/// [`KeptInOrder`](UnsyncedFate::KeptInOrder) and
/// [`Lost`](UnsyncedFate::Lost) bracket that space with the two extremes;
/// [`ArbitrarySubset`](UnsyncedFate::ArbitrarySubset) and
/// [`TornWrite`](UnsyncedFate::TornWrite) sample the interior — the
/// reorder/torn-write windows that hand-picked crash matrices miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsyncedFate {
    /// Every byte written before the crash point persists, in write order;
    /// the write in flight at the crash point is torn (a prefix persists).
    KeptInOrder,
    /// All writes since the last successful `sync` are rolled back, as if
    /// they never reached the platter.
    Lost,
    /// Each write since the last successful `sync` independently persists
    /// or vanishes, decided pseudo-randomly from `seed` (xorshift64*);
    /// surviving writes apply in their original order. Models a drive that
    /// reorders its write cache arbitrarily across a power cut.
    ArbitrarySubset {
        /// Seed for the keep/drop coin flips; the same seed replays the
        /// same subset bit-for-bit.
        seed: u64,
    },
    /// Like [`KeptInOrder`](UnsyncedFate::KeptInOrder), but the write in
    /// flight at the crash point tears on a sector boundary: only whole
    /// leading sectors of it persist. Models the sector-granular
    /// atomicity a real disk offers a multi-sector write.
    TornWrite {
        /// Sector size in bytes (must be nonzero).
        sector: u64,
    },
}

/// A plan describing when and how a [`FaultDevice`] crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Fire the crash once this many total bytes have been written through
    /// the device (the triggering write is the one that crosses this count).
    pub after_bytes: u64,
    /// Fate of unsynced writes at the moment of the crash.
    pub unsynced: UnsyncedFate,
}

impl CrashPlan {
    /// A plan that crashes after `after_bytes` written, keeping all earlier
    /// bytes (torn final write).
    pub fn torn_at(after_bytes: u64) -> Self {
        Self {
            after_bytes,
            unsynced: UnsyncedFate::KeptInOrder,
        }
    }

    /// A plan that crashes after `after_bytes` written and loses everything
    /// since the last sync.
    pub fn lose_unsynced_at(after_bytes: u64) -> Self {
        Self {
            after_bytes,
            unsynced: UnsyncedFate::Lost,
        }
    }

    /// A plan that crashes after `after_bytes` written, keeping a seeded
    /// arbitrary subset of the unsynced writes.
    pub fn arbitrary_subset_at(after_bytes: u64, seed: u64) -> Self {
        Self {
            after_bytes,
            unsynced: UnsyncedFate::ArbitrarySubset { seed },
        }
    }

    /// A plan that crashes after `after_bytes` written, tearing the
    /// in-flight write on a `sector`-byte boundary.
    pub fn torn_sector_at(after_bytes: u64, sector: u64) -> Self {
        Self {
            after_bytes,
            unsynced: UnsyncedFate::TornWrite { sector },
        }
    }
}

#[derive(Debug)]
struct JournalEntry {
    offset: u64,
    old: Vec<u8>,
    new: Vec<u8>,
}

#[derive(Debug)]
struct FaultState {
    bytes_written: u64,
    crashed: bool,
    /// Old contents of every range overwritten since the last sync, in write
    /// order, so `UnsyncedFate::Lost` can roll the image back.
    journal: Vec<JournalEntry>,
}

/// A [`Device`] wrapper that simulates a machine crash at a planned point.
///
/// Writes pass through to the inner device immediately; the wrapper records
/// undo information so that, when the crash fires with
/// [`UnsyncedFate::Lost`], every write since the last `sync` is rolled back
/// on the inner device. After the crash every operation fails with
/// [`DeviceError::Crashed`]; the *inner* device then holds exactly the
/// post-crash durable image, ready to be handed to a fresh RVM instance for
/// recovery.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm_storage::{CrashPlan, Device, DeviceError, FaultDevice, MemDevice};
///
/// let inner = Arc::new(MemDevice::with_len(8));
/// let dev = FaultDevice::new(inner.clone(), CrashPlan::torn_at(6));
/// dev.write_at(0, &[1, 2, 3, 4]).unwrap();
/// // This write crosses the 6-byte budget: only its first 2 bytes persist.
/// let err = dev.write_at(4, &[5, 6, 7, 8]).unwrap_err();
/// assert!(matches!(err, DeviceError::Crashed));
/// let mut image = [0u8; 8];
/// inner.read_at(0, &mut image).unwrap();
/// assert_eq!(image, [1, 2, 3, 4, 5, 6, 0, 0]);
/// ```
pub struct FaultDevice {
    inner: Arc<dyn Device>,
    plan: CrashPlan,
    state: Mutex<FaultState>,
}

impl FaultDevice {
    /// Wraps `inner` with the given crash plan.
    pub fn new(inner: Arc<dyn Device>, plan: CrashPlan) -> Self {
        Self {
            inner,
            plan,
            state: Mutex::new(FaultState {
                bytes_written: 0,
                crashed: false,
                journal: Vec::new(),
            }),
        }
    }

    /// Wraps `inner` with a plan that never fires, useful for recording the
    /// total bytes a scenario writes before replaying it with crash points.
    pub fn recording(inner: Arc<dyn Device>) -> Self {
        Self::new(inner, CrashPlan::torn_at(u64::MAX))
    }

    /// Total bytes written through this device so far.
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    /// Returns `true` once the planned crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Returns the wrapped device (the post-crash durable image lives here).
    pub fn inner(&self) -> Arc<dyn Device> {
        self.inner.clone()
    }

    fn crash(&self, state: &mut FaultState) -> DeviceError {
        match self.plan.unsynced {
            UnsyncedFate::Lost => {
                // Roll back in reverse order so overlapping writes restore
                // the pre-sync image exactly.
                while let Some(entry) = state.journal.pop() {
                    // A failure to roll back would leave a *more*
                    // adversarial image, which recovery must tolerate
                    // anyway; ignore it.
                    // lint:allow(device-fallibility): crash simulation builds the torn image
                    let _ = self.inner.write_at(entry.offset, &entry.old);
                }
            }
            UnsyncedFate::ArbitrarySubset { seed } => {
                // Decide each unsynced write's fate up front, then rebuild
                // the image as "pre-sync state + kept writes applied in
                // order". Rolling everything back first (reverse order) and
                // re-applying the kept subset (forward order) gives exactly
                // the image a reordering write cache could expose, even for
                // overlapping writes.
                let mut rng = if seed == 0 { 0x9E3779B97F4A7C15 } else { seed };
                let keep: Vec<bool> = state
                    .journal
                    .iter()
                    .map(|_| {
                        rng ^= rng >> 12;
                        rng ^= rng << 25;
                        rng ^= rng >> 27;
                        rng.wrapping_mul(0x2545F4914F6CDD1D) >> 63 == 1
                    })
                    .collect();
                for entry in state.journal.iter().rev() {
                    // lint:allow(device-fallibility): crash simulation builds the torn image
                    let _ = self.inner.write_at(entry.offset, &entry.old);
                }
                for (entry, kept) in state.journal.iter().zip(&keep) {
                    if *kept {
                        // lint:allow(device-fallibility): crash simulation builds the torn image
                        let _ = self.inner.write_at(entry.offset, &entry.new);
                    }
                }
                state.journal.clear();
            }
            UnsyncedFate::KeptInOrder | UnsyncedFate::TornWrite { .. } => {}
        }
        state.crashed = true;
        DeviceError::Crashed
    }
}

impl Device for FaultDevice {
    fn len(&self) -> Result<u64> {
        if self.state.lock().crashed {
            return Err(DeviceError::Crashed);
        }
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if self.state.lock().crashed {
            return Err(DeviceError::Crashed);
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        let remaining = self.plan.after_bytes.saturating_sub(state.bytes_written);
        let mut persist_len = (data.len() as u64).min(remaining) as usize;
        if (data.len() as u64) > remaining {
            // This is the write in flight at the crash point; a
            // sector-granular fate tears it on a sector boundary instead of
            // mid-byte-stream.
            if let UnsyncedFate::TornWrite { sector } = self.plan.unsynced {
                let sector = sector.max(1) as usize;
                persist_len -= persist_len % sector;
            }
        }

        if persist_len > 0 {
            let mut old = vec![0u8; persist_len];
            self.inner.read_at(offset, &mut old)?;
            self.inner.write_at(offset, &data[..persist_len])?;
            state.bytes_written += persist_len as u64;
            state.journal.push(JournalEntry {
                offset,
                old,
                new: data[..persist_len].to_vec(),
            });
        }

        if (data.len() as u64) > remaining {
            return Err(self.crash(&mut state));
        }
        if state.bytes_written >= self.plan.after_bytes {
            return Err(self.crash(&mut state));
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(DeviceError::Crashed);
        }
        self.inner.sync()?;
        state.journal.clear();
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        if self.state.lock().crashed {
            return Err(DeviceError::Crashed);
        }
        self.inner.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn image(dev: &Arc<MemDevice>) -> Vec<u8> {
        dev.snapshot()
    }

    #[test]
    fn recording_never_crashes() {
        let inner = Arc::new(MemDevice::with_len(1024));
        let dev = FaultDevice::recording(inner);
        for i in 0..100 {
            dev.write_at(i, &[i as u8]).unwrap();
        }
        assert_eq!(dev.bytes_written(), 100);
        assert!(!dev.has_crashed());
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let inner = Arc::new(MemDevice::with_len(8));
        let dev = FaultDevice::new(inner.clone(), CrashPlan::torn_at(3));
        let err = dev.write_at(0, &[1, 2, 3, 4, 5]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        assert_eq!(image(&inner), vec![1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn exact_budget_crashes_after_full_write() {
        let inner = Arc::new(MemDevice::with_len(8));
        let dev = FaultDevice::new(inner.clone(), CrashPlan::torn_at(4));
        let err = dev.write_at(0, &[1, 2, 3, 4]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        assert_eq!(image(&inner), vec![1, 2, 3, 4, 0, 0, 0, 0]);
    }

    #[test]
    fn lost_mode_rolls_back_to_last_sync() {
        let inner = Arc::new(MemDevice::with_len(8));
        let dev = FaultDevice::new(inner.clone(), CrashPlan::lose_unsynced_at(6));
        dev.write_at(0, &[1, 1]).unwrap();
        dev.sync().unwrap();
        dev.write_at(2, &[2, 2]).unwrap();
        // Crossing the budget: both unsynced writes must vanish.
        let err = dev.write_at(4, &[3, 3, 3]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        assert_eq!(image(&inner), vec![1, 1, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn lost_mode_handles_overlapping_writes() {
        let inner = Arc::new(MemDevice::with_len(4));
        // The budget counts every byte written, including pre-sync ones:
        // 4 + 2 + 2 = 8, so the ninth byte (in the final write) crashes.
        let dev = FaultDevice::new(inner.clone(), CrashPlan::lose_unsynced_at(9));
        dev.write_at(0, &[1, 1, 1, 1]).unwrap();
        dev.sync().unwrap();
        dev.write_at(0, &[2, 2]).unwrap();
        dev.write_at(1, &[3, 3]).unwrap();
        let err = dev.write_at(0, &[4, 4]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        assert_eq!(image(&inner), vec![1, 1, 1, 1]);
    }

    #[test]
    fn all_operations_fail_after_crash() {
        let inner = Arc::new(MemDevice::with_len(4));
        let dev = FaultDevice::new(inner, CrashPlan::torn_at(0));
        assert!(dev.write_at(0, &[1]).is_err());
        assert!(dev.has_crashed());
        assert!(matches!(
            dev.read_at(0, &mut [0]),
            Err(DeviceError::Crashed)
        ));
        assert!(matches!(dev.sync(), Err(DeviceError::Crashed)));
        assert!(matches!(dev.len(), Err(DeviceError::Crashed)));
        assert!(matches!(dev.set_len(8), Err(DeviceError::Crashed)));
    }

    #[test]
    fn sync_makes_writes_durable_in_lost_mode() {
        let inner = Arc::new(MemDevice::with_len(4));
        let dev = FaultDevice::new(inner.clone(), CrashPlan::lose_unsynced_at(3));
        dev.write_at(0, &[5, 5]).unwrap();
        dev.sync().unwrap();
        let err = dev.write_at(2, &[6, 6]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        // The synced bytes survive; the post-sync write is rolled back even
        // though one of its bytes was within budget.
        assert_eq!(image(&inner), vec![5, 5, 0, 0]);
    }

    #[test]
    fn torn_write_tears_on_sector_boundary() {
        let inner = Arc::new(MemDevice::with_len(16));
        // Budget 10: the 12-byte write crosses it; with 4-byte sectors only
        // the first two whole sectors (8 bytes) may persist.
        let dev = FaultDevice::new(inner.clone(), CrashPlan::torn_sector_at(10, 4));
        let err = dev.write_at(0, &[7; 12]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        let mut expect = vec![7u8; 8];
        expect.extend_from_slice(&[0; 8]);
        assert_eq!(image(&inner), expect);
    }

    #[test]
    fn torn_write_keeps_earlier_writes_in_order() {
        let inner = Arc::new(MemDevice::with_len(16));
        let dev = FaultDevice::new(inner.clone(), CrashPlan::torn_sector_at(6, 4));
        dev.write_at(0, &[1; 4]).unwrap();
        // Crossing write: 2 bytes of budget remain, under one 4-byte
        // sector, so none of it persists.
        let err = dev.write_at(4, &[2; 4]).unwrap_err();
        assert!(matches!(err, DeviceError::Crashed));
        let mut expect = vec![1u8; 4];
        expect.extend_from_slice(&[0; 12]);
        assert_eq!(image(&inner), expect);
    }

    #[test]
    fn arbitrary_subset_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inner = Arc::new(MemDevice::with_len(8));
            let dev = FaultDevice::new(inner.clone(), CrashPlan::arbitrary_subset_at(8, seed));
            for i in 0..8u64 {
                let _ = dev.write_at(i, &[i as u8 + 1]);
            }
            assert!(dev.has_crashed());
            image(&inner)
        };
        assert_eq!(run(42), run(42));
        // Across many seeds the kept subsets differ (overwhelmingly
        // likely); find two seeds that disagree.
        assert!((1..32u64).any(|s| run(s) != run(s + 100)));
    }

    #[test]
    fn arbitrary_subset_applies_kept_writes_in_order() {
        // Two overlapping writes: whatever the subset, the overlap region
        // must read as one of {old, first, second} consistent with
        // in-order application of the kept subset — never a value the
        // device was never asked to hold.
        for seed in 1..64u64 {
            let inner = Arc::new(MemDevice::with_len(4));
            let dev = FaultDevice::new(inner.clone(), CrashPlan::arbitrary_subset_at(9, seed));
            dev.write_at(0, &[1, 1, 1, 1]).unwrap();
            dev.write_at(0, &[2, 2, 2, 2]).unwrap();
            let _ = dev.write_at(0, &[3]);
            assert!(dev.has_crashed());
            let img = image(&inner);
            // Byte 3 is only touched by writes 1 and 2.
            assert!(
                [0u8, 1, 2].contains(&img[3]),
                "seed {seed}: impossible byte {img:?}"
            );
            // In-order application: if write 2 was kept, byte 1 cannot show
            // write 1's value (2 overwrote it after 1).
            if img[3] == 2 {
                assert!(img[1] == 2, "seed {seed}: reordered overlap {img:?}");
            }
        }
    }

    #[test]
    fn arbitrary_subset_never_touches_synced_writes() {
        for seed in 1..16u64 {
            let inner = Arc::new(MemDevice::with_len(8));
            let dev = FaultDevice::new(inner.clone(), CrashPlan::arbitrary_subset_at(6, seed));
            dev.write_at(0, &[9, 9]).unwrap();
            dev.sync().unwrap();
            dev.write_at(2, &[8, 8]).unwrap();
            let _ = dev.write_at(4, &[7, 7, 7]);
            assert!(dev.has_crashed());
            let img = image(&inner);
            assert_eq!(&img[..2], &[9, 9], "synced prefix must survive");
            assert!(img[2] == 8 || img[2] == 0);
        }
    }
}
