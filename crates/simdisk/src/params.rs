//! Disk parameter sets.

use simclock::SimTime;

/// Mechanical and interface parameters of a simulated disk.
///
/// The seek curve is the usual square-root model: a seek of byte-distance
/// `d` on a disk of capacity `C` costs
/// `seek_min + (seek_max - seek_min) * sqrt(d / C)`, and a zero-distance
/// access costs no seek at all (the head is already there).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Track-to-track (minimum non-zero) seek time.
    pub seek_min: SimTime,
    /// Full-stroke seek time.
    pub seek_max: SimTime,
    /// Spindle speed in revolutions per minute; `0` models a device with no
    /// rotational latency (solid state).
    pub rpm: u32,
    /// Sustained media transfer rate.
    pub transfer_bytes_per_sec: u64,
    /// Fixed overhead charged once per non-empty cache flush (controller
    /// command processing plus the host's synchronous-write path).
    pub controller_overhead: SimTime,
    /// Total capacity used to normalize seek distances.
    pub capacity_bytes: u64,
    /// During a batched cache flush, extents closer than this to the
    /// previous one skip most of the rotational wait (elevator order plus
    /// track buffering lets the controller write sectors as they pass).
    pub near_extent_threshold: u64,
    /// Rotational-latency multiplier for such near extents (0 = free).
    pub near_extent_rotation_factor: f64,
    /// Read-ahead window: a read falling inside the region covered by the
    /// previous read (extended by this many bytes) is served from the
    /// drive's read-ahead buffer and pays transfer time only. Models the
    /// streaming behaviour of sequential scans such as log recovery.
    pub readahead_bytes: u64,
}

impl DiskParams {
    /// Parameters resembling the SCSI disks on the paper's DECstation
    /// 5000/200 (§7.1, RZ55/RZ57 class), calibrated so that a small
    /// sequential log force costs ≈ 17.4 ms as measured in §7.1.2:
    /// 8.3 ms average rotational latency + ~9 ms controller/host overhead
    /// + transfer.
    pub fn circa_1990() -> Self {
        Self {
            seek_min: SimTime::from_millis(2),
            seek_max: SimTime::from_millis(22),
            rpm: 3600,
            transfer_bytes_per_sec: 4_000_000,
            controller_overhead: SimTime::from_micros(8950),
            capacity_bytes: 400 << 20,
            near_extent_threshold: 1 << 20,
            near_extent_rotation_factor: 0.0,
            readahead_bytes: 256 << 10,
        }
    }

    /// A modern NVMe-class device, for what-if ablations: negligible seek
    /// and rotation, gigabytes per second of transfer.
    pub fn nvme_like() -> Self {
        Self {
            seek_min: SimTime::from_micros(2),
            seek_max: SimTime::from_micros(10),
            rpm: 0,
            transfer_bytes_per_sec: 2_000_000_000,
            controller_overhead: SimTime::from_micros(15),
            capacity_bytes: 512 << 30,
            near_extent_threshold: 1 << 20,
            near_extent_rotation_factor: 0.0,
            readahead_bytes: 1 << 20,
        }
    }

    /// Average rotational latency (half a revolution), or zero for
    /// non-rotating devices.
    pub fn rotational_latency(&self) -> SimTime {
        if self.rpm == 0 {
            SimTime::ZERO
        } else {
            // Half a revolution: 60s / rpm / 2.
            SimTime::from_nanos(30_000_000_000 / self.rpm as u64)
        }
    }

    /// Seek time for a head movement of `distance` bytes on a disk of
    /// `capacity` bytes.
    pub fn seek_time(&self, distance: u64, capacity: u64) -> SimTime {
        if distance == 0 {
            return SimTime::ZERO;
        }
        let frac = (distance as f64 / capacity.max(1) as f64).min(1.0);
        let extra = self.seek_max.saturating_sub(self.seek_min);
        self.seek_min + SimTime::from_nanos((extra.as_nanos() as f64 * frac.sqrt()) as u64)
    }

    /// Media transfer time for `len` bytes.
    pub fn transfer_time(&self, len: u64) -> SimTime {
        SimTime::from_nanos(
            (len as u128 * 1_000_000_000 / self.transfer_bytes_per_sec as u128) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotational_latency_matches_rpm() {
        let p = DiskParams::circa_1990();
        let ms = p.rotational_latency().as_millis_f64();
        assert!((8.2..8.5).contains(&ms), "3600 rpm -> ~8.33 ms, got {ms}");
        assert_eq!(DiskParams::nvme_like().rotational_latency(), SimTime::ZERO);
    }

    #[test]
    fn seek_curve_is_monotone_and_bounded() {
        let p = DiskParams::circa_1990();
        let c = p.capacity_bytes;
        assert_eq!(p.seek_time(0, c), SimTime::ZERO);
        let near = p.seek_time(1 << 12, c);
        let mid = p.seek_time(c / 4, c);
        let full = p.seek_time(c, c);
        assert!(near >= p.seek_min);
        assert!(near < mid && mid < full);
        assert_eq!(full, p.seek_max);
        // Distances beyond capacity clamp to a full stroke.
        assert_eq!(p.seek_time(c * 10, c), p.seek_max);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = DiskParams::circa_1990();
        let one = p.transfer_time(4_000_000);
        assert_eq!(one, SimTime::from_secs(1));
        assert_eq!(p.transfer_time(1_000_000), SimTime::from_millis(250));
    }
}
