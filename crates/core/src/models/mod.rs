//! Exhaustive interleaving models of the concurrency protocols.
//!
//! These are loom-style model checks: each protocol is restated as a
//! small state machine per thread over explicitly shared state, and
//! [`explore`](explore::explore) enumerates **every** schedule of the
//! thread steps (with state dedup), checking invariants at each reachable
//! state and flagging deadlocks — which is how a lost wakeup presents —
//! automatically.
//!
//! The real `loom` crate is deliberately not a dependency: the protocols
//! under test span device I/O and multi-lock phases that loom's
//! `UnsafeCell`-tracking model doesn't capture any better than an
//! explicit state machine, and the models here stay dependency-free so
//! they run in every environment (the CI loom job builds them with
//! `RUSTFLAGS="--cfg loom"`; they also build under plain `cfg(test)`).
//!
//! Two protocols are modeled, matching the two PRs that complicated the
//! durability argument:
//!
//! * [`group_model`] — the group-commit leader baton: batch checkpoint,
//!   append loop that may release the core lock inside
//!   `append_with_space`, the single force, and the
//!   `wait_generation`-guarded rollback. The headline theorem is that the
//!   guard is *necessary and sufficient* in the model: with it no
//!   schedule destroys another thread's appended record, and with it
//!   removed the explorer exhibits a schedule that does.
//! * [`epoch_model`] — the `epoch_done` condvar handshake between the
//!   three-phase epoch truncation and `append_with_space` waiters: no
//!   schedule deadlocks (no lost wakeup), every waiter bumps
//!   `wait_generation` before re-deriving state, and breaking the
//!   wait's atomicity (release-then-sleep) is caught as a deadlock.

pub mod epoch_model;
pub mod explore;
pub mod group_model;
