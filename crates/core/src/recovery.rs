//! Crash recovery (§5.1.2).
//!
//! "Crash recovery consists of RVM first reading the log from tail to
//! head, then constructing an in-memory tree of the latest committed
//! changes for each data segment encountered in the log. The trees are
//! then traversed, applying modifications in them to the corresponding
//! external data segment. Finally, the head and tail location information
//! in the log status block is updated to reflect an empty log. The
//! idempotency of recovery is achieved by delaying this step until all
//! other recovery actions are complete."
//!
//! Concretely: the forward scan locates the true tail (first torn record
//! or sequence gap past the durable head); records are then processed
//! newest-first into one [`IntervalMap`] per segment, so the first value
//! seen for any byte — the latest committed one — wins and older values
//! are dropped without being applied.

use std::collections::HashMap;
use std::sync::Arc;

use rvm_storage::Device;

use crate::error::{Result, RvmError};
use crate::log::status::{write_status, StatusBlock};
use crate::log::wal::scan_forward;
use crate::ranges::IntervalMap;
use crate::scrub::{apply_tree_verified, sidecar_name, ApplyContext, SegmentChecksums};
use crate::segment::DeviceResolver;

/// What recovery did, for inspection and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transaction records found in the log.
    pub records_replayed: usize,
    /// Bytes applied to segments (after newest-wins pruning).
    pub bytes_applied: u64,
    /// Segments written to.
    pub segments_updated: usize,
    /// Pad records skipped.
    pub pads_skipped: u64,
    /// Whether the crash interrupted an in-flight epoch truncation (the
    /// status block carried a nonzero epoch boundary). Recovery handles
    /// the span like any other live log prefix — re-applying it is
    /// idempotent — so this is diagnostic only.
    pub interrupted_epoch: bool,
    /// Segment pages recovery touched whose pre-apply image failed
    /// checksum verification (media rot surfaced during replay).
    pub corrupt_pages_detected: u64,
    /// Detected pages left with an exact catalog entry: read-repair
    /// recovered the old image, or the log span rewrote the whole page.
    pub corrupt_pages_repaired: u64,
}

/// Builds the latest-committed-change tree per segment from scanned
/// records, newest record first, so the first value seen for any byte —
/// the latest committed one — wins. Shared by crash recovery and epoch
/// truncation (the paper reused its recovery code the same way).
pub(crate) fn build_latest_trees(
    records: &[(u64, crate::log::record::TxnRecord)],
) -> HashMap<u32, IntervalMap> {
    let mut trees: HashMap<u32, IntervalMap> = HashMap::new();
    for (_, record) in records.iter().rev() {
        for range in &record.ranges {
            trees
                .entry(range.seg.as_u32())
                .or_default()
                .insert_if_uncovered(range.offset, &range.data);
        }
    }
    trees
}

/// Recovery output consumed by [`Rvm::initialize`](crate::Rvm::initialize).
pub(crate) struct Recovered {
    /// Post-recovery status (already written to the device; log empty).
    pub status: StatusBlock,
    /// Segment devices opened during recovery, keyed by raw segment id.
    pub seg_devices: HashMap<u32, Arc<dyn Device>>,
    /// Checksum catalogs opened (or adopted) for those segments, keyed
    /// the same way; empty when checksums are off.
    pub seg_catalogs: HashMap<u32, Arc<SegmentChecksums>>,
    pub report: RecoveryReport,
}

/// Runs crash recovery over the log and returns the recovered state.
/// With `checksums` on, every touched segment's sidecar catalog is opened
/// (or adopted) and the replay applies under checksum scrutiny — see
/// [`apply_tree_verified`] — so the catalog is exact again before the
/// status reset empties the log.
pub(crate) fn recover(
    dev: &Arc<dyn Device>,
    mut status: StatusBlock,
    resolver: &DeviceResolver,
    checksums: bool,
) -> Result<Recovered> {
    let scan = scan_forward(
        dev.as_ref(),
        status.area_len,
        status.head,
        status.seq_at_head,
        None,
    )?;

    // Build the latest-committed-change tree per segment, newest record
    // first.
    let trees = build_latest_trees(&scan.records);

    // Traverse the trees, applying modifications to the external data
    // segments. The verified apply also brings each catalog up to date,
    // and persists it, *before* the status reset below advances the head
    // past the records that produced it (the scrub module's crash
    // ordering invariant).
    let mut seg_devices = HashMap::new();
    let mut seg_catalogs = HashMap::new();
    let mut bytes_applied = 0u64;
    let mut corrupt_pages_detected = 0u64;
    let mut corrupt_pages_repaired = 0u64;
    let mut sorted: Vec<_> = trees.iter().collect();
    sorted.sort_by_key(|(id, _)| **id);
    for (&seg_raw, tree) in sorted {
        let info = status
            .segment_by_id(crate::segment::SegmentId::new(seg_raw))
            .ok_or_else(|| {
                RvmError::BadLog(format!(
                    "log references segment id {seg_raw} absent from the segment table"
                ))
            })?;
        let needed = tree
            .iter()
            .map(|(start, payload)| start + payload.len() as u64)
            .max()
            .unwrap_or(0)
            .max(info.min_len);
        let seg_dev = (resolver)(&info.name, needed)?;
        if seg_dev.len()? < needed {
            seg_dev.set_len(needed)?;
        }
        let catalog = if checksums {
            let side = (resolver)(&sidecar_name(&info.name), 0)?;
            Some(Arc::new(SegmentChecksums::open(
                side,
                &seg_dev,
                seg_dev.len()?,
            )?))
        } else {
            None
        };
        let outcome = apply_tree_verified(
            seg_dev.as_ref(),
            catalog.as_deref(),
            tree,
            ApplyContext::Recovery,
        )?;
        corrupt_pages_detected += outcome.corruptions_detected;
        corrupt_pages_repaired += outcome.corruptions_repaired;
        bytes_applied += tree.total_len();
        if let Some(catalog) = catalog {
            seg_catalogs.insert(seg_raw, catalog);
        }
        seg_devices.insert(seg_raw, seg_dev);
    }

    // Only now reset the status block to an empty log (idempotency). A
    // crash mid-epoch-truncation leaves a nonzero epoch boundary in the
    // status; the scan above already covered that span, so the fields are
    // simply cleared here.
    let report = RecoveryReport {
        records_replayed: scan.records.len(),
        bytes_applied,
        segments_updated: seg_devices.len(),
        pads_skipped: scan.pads,
        interrupted_epoch: status.epoch_end != 0,
        corrupt_pages_detected,
        corrupt_pages_repaired,
    };
    status.head = scan.tail;
    status.tail = scan.tail;
    status.seq_at_head = scan.next_seq;
    status.next_seq = scan.next_seq;
    status.epoch_end = 0;
    status.epoch_next_seq = 0;
    write_status(dev.as_ref(), &mut status)?;

    Ok(Recovered {
        status,
        seg_devices,
        seg_catalogs,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::record::RecordRange;
    use crate::log::status::{format_log, read_status, LOG_AREA_START};
    use crate::log::wal::Wal;
    use crate::segment::{MemResolver, SegmentId, SegmentInfo};
    use rvm_storage::MemDevice;

    fn setup(area_blocks: u64) -> (Arc<dyn Device>, StatusBlock, MemResolver) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::with_len(
            LOG_AREA_START + area_blocks * crate::log::record::LOG_BLOCK,
        ));
        let mut status = format_log(dev.as_ref()).unwrap();
        status.segments.push(SegmentInfo {
            id: SegmentId::new(0),
            name: "segA".to_owned(),
            min_len: 4096,
        });
        status.segments.push(SegmentInfo {
            id: SegmentId::new(1),
            name: "segB".to_owned(),
            min_len: 4096,
        });
        write_status(dev.as_ref(), &mut status).unwrap();
        (dev, status, MemResolver::new())
    }

    fn wal_for(dev: &Arc<dyn Device>, status: &StatusBlock) -> Wal {
        Wal::new(
            dev.clone(),
            status.area_len,
            status.head,
            status.tail,
            status.seq_at_head,
            status.next_seq,
        )
    }

    fn rr(seg: u32, offset: u64, data: &[u8]) -> RecordRange {
        RecordRange {
            seg: SegmentId::new(seg),
            offset,
            data: data.to_vec(),
        }
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let (dev, status, resolver) = setup(64);
        let rec = recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec.report, RecoveryReport::default());
        assert!(resolver.get("segA").is_none(), "no devices touched");
    }

    #[test]
    fn latest_committed_value_wins() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(0, 0, &[1, 1, 1, 1])]).unwrap();
        wal.append_txn(2, &[rr(0, 2, &[2, 2])]).unwrap();
        wal.append_txn(3, &[rr(0, 3, &[3])]).unwrap();
        wal.force().unwrap();

        let rec = recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec.report.records_replayed, 3);
        // Newest-wins pruning applies exactly 4 bytes, not 7.
        assert_eq!(rec.report.bytes_applied, 4);
        let seg = resolver.get("segA").unwrap();
        let mut buf = [0u8; 4];
        seg.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 1, 2, 3]);
    }

    #[test]
    fn multiple_segments_are_applied() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(0, 0, &[7; 8]), rr(1, 100, &[9; 8])])
            .unwrap();
        wal.force().unwrap();
        let rec = recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec.report.segments_updated, 2);
        let mut buf = [0u8; 8];
        resolver
            .get("segB")
            .unwrap()
            .read_at(100, &mut buf)
            .unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn status_is_reset_to_empty_log_and_recovery_is_idempotent() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(0, 0, &[5; 16])]).unwrap();
        wal.force().unwrap();
        let tail = wal.tail();

        let rec = recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec.status.head, tail);
        assert_eq!(rec.status.tail, tail);

        // A second recovery (as if we crashed right after) finds nothing.
        let status2 = read_status(dev.as_ref()).unwrap();
        let rec2 = recover(&dev, status2, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec2.report.records_replayed, 0);
        let seg = resolver.get("segA").unwrap();
        let mut buf = [0u8; 16];
        seg.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [5; 16]);
    }

    #[test]
    fn torn_tail_transaction_is_not_applied() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(0, 0, &[1; 8])]).unwrap();
        let info = wal.append_txn(2, &[rr(0, 0, &[2; 8])]).unwrap();
        // Tear the second record.
        dev.write_at(LOG_AREA_START + info.offset + 50, &[0xFF; 4])
            .unwrap();
        let rec = recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        assert_eq!(rec.report.records_replayed, 1);
        let seg = resolver.get("segA").unwrap();
        let mut buf = [0u8; 8];
        seg.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8], "only the intact transaction is applied");
    }

    #[test]
    fn unknown_segment_id_is_reported() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(9, 0, &[1; 4])]).unwrap();
        wal.force().unwrap();
        let Err(err) = recover(&dev, status, &resolver.into_resolver(), true) else {
            panic!("recovery must fail for an unknown segment id");
        };
        assert!(matches!(err, RvmError::BadLog(_)));
    }

    #[test]
    fn segment_device_grows_to_fit_applied_ranges() {
        let (dev, status, resolver) = setup(64);
        let mut wal = wal_for(&dev, &status);
        wal.append_txn(1, &[rr(0, 100_000, &[3; 50])]).unwrap();
        wal.force().unwrap();
        recover(&dev, status, &resolver.clone().into_resolver(), true).unwrap();
        let seg = resolver.get("segA").unwrap();
        assert!(seg.len().unwrap() >= 100_050);
    }
}
