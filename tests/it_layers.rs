//! Cross-crate flows through the layered packages (§4.1, §8): allocator +
//! loader + nesting + distribution composed over one or more RVM
//! instances, including crash/recovery interactions between layers.

mod common {
    include!("lib.rs");
}

use common::World;
use rvm::{CommitMode, RegionDescriptor, TxnMode, PAGE_SIZE};
use rvm_alloc::RvmHeap;
use rvm_dist::{Coordinator, GlobalTxnId, Outcome, Subordinate, Update};
use rvm_loader::Loader;
use rvm_nest::NestedTxn;

#[test]
fn allocator_inside_nested_transactions() {
    let world = World::new(2 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("heap", 0, 16 * PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let heap = RvmHeap::format(&region, &mut txn).unwrap();
    txn.commit(CommitMode::Flush).unwrap();

    // A nested transaction allocating in a child, then aborting the
    // child: the heap structure must roll back with it.
    let before = heap.stats(&region).unwrap();
    let mut ntxn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
    ntxn.enter();
    // Child-level allocation via explicit writes through the nest layer
    // is not supported (the heap takes a raw Transaction), so exercise
    // the equivalent: a child whose writes are heap-metadata-like and are
    // undone on child abort.
    ntxn.write(&region, 4096, &[0xEE; 128]).unwrap();
    ntxn.abort_child().unwrap();
    ntxn.commit(CommitMode::Flush).unwrap();
    assert_eq!(heap.stats(&region).unwrap(), before);
    assert_eq!(region.read_vec(4096, 4).unwrap(), vec![0; 4]);

    // And a committed allocation in a plain transaction survives reboot.
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    let a = heap.alloc(&region, &mut txn, 256).unwrap();
    region.write(&mut txn, a, &[0xCD; 256]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    drop(rvm);

    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("heap", 0, 16 * PAGE_SIZE))
        .unwrap();
    let heap = RvmHeap::open(&region).unwrap();
    assert_eq!(heap.stats(&region).unwrap().allocations, 1);
    assert_eq!(region.read_vec(a, 256).unwrap(), vec![0xCD; 256]);
}

#[test]
fn loader_plus_heap_full_lifecycle_with_crash() {
    let world = World::new(4 << 20);
    let ptr;
    {
        let rvm = world.boot();
        let mut loader = Loader::open(&rvm, "map").unwrap();
        let seg = loader.load(&rvm, "store", 16 * PAGE_SIZE).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&seg.region, &mut txn).unwrap();
        let a = heap.alloc(&seg.region, &mut txn, 64).unwrap();
        seg.region.write(&mut txn, a, b"layered!").unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        ptr = seg.ptr_to(a);
        std::mem::forget(rvm); // crash
    }
    let rvm = world.boot();
    let mut loader = Loader::open(&rvm, "map").unwrap();
    let seg = loader.load(&rvm, "store", 16 * PAGE_SIZE).unwrap();
    RvmHeap::open(&seg.region).unwrap();
    assert_eq!(loader.read_ptr(ptr, 8).unwrap(), b"layered!");
}

#[test]
fn distributed_commit_across_three_nodes_with_node_crash() {
    let worlds: Vec<World> = (0..3).map(|_| World::new(2 << 20)).collect();
    let coord_world = World::new(2 << 20);

    // Round 1: all prepared, coordinator commits, but node 2 crashes
    // before phase 2 reaches it.
    {
        let nodes: Vec<Subordinate> = worlds
            .iter()
            .map(|w| Subordinate::new(w.boot(), PAGE_SIZE).unwrap())
            .collect();
        let coord = Coordinator::new(coord_world.boot()).unwrap();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.prepare(
                    GlobalTxnId(7),
                    &[Update {
                        offset: 0,
                        data: format!("node{i}").into_bytes(),
                    }]
                )
                .unwrap(),
                rvm_dist::Vote::Yes
            );
        }
        // Durable decision, then phase 2 for nodes 0 and 1 only.
        let outcome = coord.run(GlobalTxnId(7), &[]).unwrap();
        assert_eq!(outcome, Outcome::Commit);
        nodes[0].global_commit(GlobalTxnId(7)).unwrap();
        nodes[1].global_commit(GlobalTxnId(7)).unwrap();
        for node in nodes {
            std::mem::forget(node);
        }
        std::mem::forget(coord);
    }

    // Round 2: everyone reboots; node 2 resolves through the
    // coordinator's durable decision log.
    let coord = Coordinator::new(coord_world.boot()).unwrap();
    for (i, world) in worlds.iter().enumerate() {
        let node = Subordinate::new(world.boot(), PAGE_SIZE).unwrap();
        node.recover_with(|gid| coord.decision(gid)).unwrap();
        assert!(node.in_doubt().is_empty(), "node {i}");
        assert_eq!(
            node.data().read_vec(0, 5).unwrap(),
            format!("node{i}").into_bytes(),
            "node {i} kept the committed update"
        );
    }
}

#[test]
fn nested_transaction_over_loader_segments() {
    let world = World::new(2 << 20);
    let rvm = world.boot();
    let mut loader = Loader::open(&rvm, "map").unwrap();
    let a = loader.load(&rvm, "segA", PAGE_SIZE).unwrap();
    let b = loader.load(&rvm, "segB", PAGE_SIZE).unwrap();

    let mut txn = NestedTxn::begin(&rvm, TxnMode::Restore).unwrap();
    txn.write(&a.region, 0, b"to-A").unwrap();
    txn.enter();
    txn.write(&b.region, 0, b"to-B").unwrap();
    txn.commit_child().unwrap();
    txn.enter();
    txn.write(&b.region, 64, b"doomed").unwrap();
    txn.abort_child().unwrap();
    txn.commit(CommitMode::Flush).unwrap();

    assert_eq!(a.region.read_vec(0, 4).unwrap(), b"to-A");
    assert_eq!(b.region.read_vec(0, 4).unwrap(), b"to-B");
    assert_eq!(b.region.read_vec(64, 6).unwrap(), vec![0; 6]);
}

#[test]
fn simpledb_and_rvm_agree_on_recovered_contents() {
    // The related-work comparator (§9) and RVM store the same key-value
    // updates; both must recover them, by their different mechanisms.
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    let ckpt = Arc::new(MemDevice::with_len(64 * 1024));
    let dlog = Arc::new(MemDevice::with_len(64 * 1024));
    {
        let db = simpledb::SimpleDb::open(ckpt.clone(), dlog.clone()).unwrap();
        for i in 0..10u32 {
            db.put(format!("k{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
    }
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm.map(&RegionDescriptor::new("kv", 0, PAGE_SIZE)).unwrap();
        for i in 0..10u32 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.put_u32(&mut txn, i as u64 * 4, i).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm);
    }

    let db = simpledb::SimpleDb::open(ckpt, dlog).unwrap();
    let rvm = world.boot();
    let region = rvm.map(&RegionDescriptor::new("kv", 0, PAGE_SIZE)).unwrap();
    for i in 0..10u32 {
        assert_eq!(db.get(format!("k{i}").as_bytes()).unwrap(), i.to_le_bytes());
        assert_eq!(region.get_u32(i as u64 * 4).unwrap(), i);
    }
}

#[test]
fn logtool_reads_a_live_application_log() {
    let world = World::new(1 << 20);
    {
        let rvm = world.boot();
        let region = rvm
            .map(&RegionDescriptor::new("app", 0, PAGE_SIZE))
            .unwrap();
        for i in 0..4u64 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.put_u64(&mut txn, 8 * i, i).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm);
    }
    let inspector = rvm_logtool::LogInspector::open(world.log.clone()).unwrap();
    assert_eq!(inspector.records().unwrap().len(), 4);
    let history = inspector.history("app", 16, 8).unwrap();
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].data, 2u64.to_le_bytes());
}

#[test]
fn full_stack_metadata_server_lifecycle() {
    // Everything together: loader-assigned segment, recoverable heap,
    // hash map for directory lookup, ring log for the audit trail, GC
    // heap for object storage — built, crashed, recovered, verified.
    use rvm_alloc::RvmHeap;
    use rvm_ds::{RecoverableMap, RingLog};
    use rvm_gc::PersistentHeap;

    let world = World::new(16 << 20);
    let (map_base, ring_base);
    {
        let rvm = world.boot();
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        let seg = loader.load(&rvm, "volume", 64 * PAGE_SIZE).unwrap();
        let objheap = PersistentHeap::open(&rvm, "objects", 128 * 1024).unwrap();

        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&seg.region, &mut txn).unwrap();
        let map = RecoverableMap::create(&seg.region, &heap, &mut txn, 16).unwrap();
        map_base = map.base();
        let ring_space = heap
            .alloc(&seg.region, &mut txn, RingLog::footprint(8, 32))
            .unwrap();
        let ring = RingLog::create(&seg.region, &mut txn, ring_space, 8, 32).unwrap();
        ring_base = ring.base();

        // A file object in the GC heap, indexed by name in the map, with
        // an audit record.
        let file = objheap.alloc(&mut txn, &[], b"file contents v1").unwrap();
        objheap.set_root(&mut txn, 0, file).unwrap();
        map.put(
            &seg.region,
            &heap,
            &mut txn,
            b"/etc/passwd",
            &0u64.to_le_bytes(), // root slot index
        )
        .unwrap();
        ring.append(&seg.region, &mut txn, b"create /etc/passwd")
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        // Collect garbage in the object heap, then crash.
        objheap.collect(&rvm).unwrap();
        std::mem::forget(rvm);
    }

    let rvm = world.boot();
    let mut loader = Loader::open(&rvm, "loadmap").unwrap();
    let seg = loader.load(&rvm, "volume", 64 * PAGE_SIZE).unwrap();
    RvmHeap::open(&seg.region).unwrap();
    let map = RecoverableMap::open(&seg.region, map_base).unwrap();
    let ring = RingLog::open(&seg.region, ring_base).unwrap();
    let objheap = PersistentHeap::open(&rvm, "objects", 128 * 1024).unwrap();

    let slot = map.get(&seg.region, b"/etc/passwd").unwrap().unwrap();
    let slot = u64::from_le_bytes(slot.try_into().unwrap());
    let file = objheap.root(slot).unwrap();
    assert_eq!(objheap.payload(file).unwrap(), b"file contents v1");
    let audit = ring.tail(&seg.region).unwrap();
    assert_eq!(&audit[0].1[..18], b"create /etc/passwd");
}
