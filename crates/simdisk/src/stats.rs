//! Cumulative operation counters for a simulated disk.

/// Counters accumulated over the lifetime of a [`SimDisk`](crate::SimDisk).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of `read_at` calls.
    pub reads: u64,
    /// Number of `write_at` calls.
    pub writes: u64,
    /// Number of `sync` calls (including empty ones).
    pub syncs: u64,
    /// Coalesced dirty extents charged across all `sync` calls. A group
    /// commit that appends N transactions contiguously and forces once
    /// shows up as one sync and one extent, not N.
    pub sync_extents: u64,
    /// Syncs submitted while the mechanism was still busy on a previous
    /// operation (queued commands): these skip the controller overhead and
    /// the sequential-first-extent rotational wait. A pipelined log writer
    /// shows up here; a strictly serial force loop never does.
    pub overlapped_syncs: u64,
    /// Number of non-zero-distance head movements.
    pub seeks: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl DiskStats {
    /// Difference between two snapshots of the same disk's stats.
    pub fn delta_since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            syncs: self.syncs - earlier.syncs,
            sync_extents: self.sync_extents - earlier.sync_extents,
            overlapped_syncs: self.overlapped_syncs - earlier.overlapped_syncs,
            seeks: self.seeks - earlier.seeks,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = DiskStats {
            reads: 10,
            writes: 20,
            syncs: 3,
            sync_extents: 7,
            overlapped_syncs: 2,
            seeks: 5,
            bytes_read: 1000,
            bytes_written: 2000,
        };
        let b = DiskStats {
            reads: 4,
            writes: 8,
            syncs: 1,
            sync_extents: 2,
            overlapped_syncs: 1,
            seeks: 2,
            bytes_read: 400,
            bytes_written: 800,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.writes, 12);
        assert_eq!(d.syncs, 2);
        assert_eq!(d.sync_extents, 5);
        assert_eq!(d.overlapped_syncs, 1);
        assert_eq!(d.seeks, 3);
        assert_eq!(d.bytes_read, 600);
        assert_eq!(d.bytes_written, 1200);
    }
}
