// Known-good fixture for the unlogged-write pass: raw writes preceded
// by a set_range declaration in the same function, plus read-only and
// helper-mediated uses. Zero findings expected.

fn declared_deref_write(txn: &mut Transaction, region: &Region) -> Result<()> {
    let base = region.base_ptr();
    txn.set_range_ptr(region, base, 8)?;
    unsafe {
        *base = 1;
    }
    Ok(())
}

fn logged_helper_write(txn: &mut Transaction, region: &Region) -> Result<()> {
    region.put_u64(txn, 0, 42)
}

fn read_only_use(region: &Region) -> u8 {
    let base = region.base_ptr();
    unsafe { *base }
}

fn modify_declares(txn: &mut Transaction, region: &Region, src: &[u8]) -> Result<()> {
    let base = region.base_ptr();
    txn.modify(region, 0, src.len() as u64)?;
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), base, src.len());
    }
    Ok(())
}
