//! A minimal Rust lexer.
//!
//! `rvm-lint` analyzes source *tokens*, not an AST: the container has no
//! `syn`, and none of the four passes needs type information — they need
//! token shapes (`.lock()`, `let _ =`, `*p =`) plus enough item structure
//! to attribute a site to a function. The lexer therefore handles exactly
//! the lexical constructs that can hide or fake a token match — comments
//! (nested), string/char/byte/raw literals, and lifetimes — and treats
//! everything else as identifiers or single-character punctuation.
//! Multi-character operators are recognized at the analysis layer from
//! adjacent punctuation tokens.

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including `self`, `fn`, `pub`, ...).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// String/char/byte/numeric literal. The text is kept verbatim.
    Literal,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// `true` if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// `true` if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// An inline suppression comment: `// lint:allow(pass-name): reason`.
///
/// Suppresses findings of that pass on the same line or the next
/// non-comment line.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    pub line: u32,
    pub pass: String,
}

/// Lexer output: tokens plus inline-allow directives found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<InlineAllow>,
}

impl Lexed {
    /// `true` if `pass` is suppressed on `line` (directive on the same
    /// line or the line immediately above).
    pub fn allowed(&self, pass: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.pass == pass && (a.line == line || a.line + 1 == line))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated constructs consume to end of input rather
/// than erroring: the linter must degrade gracefully on any tree.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `i` past a quoted literal body (after the opening quote),
    // honoring backslash escapes; returns with `i` past the close quote.
    fn skip_quoted(b: &[char], mut i: usize, line: &mut u32, quote: char) -> usize {
        while i < b.len() {
            match b[i] {
                '\\' => i += 2,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                c if c == quote => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                if let Some(rest) = text.trim().strip_prefix("lint:allow(") {
                    if let Some(end) = rest.find(')') {
                        out.allows.push(InlineAllow {
                            line,
                            pass: rest[..end].trim().to_string(),
                        });
                    }
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i = skip_quoted(&b, i + 1, &mut line, '"');
                out.toks.push(Tok {
                    kind: Kind::Literal,
                    text: "\"\"".to_string(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime vs char literal. `'a` followed by a non-quote
                // is a lifetime; `'a'`, `'\n'`, `'\u{1F600}'` are chars.
                let next = b.get(i + 1).copied().unwrap_or(' ');
                if is_ident_start(next) && b.get(i + 2) != Some(&'\'') {
                    let start = i;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: Kind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start_line = line;
                    i = skip_quoted(&b, i + 1, &mut line, '\'');
                    out.toks.push(Tok {
                        kind: Kind::Literal,
                        text: "''".to_string(),
                        line: start_line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: r"", r#""#, b"", br#""#, c"".
                if i < b.len() && matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb") {
                    let mut j = i;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        let start_line = line;
                        // Scan for closing quote + same number of hashes.
                        // Raw strings (any `r` in the prefix) take no
                        // escapes; `b""`/`c""` do.
                        let raw = text.contains('r');
                        j += 1;
                        loop {
                            if j >= b.len() {
                                break;
                            }
                            match b[j] {
                                '\n' => {
                                    line += 1;
                                    j += 1;
                                }
                                '\\' if !raw => j += 2,
                                '"' => {
                                    let mut k = j + 1;
                                    let mut h = 0;
                                    while h < hashes && b.get(k) == Some(&'#') {
                                        h += 1;
                                        k += 1;
                                    }
                                    if h == hashes {
                                        j = k;
                                        break;
                                    }
                                    j += 1;
                                }
                                _ => j += 1,
                            }
                        }
                        i = j;
                        out.toks.push(Tok {
                            kind: Kind::Literal,
                            text: "\"\"".to_string(),
                            line: start_line,
                        });
                        continue;
                    }
                }
                out.toks.push(Tok {
                    kind: Kind::Ident,
                    text,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                // Fractional part — but never consume `..` (range syntax).
                if i < b.len() && b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: Kind::Literal,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: Kind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn a() {\n  b.lock();\n}");
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "a", "(", ")", "{", "b", ".", "lock", "(", ")", ";", "}"]
        );
        assert_eq!(l.toks[5].line, 2);
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let l = lex("let s = \"a.lock()\"; let c = '{'; let r = r#\"x.lock()\"# ;");
        assert!(!l.toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; }");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2
        );
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == Kind::Literal && t.text == "''"));
    }

    #[test]
    fn nested_block_comments_and_inline_allow() {
        let l = lex("/* a /* b */ c */ x.sync(); // lint:allow(device-fallibility): simulated\n");
        assert!(l.toks.iter().any(|t| t.is_ident("sync")));
        assert!(l.allowed("device-fallibility", 1));
        assert!(l.allowed("device-fallibility", 2));
        assert!(!l.allowed("lock-order", 1));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { a[i] = 1.5; }");
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        assert!(texts.contains(&"1.5"));
    }
}
