//! The per-region page vector (paper Figure 7).
//!
//! "The page vector is loosely analogous to a VM page table: the entry for
//! a page contains a dirty bit and an uncommitted reference count." We add
//! one field the paper did not need: an *unflushed* count tracking pages
//! whose committed changes still sit in the no-flush spool rather than the
//! on-disk log. Writing such a page to its segment would persist part of a
//! transaction whose log record could still be lost, breaking atomicity,
//! so incremental truncation treats unflushed like uncommitted (it can
//! clear the condition itself by flushing the spool).

use crate::options::PAGE_SIZE;

/// State of one page of a mapped region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageEntry {
    /// The page holds committed changes not yet applied to the segment.
    pub dirty: bool,
    /// The page is being written out by incremental truncation.
    pub reserved: bool,
    /// Number of active transactions with `set_range`s touching the page.
    pub uncommitted: u32,
    /// Number of spooled (committed, unflushed) records touching the page.
    pub unflushed: u32,
}

/// Modification status for every page of one region.
#[derive(Debug, Clone)]
pub struct PageVector {
    pages: Vec<PageEntry>,
}

impl PageVector {
    /// Creates a vector for a region of `region_len` bytes.
    pub fn new(region_len: u64) -> Self {
        let n = region_len.div_ceil(PAGE_SIZE) as usize;
        Self {
            pages: vec![PageEntry::default(); n],
        }
    }

    /// Number of pages tracked.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page indices spanned by the byte range `[offset, offset + len)`.
    pub fn page_span(offset: u64, len: u64) -> std::ops::Range<usize> {
        if len == 0 {
            let p = (offset / PAGE_SIZE) as usize;
            return p..p;
        }
        let first = (offset / PAGE_SIZE) as usize;
        let last = ((offset + len - 1) / PAGE_SIZE) as usize;
        first..last + 1
    }

    /// Read access to a page entry.
    pub fn entry(&self, page: usize) -> &PageEntry {
        &self.pages[page]
    }

    /// Mutable access to a page entry.
    pub fn entry_mut(&mut self, page: usize) -> &mut PageEntry {
        &mut self.pages[page]
    }

    /// Increments the uncommitted count of `page`.
    pub fn inc_uncommitted(&mut self, page: usize) {
        self.pages[page].uncommitted += 1;
    }

    /// Decrements the uncommitted count of `page`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the count would underflow, which indicates an
    /// accounting bug.
    pub fn dec_uncommitted(&mut self, page: usize) {
        debug_assert!(self.pages[page].uncommitted > 0);
        self.pages[page].uncommitted = self.pages[page].uncommitted.saturating_sub(1);
    }

    /// Increments the unflushed count of `page`.
    pub fn inc_unflushed(&mut self, page: usize) {
        self.pages[page].unflushed += 1;
    }

    /// Decrements the unflushed count of `page`.
    pub fn dec_unflushed(&mut self, page: usize) {
        debug_assert!(self.pages[page].unflushed > 0);
        self.pages[page].unflushed = self.pages[page].unflushed.saturating_sub(1);
    }

    /// Marks every page of the byte range dirty.
    // Only unit tests use the range form today; the library marks pages
    // individually from precomputed page sets.
    #[cfg_attr(not(test), expect(dead_code))]
    pub fn mark_dirty(&mut self, offset: u64, len: u64) {
        for p in Self::page_span(offset, len) {
            self.mark_page_dirty(p);
        }
    }

    /// Marks one page dirty.
    pub fn mark_page_dirty(&mut self, page: usize) {
        self.pages[page].dirty = true;
    }

    /// Clears the dirty bit of every page whose committed changes are known
    /// to be applied (those with no unflushed spool records). Called after
    /// a full epoch truncation.
    pub fn clear_dirty_where_flushed(&mut self) {
        for entry in &mut self.pages {
            if entry.unflushed == 0 {
                entry.dirty = false;
            }
        }
    }

    /// Iterates indices of dirty pages.
    pub fn dirty_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dirty)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_rounds_up() {
        assert_eq!(PageVector::new(PAGE_SIZE * 3).num_pages(), 3);
        assert_eq!(PageVector::new(PAGE_SIZE * 3 + 1).num_pages(), 4);
        assert_eq!(PageVector::new(0).num_pages(), 0);
    }

    #[test]
    fn page_span_arithmetic() {
        assert_eq!(PageVector::page_span(0, 1), 0..1);
        assert_eq!(PageVector::page_span(0, PAGE_SIZE), 0..1);
        assert_eq!(PageVector::page_span(0, PAGE_SIZE + 1), 0..2);
        assert_eq!(PageVector::page_span(PAGE_SIZE - 1, 2), 0..2);
        assert_eq!(PageVector::page_span(PAGE_SIZE * 5, 10), 5..6);
        assert!(PageVector::page_span(100, 0).is_empty());
    }

    #[test]
    fn counters_and_dirty_bits() {
        let mut pv = PageVector::new(PAGE_SIZE * 4);
        pv.inc_uncommitted(1);
        pv.inc_uncommitted(1);
        pv.dec_uncommitted(1);
        assert_eq!(pv.entry(1).uncommitted, 1);

        pv.mark_dirty(PAGE_SIZE - 1, 2); // spans pages 0 and 1
        assert!(pv.entry(0).dirty && pv.entry(1).dirty);
        assert!(!pv.entry(2).dirty);
        assert_eq!(pv.dirty_pages().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn clear_dirty_respects_unflushed() {
        let mut pv = PageVector::new(PAGE_SIZE * 3);
        pv.mark_dirty(0, PAGE_SIZE * 3);
        pv.inc_unflushed(1);
        pv.clear_dirty_where_flushed();
        assert!(!pv.entry(0).dirty);
        assert!(pv.entry(1).dirty, "unflushed page stays dirty");
        assert!(!pv.entry(2).dirty);
        pv.dec_unflushed(1);
        pv.clear_dirty_where_flushed();
        assert!(!pv.entry(1).dirty);
    }
}
