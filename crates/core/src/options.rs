//! Configuration: initialization options, transaction modes, and the
//! runtime tuning knobs exposed through `set_options` (§4.2, Figure 4d).

use std::sync::Arc;

use rvm_storage::Device;

use crate::retry::{thread_sleeper, BackoffSleeper, RetryPolicy};
use crate::segment::{file_resolver, DeviceResolver};

/// Region page size; mappings must be multiples of this and page-aligned
/// (§4.1).
pub const PAGE_SIZE: u64 = 4096;

/// How a transaction treats old values (the `restore_mode` flag of
/// `begin_transaction`, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnMode {
    /// Old values are captured on `set_range`, so the transaction can
    /// abort.
    #[default]
    Restore,
    /// The application promises never to abort; RVM skips the old-value
    /// copy on `set_range`, saving time and space (§5.1.1).
    NoRestore,
}

/// Permanence of a commit (the `commit_mode` flag of `end_transaction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// The new-value and commit records are forced to the log before the
    /// commit returns: full permanence.
    #[default]
    Flush,
    /// A "lazy" commit: records are spooled in memory and reach the log on
    /// the next `flush` — bounded persistence (§4.2), and the only mode in
    /// which inter-transaction optimizations apply (§5.2).
    NoFlush,
}

/// How a mapped region's committed image is brought into memory.
///
/// The paper's implementation copied regions in at map time, at the cost
/// of startup latency (§3.2: "a process' recoverable memory must be read
/// in en masse rather than being paged in on demand"), and planned "an
/// optional Mach external pager to copy data on demand". Without kernel
/// help, this library implements the on-demand option one level up:
/// pages are fetched from the external data segment on first access
/// through the safe API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// Copy the whole region at map time (the paper's implementation).
    #[default]
    Eager,
    /// Fetch each page from the segment on first access. The pointer
    /// API ([`Region::base_ptr`](crate::Region::base_ptr)) bypasses the
    /// fetch, so on-demand regions must be accessed through the safe API
    /// or explicitly warmed with
    /// [`Region::prefetch`](crate::Region::prefetch).
    OnDemand,
}

/// Which truncation mechanism reclaims log space (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TruncationMode {
    /// Epoch truncation: the crash-recovery procedure applied to the log.
    #[default]
    Epoch,
    /// Incremental truncation: dirty pages written from VM via the page
    /// vector and page queue, falling back to epoch truncation when
    /// blocked.
    Incremental,
}

/// Deliberate protocol mutations for the `rvm-crashmc` model checker.
///
/// The checker's acceptance test is double-sided: the real tree must show
/// **zero** committed-prefix violations, and a tree with one of these
/// switches flipped must show **at least one** — proving the checker can
/// actually see the bug class each switch reintroduces. They are not part
/// of the public API surface and carry no stability promise.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationHooks {
    /// Group-commit leader skips the batch's single `wal.force()` but
    /// still reports success: commits are acknowledged without being
    /// durable. The checker must find a crash image where an acked
    /// transaction is missing after recovery.
    pub skip_group_force: bool,
    /// Group-commit leader skips the WAL-cursor rollback after a batch
    /// failure, leaving cursors pointing past records that were never
    /// forced.
    pub skip_group_rollback: bool,
}

/// Runtime tuning knobs (`set_options`).
///
/// All fields are scalars, so the struct is `Copy`: the commit path reads
/// it by value instead of cloning through the lock.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Truncation triggers when log utilization exceeds this fraction.
    pub truncation_threshold: f64,
    /// Truncation mechanism to use.
    pub truncation_mode: TruncationMode,
    /// Run threshold-triggered truncation on a background thread rather
    /// than inline on the committing thread.
    pub background_truncation: bool,
    /// Coalesce duplicate/overlapping/adjacent `set_range`s (§5.2).
    pub intra_optimization: bool,
    /// Let newer no-flush commits subsume older unflushed records (§5.2).
    pub inter_optimization: bool,
    /// Auto-flush the no-flush spool when it exceeds this many bytes.
    pub spool_max_bytes: u64,
    /// Bytes of log space an incremental-truncation run tries to reclaim.
    pub incremental_reclaim_bytes: u64,
    /// Detect mutations of mapped regions that no `set_range` declared —
    /// the §4.2 contract violation whose "result is disastrous" (§6).
    /// Each `begin_transaction` snapshots the mapped regions and each
    /// commit diffs memory against the declared write set; mutations
    /// outside it are reported as
    /// [`CheckViolation`](crate::CheckViolation)s through `query`.
    /// Expensive (a full region copy per active transaction): a debugging
    /// mode, off by default.
    pub check_unlogged_writes: bool,
    /// Flag overlapping `set_range` declarations from concurrent
    /// uncommitted transactions — the data-race class the paper leaves to
    /// the serializability layer above RVM (§3.1). Off by default.
    pub check_range_conflicts: bool,
    /// Panic the offending thread when a check violation is detected,
    /// instead of only recording it. For tests and debugging sessions
    /// that want to die at the first contract breach.
    pub panic_on_violation: bool,
    /// Amortize log forces across concurrent flush-mode commits (group
    /// commit): committers publish their serialized records to a queue,
    /// one leader appends every waiting transaction and issues a single
    /// force for the whole group. Durable-log order still matches commit
    /// order; with one committer the path degenerates to a batch of one.
    pub group_commit: bool,
    /// Maximum transactions appended under one group-commit force.
    pub group_commit_max_txns: usize,
    /// Maximum record bytes appended under one group-commit force; a
    /// batch closes before the transaction that would exceed it.
    pub group_commit_max_bytes: u64,
    /// Accumulation window in microseconds: a new leader waits this long
    /// before draining the queue so concurrent committers can join its
    /// batch. Zero (the default) batches only what lock contention
    /// naturally accumulates, adding no latency to solo commits.
    pub group_commit_wait_us: u64,
    /// Pipeline group-commit batches through double-buffered staging
    /// memory and asynchronous device submission: a leader encodes its
    /// batch into one of two staging buffers and *submits* the writes and
    /// the force without waiting, so the next leader can fill and submit
    /// the other buffer while the first force is still in flight. Commit
    /// acknowledgements still wait for the batch's own force — durability
    /// semantics are unchanged; only the serialization and the device time
    /// overlap. Requires `group_commit`; off by default.
    pub log_pipeline: bool,
    /// Maintain a per-page checksum catalog beside each data segment:
    /// updated whenever truncation or recovery writes segment pages,
    /// verified when mapped regions load pages and by scrub passes. The
    /// detection layer the repair ladder (mirror read-repair → log
    /// reconstruction → quarantine) rests on. On by default.
    pub segment_checksums: bool,
    /// Run a background scrubber thread that periodically walks segment
    /// pages against the checksum catalog and repairs what it can — the
    /// media analog of background truncation. Off by default.
    pub background_scrub: bool,
    /// Milliseconds between background scrub passes.
    pub scrub_interval_ms: u64,
    /// Deliberate protocol mutations for the crash-state model checker;
    /// all off in real use. See [`MutationHooks`].
    #[doc(hidden)]
    pub mutation: MutationHooks,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            truncation_threshold: 0.5,
            truncation_mode: TruncationMode::Epoch,
            background_truncation: false,
            intra_optimization: true,
            inter_optimization: true,
            spool_max_bytes: 4 << 20,
            incremental_reclaim_bytes: 256 << 10,
            check_unlogged_writes: false,
            check_range_conflicts: false,
            panic_on_violation: false,
            group_commit: true,
            group_commit_max_txns: 64,
            group_commit_max_bytes: 8 << 20,
            group_commit_wait_us: 0,
            log_pipeline: false,
            segment_checksums: true,
            background_scrub: false,
            scrub_interval_ms: 200,
            mutation: MutationHooks::default(),
        }
    }
}

/// Options for [`Rvm::initialize`](crate::Rvm::initialize).
///
/// The log is specified here (the `options_desc` argument of the paper's
/// `initialize`); segments are resolved by name through the
/// [`DeviceResolver`].
#[derive(Clone)]
pub struct Options {
    /// The log device.
    pub log: Arc<dyn Device>,
    /// Resolves segment names to devices.
    pub resolver: DeviceResolver,
    /// Initial tuning (changeable later via `set_options`).
    pub tuning: Tuning,
    /// If the log device is not yet an RVM log, format it (equivalent to
    /// calling `create_log` first).
    pub create_if_empty: bool,
    /// Bounded retry of transient device faults at every touchpoint.
    pub retry: RetryPolicy,
    /// How retry backoff sleeps. Defaults to a real thread sleep; tests
    /// inject a closure that charges a simulated clock so retries are
    /// instant.
    pub retry_sleeper: BackoffSleeper,
}

impl Options {
    /// Options using the given log device and the default file-backed
    /// segment resolver.
    pub fn new(log: Arc<dyn Device>) -> Self {
        Self {
            log,
            resolver: file_resolver(),
            tuning: Tuning::default(),
            create_if_empty: false,
            retry: RetryPolicy::default(),
            retry_sleeper: thread_sleeper(),
        }
    }

    /// Replaces the segment resolver.
    pub fn resolver(mut self, resolver: DeviceResolver) -> Self {
        self.resolver = resolver;
        self
    }

    /// Replaces the tuning block.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Formats the log automatically if the device is not an RVM log.
    pub fn create_if_empty(mut self) -> Self {
        self.create_if_empty = true;
        self
    }

    /// Replaces the transient-fault retry policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the backoff sleeper (tests: charge a simulated clock).
    pub fn retry_sleeper(mut self, sleeper: BackoffSleeper) -> Self {
        self.retry_sleeper = sleeper;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;

    #[test]
    fn defaults_match_paper_expectations() {
        let t = Tuning::default();
        assert!(t.intra_optimization && t.inter_optimization);
        assert_eq!(t.truncation_mode, TruncationMode::Epoch);
        assert!((0.0..1.0).contains(&t.truncation_threshold));
        assert_eq!(TxnMode::default(), TxnMode::Restore);
        assert_eq!(CommitMode::default(), CommitMode::Flush);
        assert!(t.group_commit, "group commit is on by default");
        assert!(t.group_commit_max_txns >= 1);
        assert!(t.group_commit_max_bytes > 0);
        assert_eq!(t.group_commit_wait_us, 0, "solo commits pay no window");
        assert!(!t.log_pipeline, "pipelined log writer is opt-in");
        assert!(t.segment_checksums, "media detection is on by default");
        assert!(!t.background_scrub, "scrubber is opt-in");
        assert!(t.scrub_interval_ms > 0);
    }

    #[test]
    fn tuning_is_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Tuning>();
    }

    #[test]
    fn options_builder_chains() {
        let opts = Options::new(Arc::new(MemDevice::with_len(1 << 20)))
            .tuning(Tuning {
                truncation_threshold: 0.8,
                ..Tuning::default()
            })
            .create_if_empty();
        assert!(opts.create_if_empty);
        assert_eq!(opts.tuning.truncation_threshold, 0.8);
    }

    #[test]
    fn retry_builder_chains() {
        let opts = Options::new(Arc::new(MemDevice::with_len(1 << 20)))
            .retry_policy(RetryPolicy::none())
            .retry_sleeper(Arc::new(|_| {}));
        assert_eq!(opts.retry.max_retries, 0);
        let defaults = Options::new(Arc::new(MemDevice::with_len(1 << 20)));
        assert_eq!(defaults.retry, RetryPolicy::default());
    }
}
