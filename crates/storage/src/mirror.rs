//! Media-failure resilience by mirroring (the layer *below* RVM in the
//! paper's Figure 2).
//!
//! §3.1: "Our final simplification was to factor out resiliency to media
//! failure. Standard techniques such as mirroring can be used to achieve
//! such resiliency. Our expectation is that this functionality will most
//! likely be implemented in the device driver of a mirrored disk."
//!
//! [`MirrorDevice`] is that device driver: writes go to every replica,
//! reads are served by the first replica that still answers, and a
//! replica that fails is dropped from service (fail-stop). RVM stacks on
//! top unchanged — exactly the layering the paper prescribes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::{Device, DeviceError, Result};

struct Replica {
    dev: Arc<dyn Device>,
    alive: AtomicBool,
}

/// A device mirrored over two or more replicas.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm_storage::{Device, MemDevice, MirrorDevice};
///
/// let a = Arc::new(MemDevice::with_len(1024));
/// let b = Arc::new(MemDevice::with_len(1024));
/// let mirror = MirrorDevice::new(vec![a.clone(), b.clone()]).unwrap();
/// mirror.write_at(0, b"both").unwrap();
/// let mut buf = [0u8; 4];
/// b.read_at(0, &mut buf).unwrap();
/// assert_eq!(&buf, b"both");
/// ```
pub struct MirrorDevice {
    replicas: Vec<Replica>,
}

impl MirrorDevice {
    /// Builds a mirror over the replicas, which must all have the same
    /// length.
    pub fn new(devices: Vec<Arc<dyn Device>>) -> Result<MirrorDevice> {
        if devices.is_empty() {
            return Err(DeviceError::Io(std::io::Error::other(
                "a mirror needs at least one replica",
            )));
        }
        let len = devices[0].len()?;
        for dev in &devices[1..] {
            if dev.len()? != len {
                return Err(DeviceError::Io(std::io::Error::other(
                    "mirror replicas must have equal lengths",
                )));
            }
        }
        Ok(MirrorDevice {
            replicas: devices
                .into_iter()
                .map(|dev| Replica {
                    dev,
                    alive: AtomicBool::new(true),
                })
                .collect(),
        })
    }

    /// Number of replicas still in service.
    pub fn alive_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive.load(Ordering::Acquire))
            .count()
    }

    /// Marks a replica as failed (for tests and administrative action);
    /// it will no longer be read from or written to.
    pub fn fail_replica(&self, index: usize) {
        if let Some(r) = self.replicas.get(index) {
            r.alive.store(false, Ordering::Release);
        }
    }

    fn for_each_alive(&self, mut f: impl FnMut(&Arc<dyn Device>) -> Result<()>) -> Result<()> {
        let mut any = false;
        for replica in &self.replicas {
            if !replica.alive.load(Ordering::Acquire) {
                continue;
            }
            match f(&replica.dev) {
                Ok(()) => any = true,
                Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    device_len,
                }) => {
                    // Bounds errors are deterministic, not media failures.
                    return Err(DeviceError::OutOfBounds {
                        offset,
                        len,
                        device_len,
                    });
                }
                Err(_) => replica.alive.store(false, Ordering::Release),
            }
        }
        if any {
            Ok(())
        } else {
            Err(DeviceError::Io(std::io::Error::other(
                "all mirror replicas have failed",
            )))
        }
    }
}

impl Device for MirrorDevice {
    fn len(&self) -> Result<u64> {
        for replica in &self.replicas {
            if replica.alive.load(Ordering::Acquire) {
                if let Ok(len) = replica.dev.len() {
                    return Ok(len);
                }
                replica.alive.store(false, Ordering::Release);
            }
        }
        Err(DeviceError::Io(std::io::Error::other(
            "all mirror replicas have failed",
        )))
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        for replica in &self.replicas {
            if !replica.alive.load(Ordering::Acquire) {
                continue;
            }
            match replica.dev.read_at(offset, buf) {
                Ok(()) => return Ok(()),
                Err(DeviceError::OutOfBounds {
                    offset,
                    len,
                    device_len,
                }) => {
                    return Err(DeviceError::OutOfBounds {
                        offset,
                        len,
                        device_len,
                    })
                }
                Err(_) => replica.alive.store(false, Ordering::Release),
            }
        }
        Err(DeviceError::Io(std::io::Error::other(
            "all mirror replicas have failed",
        )))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.for_each_alive(|dev| dev.write_at(offset, data))
    }

    fn sync(&self) -> Result<()> {
        self.for_each_alive(|dev| dev.sync())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.for_each_alive(|dev| dev.set_len(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrashPlan, FaultDevice, MemDevice};

    fn two_way() -> (MirrorDevice, Arc<MemDevice>, Arc<MemDevice>) {
        let a = Arc::new(MemDevice::with_len(1024));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![a.clone(), b.clone()]).unwrap();
        (m, a, b)
    }

    #[test]
    fn writes_reach_every_replica() {
        let (m, a, b) = two_way();
        m.write_at(10, b"mirrored").unwrap();
        m.sync().unwrap();
        let mut buf = [0u8; 8];
        a.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"mirrored");
        b.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"mirrored");
    }

    #[test]
    fn reads_survive_a_replica_failure() {
        let (m, _a, _b) = two_way();
        m.write_at(0, b"safe").unwrap();
        m.fail_replica(0);
        assert_eq!(m.alive_replicas(), 1);
        let mut buf = [0u8; 4];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"safe");
        // Writes keep going to the survivor.
        m.write_at(8, b"more").unwrap();
        assert_eq!(m.alive_replicas(), 1);
    }

    #[test]
    fn failing_replica_is_dropped_automatically() {
        let a: Arc<dyn Device> = Arc::new(FaultDevice::new(
            Arc::new(MemDevice::with_len(1024)),
            CrashPlan::torn_at(8),
        ));
        let b = Arc::new(MemDevice::with_len(1024));
        let m = MirrorDevice::new(vec![a, b.clone()]).unwrap();
        m.write_at(0, &[1; 8]).unwrap(); // replica 0 crashes here
        assert_eq!(m.alive_replicas(), 1);
        m.write_at(8, &[2; 8]).unwrap();
        let mut buf = [0u8; 8];
        b.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
    }

    #[test]
    fn all_replicas_failed_is_an_error() {
        let (m, _a, _b) = two_way();
        m.fail_replica(0);
        m.fail_replica(1);
        assert!(m.write_at(0, &[1]).is_err());
        assert!(m.read_at(0, &mut [0]).is_err());
        assert!(m.len().is_err());
    }

    #[test]
    fn bounds_errors_are_not_media_failures() {
        let (m, _a, _b) = two_way();
        assert!(matches!(
            m.write_at(2000, &[1]),
            Err(DeviceError::OutOfBounds { .. })
        ));
        assert_eq!(m.alive_replicas(), 2, "no replica dropped");
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let a: Arc<dyn Device> = Arc::new(MemDevice::with_len(1024));
        let b: Arc<dyn Device> = Arc::new(MemDevice::with_len(2048));
        assert!(MirrorDevice::new(vec![a, b]).is_err());
        assert!(MirrorDevice::new(vec![]).is_err());
    }
}
