//! A miniature TPC-A bank on recoverable memory — the workload of the
//! paper's section 7.1, as an application.
//!
//! Accounts are 128-byte records; every transfer updates two accounts,
//! the branch balance, and appends an audit record, all in one atomic
//! transaction. An invalid transfer aborts and leaves no trace.
//!
//! Run with: `cargo run -p rvm-examples --bin bank`

use std::sync::Arc;

use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, Transaction, TxnMode, PAGE_SIZE};
use rvm_storage::MemDevice;

const ACCOUNTS: u64 = 64;
const ACCOUNT_SIZE: u64 = 128;
const AUDIT_BASE: u64 = ACCOUNTS * ACCOUNT_SIZE;
const AUDIT_SIZE: u64 = 64;
const BRANCH_OFF: u64 = AUDIT_BASE + 64 * AUDIT_SIZE;

struct Bank {
    rvm: Rvm,
    region: Region,
}

#[derive(Debug)]
enum BankError {
    InsufficientFunds {
        account: u64,
        balance: i64,
        amount: i64,
    },
    Rvm(rvm::RvmError),
}

impl From<rvm::RvmError> for BankError {
    fn from(e: rvm::RvmError) -> Self {
        BankError::Rvm(e)
    }
}

impl Bank {
    fn open() -> rvm::Result<Bank> {
        let rvm = Rvm::initialize(
            Options::new(Arc::new(MemDevice::with_len(4 << 20)))
                .create_if_empty()
                .resolver(rvm::segment::MemResolver::new().into_resolver()),
        )?;
        let region = rvm.map(&RegionDescriptor::new("bank", 0, 4 * PAGE_SIZE))?;
        Ok(Bank { rvm, region })
    }

    fn balance(&self, account: u64) -> rvm::Result<i64> {
        Ok(self.region.get_u64(account * ACCOUNT_SIZE)? as i64)
    }

    fn set_balance(&self, txn: &mut Transaction, account: u64, v: i64) -> rvm::Result<()> {
        self.region.put_u64(txn, account * ACCOUNT_SIZE, v as u64)
    }

    fn audit(&self, txn: &mut Transaction, serial: u64, text: &str) -> rvm::Result<()> {
        let slot = AUDIT_BASE + (serial % 64) * AUDIT_SIZE;
        let mut rec = [0u8; AUDIT_SIZE as usize];
        let bytes = text.as_bytes();
        rec[..bytes.len().min(64)].copy_from_slice(&bytes[..bytes.len().min(64)]);
        self.region.write(txn, slot, &rec)
    }

    /// The atomic transfer: all four updates or none.
    fn transfer(&self, serial: u64, from: u64, to: u64, amount: i64) -> Result<(), BankError> {
        let mut txn = self.rvm.begin_transaction(TxnMode::Restore)?;
        let from_balance = self.balance(from)?;
        if from_balance < amount {
            // Abort: the old values come back, nothing reaches the log.
            txn.abort()?;
            return Err(BankError::InsufficientFunds {
                account: from,
                balance: from_balance,
                amount,
            });
        }
        self.set_balance(&mut txn, from, from_balance - amount)?;
        let to_balance = self.balance(to)?;
        self.set_balance(&mut txn, to, to_balance + amount)?;
        let branch = self.region.get_u64(BRANCH_OFF)?;
        self.region.put_u64(&mut txn, BRANCH_OFF, branch + 1)?;
        self.audit(&mut txn, serial, &format!("xfer {amount} {from}->{to}"))?;
        txn.commit(CommitMode::Flush)?;
        Ok(())
    }
}

fn main() {
    let bank = Bank::open().expect("open bank");

    // Seed two accounts.
    {
        let mut txn = bank.rvm.begin_transaction(TxnMode::Restore).unwrap();
        bank.set_balance(&mut txn, 1, 1000).unwrap();
        bank.set_balance(&mut txn, 2, 50).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    println!(
        "opening balances: acct1={} acct2={}",
        bank.balance(1).unwrap(),
        bank.balance(2).unwrap()
    );

    bank.transfer(1, 1, 2, 300).expect("transfer succeeds");
    println!(
        "after 300 transfer: acct1={} acct2={}",
        bank.balance(1).unwrap(),
        bank.balance(2).unwrap()
    );

    match bank.transfer(2, 2, 1, 10_000) {
        Err(BankError::InsufficientFunds {
            account,
            balance,
            amount,
        }) => {
            println!("rejected: account {account} holds {balance}, cannot send {amount}");
        }
        Err(BankError::Rvm(e)) => panic!("unexpected RVM error: {e}"),
        Ok(()) => panic!("transfer should have been rejected"),
    }
    println!(
        "after rejected transfer: acct1={} acct2={} (unchanged)",
        bank.balance(1).unwrap(),
        bank.balance(2).unwrap()
    );

    let q = bank.rvm.query();
    println!(
        "stats: {} committed, {} aborted, {} bytes logged",
        q.stats.txns_committed, q.stats.txns_aborted, q.stats.bytes_logged
    );
    assert_eq!(bank.balance(1).unwrap(), 700);
    assert_eq!(bank.balance(2).unwrap(), 350);
}
