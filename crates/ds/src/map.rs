//! A recoverable chained hash map.

use rvm::{CommitMode, Region, Result, Rvm, RvmError, Transaction, TxnMode};
use rvm_alloc::RvmHeap;

const MAGIC: u64 = 0x5256_4D44_534D_5031; // "RVMDSMP1"
const NIL: u64 = 0;

/// Map super-block, stored at a heap allocation whose offset the caller
/// keeps (typically in a root slot or at a fixed region offset).
mod hdr {
    pub const MAGIC: u64 = 0;
    pub const BUCKETS_OFF: u64 = 8;
    pub const NUM_BUCKETS: u64 = 16;
    pub const LEN: u64 = 24;
    pub const SIZE: u64 = 32;
}

/// Entry layout: `next u64 | klen u32 | vlen u32 | key | value`.
mod ent {
    pub const NEXT: u64 = 0;
    pub const KLEN: u64 = 8;
    pub const VLEN: u64 = 12;
    pub const HEADER: u64 = 16;
}

/// FNV-1a, stable across runs (the table layout is persistent).
fn hash(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Usage statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Number of entries.
    pub len: u64,
    /// Number of buckets.
    pub buckets: u64,
    /// Length of the longest chain.
    pub longest_chain: u64,
}

/// A hash map whose entire state lives in recoverable memory.
///
/// The struct holds only the super-block offset; all data is in the
/// region, so reopening after a restart is just [`RecoverableMap::open`]
/// with the same offset.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm::segment::MemResolver;
/// use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
/// use rvm_alloc::RvmHeap;
/// use rvm_ds::RecoverableMap;
/// use rvm_storage::MemDevice;
///
/// let rvm = Rvm::initialize(
///     Options::new(Arc::new(MemDevice::with_len(1 << 20)))
///         .resolver(MemResolver::new().into_resolver())
///         .create_if_empty(),
/// )
/// .unwrap();
/// let region = rvm.map(&RegionDescriptor::new("meta", 0, 32 * PAGE_SIZE)).unwrap();
/// let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
/// let heap = RvmHeap::format(&region, &mut txn).unwrap();
/// let map = RecoverableMap::create(&region, &heap, &mut txn, 64).unwrap();
/// map.put(&region, &heap, &mut txn, b"volume-17", b"/vicepa/17").unwrap();
/// txn.commit(CommitMode::Flush).unwrap();
/// assert_eq!(map.get(&region, b"volume-17").unwrap().unwrap(), b"/vicepa/17");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RecoverableMap {
    /// Offset of the super-block within the region.
    base: u64,
}

impl RecoverableMap {
    /// Allocates and initializes a map with `num_buckets` buckets.
    pub fn create(
        region: &Region,
        heap: &RvmHeap,
        txn: &mut Transaction,
        num_buckets: u64,
    ) -> Result<RecoverableMap> {
        let num_buckets = num_buckets.max(1);
        let base = heap.alloc(region, txn, hdr::SIZE)?;
        let buckets = heap.alloc(region, txn, num_buckets * 8)?;
        region.write(txn, buckets, &vec![0u8; (num_buckets * 8) as usize])?;
        region.put_u64(txn, base + hdr::MAGIC, MAGIC)?;
        region.put_u64(txn, base + hdr::BUCKETS_OFF, buckets)?;
        region.put_u64(txn, base + hdr::NUM_BUCKETS, num_buckets)?;
        region.put_u64(txn, base + hdr::LEN, 0)?;
        Ok(RecoverableMap { base })
    }

    /// Opens the map whose super-block sits at `base`.
    pub fn open(region: &Region, base: u64) -> Result<RecoverableMap> {
        if region.get_u64(base + hdr::MAGIC)? != MAGIC {
            return Err(RvmError::BadMapping(
                "no recoverable map at this offset".to_owned(),
            ));
        }
        Ok(RecoverableMap { base })
    }

    /// Offset of the super-block (store this in a root).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of entries.
    pub fn len(&self, region: &Region) -> Result<u64> {
        region.get_u64(self.base + hdr::LEN)
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self, region: &Region) -> Result<bool> {
        Ok(self.len(region)? == 0)
    }

    fn bucket_slot(&self, region: &Region, key: &[u8]) -> Result<u64> {
        let buckets = region.get_u64(self.base + hdr::BUCKETS_OFF)?;
        let n = region.get_u64(self.base + hdr::NUM_BUCKETS)?;
        Ok(buckets + (hash(key) % n) * 8)
    }

    fn entry_key(&self, region: &Region, entry: u64) -> Result<Vec<u8>> {
        let klen = region.get_u32(entry + ent::KLEN)? as u64;
        region.read_vec(entry + ent::HEADER, klen)
    }

    fn entry_value(&self, region: &Region, entry: u64) -> Result<Vec<u8>> {
        let klen = region.get_u32(entry + ent::KLEN)? as u64;
        let vlen = region.get_u32(entry + ent::VLEN)? as u64;
        region.read_vec(entry + ent::HEADER + klen, vlen)
    }

    /// Looks a key up.
    pub fn get(&self, region: &Region, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let slot = self.bucket_slot(region, key)?;
        let mut entry = region.get_u64(slot)?;
        while entry != NIL {
            if self.entry_key(region, entry)? == key {
                return Ok(Some(self.entry_value(region, entry)?));
            }
            entry = region.get_u64(entry + ent::NEXT)?;
        }
        Ok(None)
    }

    /// Inserts or replaces a key's value inside `txn`. Returns `true` if
    /// the key was new.
    pub fn put(
        &self,
        region: &Region,
        heap: &RvmHeap,
        txn: &mut Transaction,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool> {
        // Replace in place when the key exists (freeing the old entry).
        let existed = self.remove(region, heap, txn, key)?;
        let slot = self.bucket_slot(region, key)?;
        let head = region.get_u64(slot)?;
        let entry = heap.alloc(
            region,
            txn,
            ent::HEADER + key.len() as u64 + value.len() as u64,
        )?;
        let mut image = Vec::with_capacity((ent::HEADER as usize) + key.len() + value.len());
        image.extend_from_slice(&head.to_le_bytes());
        image.extend_from_slice(&(key.len() as u32).to_le_bytes());
        image.extend_from_slice(&(value.len() as u32).to_le_bytes());
        image.extend_from_slice(key);
        image.extend_from_slice(value);
        region.write(txn, entry, &image)?;
        region.put_u64(txn, slot, entry)?;
        let len = region.get_u64(self.base + hdr::LEN)?;
        region.put_u64(txn, self.base + hdr::LEN, len + 1)?;
        Ok(!existed)
    }

    /// Removes a key inside `txn`; returns `true` if it was present.
    pub fn remove(
        &self,
        region: &Region,
        heap: &RvmHeap,
        txn: &mut Transaction,
        key: &[u8],
    ) -> Result<bool> {
        let slot = self.bucket_slot(region, key)?;
        let mut prev = NIL;
        let mut entry = region.get_u64(slot)?;
        while entry != NIL {
            let next = region.get_u64(entry + ent::NEXT)?;
            if self.entry_key(region, entry)? == key {
                if prev == NIL {
                    region.put_u64(txn, slot, next)?;
                } else {
                    region.put_u64(txn, prev + ent::NEXT, next)?;
                }
                heap.free(region, txn, entry)?;
                let len = region.get_u64(self.base + hdr::LEN)?;
                region.put_u64(txn, self.base + hdr::LEN, len.saturating_sub(1))?;
                return Ok(true);
            }
            prev = entry;
            entry = next;
        }
        Ok(false)
    }

    /// Collects all `(key, value)` pairs (unordered).
    pub fn entries(&self, region: &Region) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let buckets = region.get_u64(self.base + hdr::BUCKETS_OFF)?;
        let n = region.get_u64(self.base + hdr::NUM_BUCKETS)?;
        let mut out = Vec::new();
        for b in 0..n {
            let mut entry = region.get_u64(buckets + b * 8)?;
            while entry != NIL {
                out.push((
                    self.entry_key(region, entry)?,
                    self.entry_value(region, entry)?,
                ));
                entry = region.get_u64(entry + ent::NEXT)?;
            }
        }
        Ok(out)
    }

    /// Chain statistics.
    pub fn stats(&self, region: &Region) -> Result<MapStats> {
        let buckets = region.get_u64(self.base + hdr::BUCKETS_OFF)?;
        let n = region.get_u64(self.base + hdr::NUM_BUCKETS)?;
        let mut longest = 0u64;
        for b in 0..n {
            let mut chain = 0u64;
            let mut entry = region.get_u64(buckets + b * 8)?;
            while entry != NIL {
                chain += 1;
                entry = region.get_u64(entry + ent::NEXT)?;
            }
            longest = longest.max(chain);
        }
        Ok(MapStats {
            len: self.len(region)?,
            buckets: n,
            longest_chain: longest,
        })
    }
}

/// Convenience: one-call transactional put with flush commit.
pub fn put_durably(
    rvm: &Rvm,
    region: &Region,
    heap: &RvmHeap,
    map: &RecoverableMap,
    key: &[u8],
    value: &[u8],
) -> Result<()> {
    let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
    map.put(region, heap, &mut txn, key, value)?;
    txn.commit(CommitMode::Flush)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{Options, RegionDescriptor, PAGE_SIZE};
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn world() -> (Arc<MemDevice>, MemResolver) {
        (Arc::new(MemDevice::with_len(4 << 20)), MemResolver::new())
    }

    fn boot(log: &Arc<MemDevice>, segs: &MemResolver) -> Rvm {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap()
    }

    fn setup(rvm: &Rvm) -> (Region, RvmHeap, RecoverableMap) {
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, 64 * PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&region, &mut txn).unwrap();
        let map = RecoverableMap::create(&region, &heap, &mut txn, 32).unwrap();
        // Keep the super-block offset discoverable at region offset…
        // tests simply remember it.
        txn.commit(CommitMode::Flush).unwrap();
        (region, heap, map)
    }

    #[test]
    fn put_get_remove() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let (region, heap, map) = setup(&rvm);
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        assert!(map.put(&region, &heap, &mut txn, b"alpha", b"1").unwrap());
        assert!(map.put(&region, &heap, &mut txn, b"beta", b"2").unwrap());
        // Replacement reports the key as already present.
        assert!(!map.put(&region, &heap, &mut txn, b"alpha", b"one").unwrap());
        txn.commit(CommitMode::Flush).unwrap();

        assert_eq!(map.get(&region, b"alpha").unwrap().unwrap(), b"one");
        assert_eq!(map.get(&region, b"beta").unwrap().unwrap(), b"2");
        assert!(map.get(&region, b"gamma").unwrap().is_none());
        assert_eq!(map.len(&region).unwrap(), 2);

        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        assert!(map.remove(&region, &heap, &mut txn, b"alpha").unwrap());
        assert!(!map.remove(&region, &heap, &mut txn, b"alpha").unwrap());
        txn.commit(CommitMode::Flush).unwrap();
        assert!(map.get(&region, b"alpha").unwrap().is_none());
        assert_eq!(map.len(&region).unwrap(), 1);
    }

    #[test]
    fn survives_crash_and_reopen() {
        let (log, segs) = world();
        let base;
        {
            let rvm = boot(&log, &segs);
            let (region, heap, map) = setup(&rvm);
            base = map.base();
            for i in 0..40u32 {
                put_durably(
                    &rvm,
                    &region,
                    &heap,
                    &map,
                    format!("key-{i}").as_bytes(),
                    &i.to_le_bytes(),
                )
                .unwrap();
            }
            std::mem::forget(rvm);
        }
        let rvm = boot(&log, &segs);
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, 64 * PAGE_SIZE))
            .unwrap();
        let map = RecoverableMap::open(&region, base).unwrap();
        assert_eq!(map.len(&region).unwrap(), 40);
        for i in 0..40u32 {
            assert_eq!(
                map.get(&region, format!("key-{i}").as_bytes())
                    .unwrap()
                    .unwrap(),
                i.to_le_bytes()
            );
        }
    }

    #[test]
    fn aborted_mutations_leave_no_trace() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let (region, heap, map) = setup(&rvm);
        put_durably(&rvm, &region, &heap, &map, b"keep", b"me").unwrap();

        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        map.put(&region, &heap, &mut txn, b"drop", b"me").unwrap();
        map.remove(&region, &heap, &mut txn, b"keep").unwrap();
        txn.abort().unwrap();

        assert_eq!(map.get(&region, b"keep").unwrap().unwrap(), b"me");
        assert!(map.get(&region, b"drop").unwrap().is_none());
        assert_eq!(map.len(&region).unwrap(), 1);
    }

    #[test]
    fn chains_handle_collisions() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        // A single bucket forces every key onto one chain.
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, 64 * PAGE_SIZE))
            .unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&region, &mut txn).unwrap();
        let map = RecoverableMap::create(&region, &heap, &mut txn, 1).unwrap();
        for i in 0..20u32 {
            map.put(
                &region,
                &heap,
                &mut txn,
                format!("k{i}").as_bytes(),
                &[i as u8],
            )
            .unwrap();
        }
        // Remove from the middle of the chain.
        map.remove(&region, &heap, &mut txn, b"k10").unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        let stats = map.stats(&region).unwrap();
        assert_eq!(stats.buckets, 1);
        assert_eq!(stats.len, 19);
        assert_eq!(stats.longest_chain, 19);
        assert!(map.get(&region, b"k10").unwrap().is_none());
        assert_eq!(map.get(&region, b"k9").unwrap().unwrap(), vec![9]);
        assert_eq!(map.get(&region, b"k19").unwrap().unwrap(), vec![19]);
    }

    #[test]
    fn entries_lists_everything() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let (region, heap, map) = setup(&rvm);
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        for i in 0..10u8 {
            map.put(&region, &heap, &mut txn, &[i], &[i, i]).unwrap();
        }
        txn.commit(CommitMode::Flush).unwrap();
        let mut entries = map.entries(&region).unwrap();
        entries.sort();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[3], (vec![3u8], vec![3u8, 3u8]));
    }

    #[test]
    fn open_rejects_garbage() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let region = rvm
            .map(&RegionDescriptor::new("meta", 0, PAGE_SIZE))
            .unwrap();
        assert!(RecoverableMap::open(&region, 128).is_err());
    }
}
