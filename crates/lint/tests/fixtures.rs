//! Fixture conviction tests: each pass must convict its known-bad
//! fixture (with the expected functions named) and come back clean on
//! the matching known-good fixture.
//!
//! The fixture sources live under `tests/fixtures/` — a directory the
//! workspace glob does not build, so the deliberately-broken code never
//! touches `cargo build`. They are linted here as plain source text,
//! exactly how `lint_workspace` consumes real files.

use std::collections::BTreeSet;

use rvm_lint::config::LockOrder;
use rvm_lint::findings::Finding;
use rvm_lint::items::FileModel;
use rvm_lint::passes;

/// A miniature canonical order covering the locks the fixtures touch.
const FIXTURE_ORDER: &str = r#"
[[lock]]
rank = 10
name = "core"
patterns = ["core.lock"]
desc = "instance core"

[[lock]]
rank = 20
name = "regions"
patterns = ["regions.read", "regions.write"]
desc = "region table"

[[lock]]
rank = 25
name = "check"
patterns = ["check.lock"]
desc = "checker state"

[[lock]]
rank = 30
name = "mem-lock"
patterns = ["mem_lock.read", "mem_lock.write"]
desc = "per-region memory"

[[lock]]
rank = 40
name = "page-vector"
patterns = ["page_vector.lock"]
desc = "per-region page vector"
"#;

fn model(name: &str, src: &str) -> FileModel {
    FileModel::build(name, src, false)
}

fn functions(findings: &[Finding]) -> BTreeSet<String> {
    findings.iter().map(|f| f.function.clone()).collect()
}

fn assert_clean(pass: &str, findings: &[Finding]) {
    assert!(
        findings.is_empty(),
        "{pass}: clean fixture should produce no findings, got: {:#?}",
        findings
    );
}

#[test]
fn lockorder_fixture_convicts_and_clean_passes() {
    let order = LockOrder::parse(FIXTURE_ORDER).expect("fixture order parses");

    let bad = model(
        "fixtures/lockorder_bad.rs",
        include_str!("fixtures/lockorder_bad.rs"),
    );
    let findings = passes::lockorder::run(&order, &[&bad]);
    let fns = functions(&findings);
    for expected in [
        "check_then_core",
        "core_reentrant",
        "vector_then_helper",
        "if_let_extends_guard",
        "undeclared_lock",
    ] {
        assert!(
            fns.contains(expected),
            "lock-order: expected a finding in `{expected}`, got {fns:?}\n{findings:#?}"
        );
    }
    // The helper itself acquires in isolation — legal; only the caller
    // holding `page_vector` across it is a violation.
    assert!(!fns.contains("helper_touches_memory"), "{findings:#?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("via call") || f.message.contains("helper_touches_memory")),
        "lock-order: the `vector_then_helper` conviction should name the call edge: {findings:#?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.function == "core_reentrant" && f.message.contains("re-acqui")),
        "lock-order: reentrancy should be called out: {findings:#?}"
    );

    let good = model(
        "fixtures/lockorder_good.rs",
        include_str!("fixtures/lockorder_good.rs"),
    );
    assert_clean("lock-order", &passes::lockorder::run(&order, &[&good]));
}

#[test]
fn fallibility_fixture_convicts_and_clean_passes() {
    let bad = model(
        "fixtures/fallibility_bad.rs",
        include_str!("fixtures/fallibility_bad.rs"),
    );
    let findings = passes::fallibility::run(&[&bad]);
    let fns = functions(&findings);
    let expected: BTreeSet<String> = [
        "discard_let_underscore",
        "discard_ok",
        "discard_bare_statement",
        "unwrap_outside_tests",
        "expect_outside_tests",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(
        fns, expected,
        "device-fallibility: every discard shape convicts exactly once\n{findings:#?}"
    );

    let good = model(
        "fixtures/fallibility_good.rs",
        include_str!("fixtures/fallibility_good.rs"),
    );
    assert_clean("device-fallibility", &passes::fallibility::run(&[&good]));
}

#[test]
fn unlogged_fixture_convicts_and_clean_passes() {
    let bad = model(
        "fixtures/unlogged_bad.rs",
        include_str!("fixtures/unlogged_bad.rs"),
    );
    let findings = passes::unlogged::run(&[&bad]);
    let fns = functions(&findings);
    for expected in [
        "deref_write_without_set_range",
        "bulk_copy_without_set_range",
        "ptr_write_without_set_range",
    ] {
        assert!(
            fns.contains(expected),
            "unlogged-write: expected a finding in `{expected}`, got {fns:?}\n{findings:#?}"
        );
    }

    let good = model(
        "fixtures/unlogged_good.rs",
        include_str!("fixtures/unlogged_good.rs"),
    );
    assert_clean("unlogged-write", &passes::unlogged::run(&[&good]));
}

#[test]
fn panic_surface_fixture_convicts_and_clean_passes() {
    let bad = model(
        "fixtures/panics_bad.rs",
        include_str!("fixtures/panics_bad.rs"),
    );
    let findings = passes::panics::run(&[&bad]);
    // The inventory reports the function *containing* each site, so the
    // private helpers reached from pub roots appear under their own
    // names.
    let fns = functions(&findings);
    for expected in [
        "api_unwraps",
        "private_helper_expects",
        "api_indexes",
        "dispatch_on_kind",
    ] {
        assert!(
            fns.iter().any(|f| f.contains(expected)),
            "panic-surface: expected `{expected}` in the inventory, got {fns:?}\n{findings:#?}"
        );
    }

    let good = model(
        "fixtures/panics_good.rs",
        include_str!("fixtures/panics_good.rs"),
    );
    assert_clean("panic-surface", &passes::panics::run(&[&good]));
}

#[test]
fn fixture_ids_are_stable_across_line_shifts() {
    // Prepending a comment line moves every site down one line; finding
    // IDs must not change (the ratchet baseline depends on this).
    let src = include_str!("fixtures/fallibility_bad.rs");
    let shifted = format!("// shifted by one line\n{src}");
    let a = passes::fallibility::run(&[&model("fixtures/fallibility_bad.rs", src)]);
    let b = passes::fallibility::run(&[&model("fixtures/fallibility_bad.rs", &shifted)]);
    let ids_a: Vec<&str> = a.iter().map(|f| f.id.as_str()).collect();
    let ids_b: Vec<&str> = b.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(ids_a, ids_b, "IDs must be line-independent");
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.line + 1 == y.line),
        "lines themselves should shift"
    );
}
