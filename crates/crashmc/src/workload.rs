//! Traced workloads: run a real [`Rvm`] instance over
//! [`TraceDevice`]-wrapped in-memory devices and capture a [`Trace`].
//!
//! Setup (log formatting, region mapping) happens with recording
//! disabled: those writes are part of each device's durable *base
//! image*, not of the execution under test. Recording is enabled just
//! before the transaction script runs; each flush-mode commit samples
//! the recorder length when it returns — the *ack point* after which a
//! crash must preserve the transaction.
//!
//! Every workload writes disjoint cells with values distinct from the
//! (all-zero) base, which is what lets the multi-threaded oracle decide
//! per-transaction presence by looking at bytes.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use parking_lot::Mutex;
use rvm::segment::DeviceResolver;
use rvm::{
    CommitMode, MutationHooks, Options, Region, RegionDescriptor, Rvm, Tuning, TxnMode, PAGE_SIZE,
};
use rvm_storage::{Device, MemDevice, TraceDevice, TraceRecorder};

use crate::{xorshift64, DeviceBase, SegWrite, Trace, TxnSpec};

/// The canned workload shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Three threads × three rounds of barrier-aligned flush commits:
    /// exercises the group-commit leader baton. Multi-threaded
    /// (disjoint-cell oracle).
    GroupCommit,
    /// Flush commits with explicit epoch truncations interleaved:
    /// exercises the three-phase truncation crash windows (segment
    /// application, status advance).
    Truncation,
    /// No-flush commits spooled and flushed in batches, with a tail of
    /// never-flushed transactions that a crash may legally drop.
    NoFlushSpool,
    /// Flush commits interleaved with deliberately aborted transactions
    /// writing poison values that must never survive recovery.
    AbortMix,
    /// Three threads of flush commits through the *pipelined* log writer
    /// (`log_pipeline` tuning): a batch cap below the thread count makes
    /// consecutive batches coexist, so the trace contains windows where
    /// buffer A's force has completed but buffer B's records are not yet
    /// submitted — exactly the states the committed-prefix oracle must
    /// survive. Multi-threaded (disjoint-cell oracle).
    Pipeline,
    /// A seeded single-threaded mix of all of the above.
    Seeded(u64),
    /// Flush commits only, never truncating: every committed byte stays
    /// in the live log span. This is the precondition for the bit-rot
    /// oracle ([`check_trace_with_rot`](crate::check_trace_with_rot)),
    /// which flips committed segment bytes in each crash image and
    /// demands that recovery rebuild them from the log.
    BitRot,
}

/// Shared capture plumbing: the recorder, the raw in-memory devices
/// behind the trace wrappers, and the base images.
struct Capture {
    recorder: Arc<TraceRecorder>,
    log_mem: Arc<MemDevice>,
    log_id: u32,
    #[allow(clippy::type_complexity)]
    segs: Arc<Mutex<HashMap<String, (Arc<MemDevice>, Arc<TraceDevice>)>>>,
    bases: HashMap<u32, Vec<u8>>,
}

impl Capture {
    /// Snapshots every device's current (durable) contents as its base
    /// image and starts recording.
    fn start(&mut self) {
        for (id, name) in self.recorder.devices() {
            let image = if id == self.log_id {
                self.log_mem.snapshot()
            } else {
                self.segs
                    .lock()
                    .get(&name)
                    .map(|(mem, _)| mem.snapshot())
                    .unwrap_or_default()
            };
            self.bases.insert(id, image);
        }
        self.recorder.set_enabled(true);
    }

    /// Stops recording and assembles the trace. Devices first resolved
    /// while recording was live keep an empty base (they were created
    /// zero-filled; synthesis grows images on demand).
    fn finish(self, txns: Vec<TxnSpec>, single_threaded: bool) -> Trace {
        self.recorder.set_enabled(false);
        let devices = self
            .recorder
            .devices()
            .into_iter()
            .map(|(id, name)| DeviceBase {
                is_log: id == self.log_id,
                image: self.bases.get(&id).cloned().unwrap_or_default(),
                id,
                name,
            })
            .collect();
        Trace {
            devices,
            ops: self.recorder.ops(),
            txns,
            single_threaded,
        }
    }
}

/// Builds a traced `Rvm`: log and every resolved segment wrapped in
/// [`TraceDevice`]s sharing one recorder (disabled until
/// [`Capture::start`]).
fn setup(log_len: u64, tuning: Tuning) -> (Capture, Rvm) {
    let recorder = TraceRecorder::new();
    recorder.set_enabled(false);
    let log_mem = Arc::new(MemDevice::with_len(log_len));
    let log = recorder.wrap("log", log_mem.clone());
    let log_id = log.id();

    type SegMap = HashMap<String, (Arc<MemDevice>, Arc<TraceDevice>)>;
    let segs: Arc<Mutex<SegMap>> = Arc::new(Mutex::new(HashMap::new()));
    let resolver: DeviceResolver = Arc::new({
        let segs = Arc::clone(&segs);
        let recorder = Arc::clone(&recorder);
        move |name: &str, min_len: u64| {
            let mut m = segs.lock();
            let (_, traced) = m
                .entry(name.to_owned())
                .or_insert_with(|| {
                    let mem = Arc::new(MemDevice::with_len(min_len));
                    let traced = recorder.wrap(name, mem.clone());
                    (mem, traced)
                })
                .clone();
            if traced.len()? < min_len {
                traced.set_len(min_len)?;
            }
            Ok(traced as Arc<dyn Device>)
        }
    });

    let rvm = Rvm::initialize(
        Options::new(log)
            .resolver(resolver)
            .tuning(tuning)
            .create_if_empty(),
    )
    .expect("workload log initializes");
    (
        Capture {
            recorder,
            log_mem,
            log_id,
            segs,
            bases: HashMap::new(),
        },
        rvm,
    )
}

/// One committed flush-mode transaction writing `data` at `offset` of
/// `region`, returning its spec with the ack point.
fn flush_txn(
    rvm: &Rvm,
    recorder: &TraceRecorder,
    region: &Region,
    segment: &str,
    thread: u32,
    offset: u64,
    data: Vec<u8>,
) -> TxnSpec {
    let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
    region.write(&mut txn, offset, &data).expect("write");
    txn.commit(CommitMode::Flush).expect("flush commit");
    TxnSpec {
        thread,
        committed: true,
        ack: Some(recorder.len()),
        writes: vec![SegWrite {
            segment: segment.to_owned(),
            offset,
            data,
        }],
    }
}

/// Runs a workload and captures its trace. `hooks` injects deliberate
/// protocol mutations (all-off for real checking).
pub fn run_workload(kind: Workload, hooks: MutationHooks) -> Trace {
    match kind {
        Workload::GroupCommit => group_commit(hooks),
        Workload::Truncation => truncation(hooks),
        Workload::NoFlushSpool => no_flush_spool(hooks),
        Workload::AbortMix => abort_mix(hooks),
        Workload::Pipeline => pipeline(hooks),
        Workload::Seeded(seed) => seeded(seed, hooks),
        Workload::BitRot => bit_rot(hooks),
    }
}

fn tuning_with(hooks: MutationHooks) -> Tuning {
    Tuning {
        mutation: hooks,
        ..Tuning::default()
    }
}

fn group_commit(hooks: MutationHooks) -> Trace {
    const THREADS: u32 = 3;
    const ROUNDS: u64 = 3;
    const CELL: u64 = 1024;

    let tuning = Tuning {
        // A leader lingers so barrier-aligned committers join its batch:
        // bigger batches mean more pending pieces per crash window.
        group_commit_wait_us: 2_000,
        ..tuning_with(hooks)
    };
    let (mut cap, rvm) = setup(1 << 16, tuning);
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, 3 * PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let barrier = Barrier::new(THREADS as usize);
    let mut txns: Vec<TxnSpec> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let region = region.clone();
                let (rvm, recorder, barrier) = (&rvm, &*cap.recorder, &barrier);
                s.spawn(move || {
                    let mut specs = Vec::new();
                    for i in 0..ROUNDS {
                        let idx = t as u64 * ROUNDS + i;
                        let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                        let data = vec![0x41 + idx as u8; CELL as usize - 64];
                        region.write(&mut txn, idx * CELL, &data).expect("write");
                        // Commit together so the leader drains a batch.
                        barrier.wait();
                        txn.commit(CommitMode::Flush).expect("flush commit");
                        specs.push(TxnSpec {
                            thread: t,
                            committed: true,
                            ack: Some(recorder.len()),
                            writes: vec![SegWrite {
                                segment: "cells".into(),
                                offset: idx * CELL,
                                data,
                            }],
                        });
                    }
                    specs
                })
            })
            .collect();
        for h in handles {
            txns.extend(h.join().expect("workload thread"));
        }
    });

    let trace = cap.finish(txns, false);
    drop(rvm);
    trace
}

fn pipeline(hooks: MutationHooks) -> Trace {
    const THREADS: u32 = 3;
    const ROUNDS: u64 = 4;
    const CELL: u64 = 1024;

    let tuning = Tuning {
        log_pipeline: true,
        // The leader lingers so barrier-aligned committers pile up, and
        // the batch cap splits them below the thread count: the follower
        // batch fills and submits while the first batch's force is still
        // in flight, so the trace records sync(A) … writes(B) … sync(B)
        // and the enumerator crashes inside every gap — including the
        // one between buffer A's completion and buffer B's submission.
        group_commit_wait_us: 2_000,
        group_commit_max_txns: 2,
        ..tuning_with(hooks)
    };
    let (mut cap, rvm) = setup(1 << 16, tuning);
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, 3 * PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let barrier = Barrier::new(THREADS as usize);
    let mut txns: Vec<TxnSpec> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let region = region.clone();
                let (rvm, recorder, barrier) = (&rvm, &*cap.recorder, &barrier);
                s.spawn(move || {
                    let mut specs = Vec::new();
                    for i in 0..ROUNDS {
                        let idx = t as u64 * ROUNDS + i;
                        let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                        let data = vec![0x61 + idx as u8; CELL as usize - 64];
                        region.write(&mut txn, idx * CELL, &data).expect("write");
                        // Commit together so batches form and overlap.
                        barrier.wait();
                        txn.commit(CommitMode::Flush).expect("flush commit");
                        specs.push(TxnSpec {
                            thread: t,
                            committed: true,
                            ack: Some(recorder.len()),
                            writes: vec![SegWrite {
                                segment: "cells".into(),
                                offset: idx * CELL,
                                data,
                            }],
                        });
                    }
                    specs
                })
            })
            .collect();
        for h in handles {
            txns.extend(h.join().expect("workload thread"));
        }
    });

    let trace = cap.finish(txns, false);
    drop(rvm);
    trace
}

fn truncation(hooks: MutationHooks) -> Trace {
    let (mut cap, rvm) = setup(1 << 16, tuning_with(hooks));
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, 2 * PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let mut txns = Vec::new();
    for i in 0..8u64 {
        let data = vec![0x10 + i as u8; 700];
        txns.push(flush_txn(
            &rvm,
            &cap.recorder,
            &region,
            "cells",
            0,
            i * 768,
            data,
        ));
        if i == 2 || i == 5 {
            rvm.truncate().expect("epoch truncation");
        }
    }

    let trace = cap.finish(txns, true);
    drop(rvm);
    trace
}

fn no_flush_spool(hooks: MutationHooks) -> Trace {
    let (mut cap, rvm) = setup(1 << 16, tuning_with(hooks));
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let mut txns: Vec<TxnSpec> = Vec::new();
    let mut unacked: Vec<usize> = Vec::new();
    for i in 0..6u64 {
        let data = vec![0x20 + i as u8; 600];
        let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
        region.write(&mut txn, i * 640, &data).expect("write");
        txn.commit(CommitMode::NoFlush).expect("no-flush commit");
        unacked.push(txns.len());
        txns.push(TxnSpec {
            thread: 0,
            committed: true,
            ack: None,
            writes: vec![SegWrite {
                segment: "cells".into(),
                offset: i * 640,
                data,
            }],
        });
        if i == 1 || i == 3 {
            rvm.flush().expect("flush");
            // The flush's return is the ack point for every spooled
            // commit it covered.
            let ack = cap.recorder.len();
            for idx in unacked.drain(..) {
                txns[idx].ack = Some(ack);
            }
        }
    }
    // Transactions 4 and 5 stay unflushed: a crash may legally drop
    // them, but only as a suffix.

    let trace = cap.finish(txns, true);
    drop(rvm);
    trace
}

fn abort_mix(hooks: MutationHooks) -> Trace {
    let (mut cap, rvm) = setup(1 << 16, tuning_with(hooks));
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let mut txns = Vec::new();
    for i in 0..6u64 {
        if i % 3 == 2 {
            // A transaction that writes poison and aborts: its bytes
            // must never survive recovery.
            let data = vec![0xEE; 500];
            let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
            region.write(&mut txn, i * 640, &data).expect("write");
            txn.abort().expect("abort");
            txns.push(TxnSpec {
                thread: 0,
                committed: false,
                ack: None,
                writes: vec![SegWrite {
                    segment: "cells".into(),
                    offset: i * 640,
                    data,
                }],
            });
        } else {
            let data = vec![0x30 + i as u8; 500];
            txns.push(flush_txn(
                &rvm,
                &cap.recorder,
                &region,
                "cells",
                0,
                i * 640,
                data,
            ));
        }
    }

    let trace = cap.finish(txns, true);
    drop(rvm);
    trace
}

/// Flush commits over disjoint cells with no truncation of any kind:
/// the log comfortably holds every record, so the whole committed
/// history stays in the live span. That is what makes rot injection
/// sound — a byte flipped inside any acked write's range is always
/// covered by the recovery tree, so redo must rewrite it.
fn bit_rot(hooks: MutationHooks) -> Trace {
    let (mut cap, rvm) = setup(1 << 16, tuning_with(hooks));
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, 2 * PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let mut txns = Vec::new();
    for i in 0..6u64 {
        let data = vec![0x50 + i as u8; 700];
        txns.push(flush_txn(
            &rvm,
            &cap.recorder,
            &region,
            "cells",
            0,
            i * 768,
            data,
        ));
    }

    let trace = cap.finish(txns, true);
    drop(rvm);
    trace
}

/// A seeded single-threaded mix: flush/no-flush/aborted transactions
/// with varied sizes, plus explicit flushes and truncations. Fully
/// determined by the seed.
fn seeded(seed: u64, hooks: MutationHooks) -> Trace {
    let mut rng = seed;
    let (mut cap, rvm) = setup(1 << 16, tuning_with(hooks));
    let region = rvm
        .map(&RegionDescriptor::new("cells", 0, 8 * PAGE_SIZE))
        .expect("map cells");
    cap.start();

    let steps = 8 + (xorshift64(&mut rng) % 6) as usize;
    let mut txns: Vec<TxnSpec> = Vec::new();
    let mut unacked: Vec<usize> = Vec::new();
    for step in 0..steps {
        let offset = step as u64 * 2048;
        let len = 64 + (xorshift64(&mut rng) % 1200) as usize;
        let value = 1 + (step % 250) as u8;
        match xorshift64(&mut rng) % 6 {
            0..=2 => {
                let data = vec![value; len];
                let spec = flush_txn(&rvm, &cap.recorder, &region, "cells", 0, offset, data);
                // A flush commit drains the spool first: it also acks
                // every spooled no-flush commit before it.
                let ack = spec.ack;
                txns.push(spec);
                for idx in unacked.drain(..) {
                    txns[idx].ack = ack;
                }
            }
            3 => {
                let data = vec![value; len];
                let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                region.write(&mut txn, offset, &data).expect("write");
                txn.commit(CommitMode::NoFlush).expect("no-flush commit");
                unacked.push(txns.len());
                txns.push(TxnSpec {
                    thread: 0,
                    committed: true,
                    ack: None,
                    writes: vec![SegWrite {
                        segment: "cells".into(),
                        offset,
                        data,
                    }],
                });
            }
            4 => {
                let data = vec![0xEE; len];
                let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                region.write(&mut txn, offset, &data).expect("write");
                txn.abort().expect("abort");
                txns.push(TxnSpec {
                    thread: 0,
                    committed: false,
                    ack: None,
                    writes: vec![SegWrite {
                        segment: "cells".into(),
                        offset,
                        data,
                    }],
                });
            }
            _ => {
                if xorshift64(&mut rng).is_multiple_of(2) {
                    // `flush` forces the spool: it is the ack point for
                    // every no-flush commit so far.
                    rvm.flush().expect("flush");
                    let ack = cap.recorder.len();
                    for idx in unacked.drain(..) {
                        txns[idx].ack = Some(ack);
                    }
                } else {
                    // `truncate` only reclaims log space; it makes no
                    // promise about spooled commits, so it acks nothing.
                    rvm.truncate().expect("truncate");
                }
            }
        }
    }

    let trace = cap.finish(txns, true);
    drop(rvm);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::TraceOpKind;

    #[test]
    fn truncation_workload_traces_commits_and_truncations() {
        let trace = run_workload(Workload::Truncation, MutationHooks::default());
        assert!(trace.single_threaded);
        assert_eq!(trace.txns.len(), 8);
        assert!(trace.txns.iter().all(|t| t.committed && t.ack.is_some()));
        let syncs = trace
            .ops
            .iter()
            .filter(|o| matches!(o.kind, TraceOpKind::Sync))
            .count();
        // 8 forced commits plus the truncation's segment/status syncs.
        assert!(syncs > 8, "got {syncs} syncs");
        // Truncation writes to the segment device mid-trace.
        let seg_id = trace
            .devices
            .iter()
            .find(|d| !d.is_log)
            .expect("segment device")
            .id;
        assert!(trace
            .ops
            .iter()
            .any(|o| o.device == seg_id && matches!(o.kind, TraceOpKind::Write { .. })));
    }

    #[test]
    fn group_commit_workload_is_multithreaded_with_monotone_thread_acks() {
        let trace = run_workload(Workload::GroupCommit, MutationHooks::default());
        assert!(!trace.single_threaded);
        assert_eq!(trace.txns.len(), 9);
        for th in 0..3u32 {
            let acks: Vec<usize> = trace
                .txns
                .iter()
                .filter(|t| t.thread == th)
                .map(|t| t.ack.expect("flush commits ack"))
                .collect();
            assert_eq!(acks.len(), 3);
            assert!(acks.windows(2).all(|w| w[0] <= w[1]), "{acks:?}");
        }
    }

    #[test]
    fn pipeline_workload_is_multithreaded_and_forces_in_batches() {
        let trace = run_workload(Workload::Pipeline, MutationHooks::default());
        assert!(!trace.single_threaded);
        assert_eq!(trace.txns.len(), 12);
        assert!(trace.txns.iter().all(|t| t.committed && t.ack.is_some()));
        // The pipelined writer still forces: every batch records exactly
        // one log sync, and nine commits over capped batches need several.
        let log_id = trace.log_base().id;
        let syncs = trace
            .ops
            .iter()
            .filter(|o| o.device == log_id && matches!(o.kind, TraceOpKind::Sync))
            .count();
        assert!(syncs >= 2, "pipelined run forced only {syncs} times");
    }

    #[test]
    fn no_flush_tail_is_unacked() {
        let trace = run_workload(Workload::NoFlushSpool, MutationHooks::default());
        assert_eq!(trace.txns.len(), 6);
        assert!(trace.txns[..4].iter().all(|t| t.ack.is_some()));
        assert!(trace.txns[4..].iter().all(|t| t.ack.is_none()));
    }

    #[test]
    fn bit_rot_workload_never_touches_the_segment() {
        let trace = run_workload(Workload::BitRot, MutationHooks::default());
        assert!(trace.single_threaded);
        assert_eq!(trace.txns.len(), 6);
        assert!(trace.txns.iter().all(|t| t.committed && t.ack.is_some()));
        // No truncation ran, so no recorded op writes any data segment:
        // every committed byte lives only in the log's live span.
        let seg_ids: Vec<u32> = trace
            .devices
            .iter()
            .filter(|d| !d.is_log)
            .map(|d| d.id)
            .collect();
        assert!(!seg_ids.is_empty());
        assert!(trace
            .ops
            .iter()
            .all(|o| !seg_ids.contains(&o.device) || !matches!(o.kind, TraceOpKind::Write { .. })));
    }

    #[test]
    fn seeded_workloads_are_deterministic() {
        let a = run_workload(Workload::Seeded(7), MutationHooks::default());
        let b = run_workload(Workload::Seeded(7), MutationHooks::default());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.txns, b.txns);
        let c = run_workload(Workload::Seeded(8), MutationHooks::default());
        assert_ne!(a.ops, c.ops, "different seeds explore different mixes");
    }

    #[test]
    fn base_images_exclude_setup_writes() {
        let trace = run_workload(Workload::AbortMix, MutationHooks::default());
        let log = trace.log_base();
        // The base log image is formatted (nonzero status area), and no
        // recorded op re-writes the format: the trace starts after setup.
        assert!(log.image.iter().any(|&b| b != 0));
        assert!(!trace.ops.is_empty());
    }
}
