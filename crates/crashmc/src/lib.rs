//! # rvm-crashmc — crash-consistency model checking for RVM
//!
//! A deterministic crash-state model checker for the commit and
//! truncation protocols. The pipeline has three stages:
//!
//! 1. **Trace capture** ([`workload`]): a workload runs against a real
//!    [`Rvm`](rvm::Rvm) instance whose log and segment devices are
//!    wrapped in [`TraceDevice`](rvm_storage::TraceDevice)s sharing one
//!    [`TraceRecorder`](rvm_storage::TraceRecorder). The result is a
//!    [`Trace`]: the global order of every `write_at`/`sync`/`set_len`
//!    across all devices, each device's pre-trace durable image, and the
//!    transaction script with *ack points* — the op-log index at which
//!    each flush-mode commit returned to the application.
//!
//! 2. **Crash-image enumeration** ([`enumerate`]): every `sync` boundary
//!    (plus the end of the trace) is a crash point. At a crash point,
//!    writes covered by an earlier completed `sync` on their device are
//!    durable; writes since are *pending*, split into sector-granular
//!    pieces, and any subset of the pieces may have reached the platter —
//!    this is the `ArbitrarySubset` + `TornWrite` disk model, strictly
//!    weaker (more adversarial) than "kept in order". Small piece sets
//!    are enumerated exhaustively; large ones are sampled with seeded
//!    pseudo-randomness plus a deterministic worst-case core (all-kept,
//!    all-dropped, every single-piece drop). Images are deduplicated by
//!    hash, so the reported state count is *distinct reachable crash
//!    states*.
//!
//! 3. **Oracle** ([`oracle`]): each crash image is loaded into fresh
//!    [`MemDevice`](rvm_storage::MemDevice)s and **real recovery** runs
//!    on it (`Rvm::initialize`). The recovered state must satisfy the
//!    committed-prefix invariant:
//!
//!    * single-threaded traces: the recovered segments equal the replay
//!      of some *prefix* of the committed transactions, at least as long
//!      as the acked prefix (every transaction whose commit returned
//!      before the crash point must survive);
//!    * multi-threaded traces (disjoint write cells): each transaction is
//!      all-or-none, acked ⇒ present, aborted ⇒ never present, and
//!      per-thread commit order is prefix-closed;
//!    * the pre-recovery crash image itself passes the
//!      [`rvm_check`] WAL invariant verifier, and recovery is
//!      deterministic (see [`oracle::check_recovery_determinism`]).
//!
//! The checker's acceptance is double-sided: the real tree must show
//! zero violations over every workload, and a tree with a
//! [`MutationHooks`](rvm::MutationHooks) switch flipped (e.g.
//! `skip_group_force`: acknowledge group commits without the batch's log
//! force) must show at least one — proving the checker can see the bug
//! class each switch reintroduces.
//!
//! Traces serialize to disk ([`tracefile`]) so failing cases can be
//! re-checked post mortem: `rvmlog <trace> crashck`.

pub mod enumerate;
pub mod oracle;
pub mod tracefile;
pub mod workload;

use std::collections::{HashMap, HashSet};

use enumerate::{enumerate_images, EnumConfig};
use rvm_storage::TraceOp;

/// A device participating in a trace: identity plus its durable image at
/// the moment recording started (the pre-crash base every enumeration
/// builds on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceBase {
    /// Id assigned by the recorder; [`TraceOp::device`] refers to it.
    pub id: u32,
    /// Segment name, or the log's label.
    pub name: String,
    /// Whether this device is the WAL (exactly one per trace).
    pub is_log: bool,
    /// Durable contents when recording was enabled. Devices first
    /// resolved mid-trace start empty (they are zero-filled at creation;
    /// synthesis grows images on demand).
    pub image: Vec<u8>,
}

/// One byte range a transaction wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegWrite {
    pub segment: String,
    pub offset: u64,
    pub data: Vec<u8>,
}

/// One transaction of the workload script, in per-thread program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Workload thread that ran the transaction.
    pub thread: u32,
    /// `false` for transactions the workload deliberately aborted.
    pub committed: bool,
    /// Op-log length observed when the commit (or the flush covering a
    /// no-flush commit) returned. A crash at point `c >= ack` must
    /// preserve the transaction; `None` means permanence was never
    /// promised (unflushed or aborted).
    pub ack: Option<usize>,
    pub writes: Vec<SegWrite>,
}

/// A captured execution: devices, global op order, transaction script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub devices: Vec<DeviceBase>,
    pub ops: Vec<TraceOp>,
    pub txns: Vec<TxnSpec>,
    /// Single-threaded traces get the exact prefix-replay oracle;
    /// multi-threaded ones the disjoint-cell invariant oracle.
    pub single_threaded: bool,
}

impl Trace {
    /// The log device's base entry.
    pub fn log_base(&self) -> &DeviceBase {
        self.devices
            .iter()
            .find(|d| d.is_log)
            .expect("trace has a log device")
    }

    /// Committed transactions in trace order.
    pub fn committed(&self) -> impl Iterator<Item = &TxnSpec> {
        self.txns.iter().filter(|t| t.committed)
    }
}

/// One invariant breach, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Crash point: `ops[..point]` were issued; the `sync` at `point`
    /// (if any) did not complete.
    pub point: usize,
    /// Which pending pieces the crash image kept.
    pub kept: Vec<bool>,
    /// Seed in effect when the image was generated (sampled points).
    pub seed: u64,
    pub detail: String,
}

/// What a [`check_trace`] run covered and found.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Sync boundaries (plus trace end) considered.
    pub crash_points: usize,
    /// Crash points whose piece set exceeded the exhaustive cap and were
    /// sampled instead.
    pub sampled_points: usize,
    /// Images generated (before dedup).
    pub images_enumerated: u64,
    /// Distinct crash states (deduped by image hash).
    pub images_unique: u64,
    /// Recovery runs executed (deduped by image × required-prefix).
    pub recoveries_run: u64,
    /// True when every crash point was enumerated exhaustively: the
    /// report then covers *every* crash state the disk model permits.
    pub exhaustive: bool,
    pub violations: Vec<Violation>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering (the `rvmlog crashck` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash points:      {}{}\n",
            self.crash_points,
            if self.sampled_points > 0 {
                format!(" ({} sampled)", self.sampled_points)
            } else {
                String::new()
            }
        ));
        out.push_str(&format!(
            "crash states:      {} distinct ({} enumerated, {})\n",
            self.images_unique,
            self.images_enumerated,
            if self.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        ));
        out.push_str(&format!("recoveries run:    {}\n", self.recoveries_run));
        out.push_str(&format!("violations:        {}\n", self.violations.len()));
        for v in &self.violations {
            let kept: String = v.kept.iter().map(|&k| if k { '1' } else { '0' }).collect();
            out.push_str(&format!(
                "  @op {} seed {:#x} kept [{}]\n    {}\n",
                v.point, v.seed, kept, v.detail
            ));
        }
        out
    }
}

/// Checks every crash image of `trace` that `cfg` generates, stopping
/// after [`EnumConfig::max_violations`] breaches.
pub fn check_trace(trace: &Trace, cfg: &EnumConfig) -> Report {
    let mut report = Report::default();
    let mut seen: HashSet<(u64, usize)> = HashSet::new();
    let mut violations = Vec::new();

    let stats = enumerate_images(trace, cfg, |point, kept, image_hash, images| {
        // The required prefix depends only on the crash point (acks are
        // monotone in the op-log), so (image, required-count) identifies
        // a recovery problem; equal pairs need only one recovery run.
        let required = trace
            .txns
            .iter()
            .filter(|t| t.ack.is_some_and(|a| a <= point))
            .count();
        if !seen.insert((image_hash, required)) {
            return true;
        }
        report.recoveries_run += 1;
        if let Err(detail) = oracle::check_image(trace, point, images) {
            violations.push(Violation {
                point,
                kept: kept.to_vec(),
                seed: cfg.seed,
                detail,
            });
            if violations.len() >= cfg.max_violations {
                return false;
            }
        }
        true
    });

    report.crash_points = stats.crash_points;
    report.sampled_points = stats.sampled_points;
    report.images_enumerated = stats.images_enumerated;
    report.images_unique = stats.images_unique;
    report.exhaustive = stats.exhaustive;
    report.violations = violations;
    report
}

/// Grows `img` with zeros so `offset + len` is in bounds.
pub(crate) fn ensure_len(img: &mut Vec<u8>, offset: u64, len: usize) {
    let end = offset as usize + len;
    if img.len() < end {
        img.resize(end, 0);
    }
}

/// Applies a write to a growable image.
pub(crate) fn apply_write(img: &mut Vec<u8>, offset: u64, data: &[u8]) {
    ensure_len(img, offset, data.len());
    img[offset as usize..offset as usize + data.len()].copy_from_slice(data);
}

/// The base images of every non-log device, by name.
pub(crate) fn segment_bases(trace: &Trace) -> HashMap<String, Vec<u8>> {
    trace
        .devices
        .iter()
        .filter(|d| !d.is_log)
        .map(|d| (d.name.clone(), d.image.clone()))
        .collect()
}

/// xorshift64* — the crate's only randomness, fully determined by the
/// seed (same generator as the storage fault layer).
pub(crate) fn xorshift64(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_write_grows_and_overwrites() {
        let mut img = vec![1, 2, 3];
        apply_write(&mut img, 2, &[9, 9]);
        assert_eq!(img, vec![1, 2, 9, 9]);
        apply_write(&mut img, 6, &[5]);
        assert_eq!(img, vec![1, 2, 9, 9, 0, 0, 5]);
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..16 {
            let x = xorshift64(&mut a);
            assert_eq!(x, xorshift64(&mut b));
            assert_ne!(x, 0);
        }
        let mut z = 0;
        assert_ne!(xorshift64(&mut z), 0, "zero seed is remapped");
    }
}
