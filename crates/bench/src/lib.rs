//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7).
//!
//! * [`model`] — the simulated machine and per-operation CPU costs, with
//!   their derivations.
//! * [`rvm_driver`] — runs the *real* RVM library over latency-modelled
//!   devices, with paging modelled by `simvm` around the account touches.
//! * [`camelot_driver`] — runs the `camelot-sim` baseline.
//! * [`tpca_run`] — the benchmark loop shared by both systems.
//! * [`report`] — table and ASCII-plot formatting.
//!
//! Binaries: `table1`, `figure8`, `figure9`, `table2`, `ablation`.

pub mod camelot_driver;
pub mod model;
pub mod report;
pub mod rvm_driver;
pub mod tpca_run;
