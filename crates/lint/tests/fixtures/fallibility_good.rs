// Known-good fixture for the device-fallibility pass: every Result is
// propagated, inspected, bound, or suppressed with a reviewed reason.
// Zero findings expected.

fn propagates(dev: &dyn Device) -> Result<()> {
    dev.sync()?;
    Ok(())
}

fn binds_and_returns(dev: &dyn Device, buf: &[u8]) -> Result<()> {
    let outcome = dev.write_at(0, buf);
    outcome
}

fn inspects(dev: &dyn Device) -> bool {
    dev.sync().is_ok()
}

fn maps_the_error(wal: &Wal) -> Result<()> {
    wal.force().map_err(RvmError::from)
}

fn reviewed_suppression(dev: &dyn Device, buf: &[u8]) {
    // lint:allow(device-fallibility): crash-sim rollback, errors harden the image
    let _ = dev.write_at(0, buf);
}

#[cfg(test)]
mod tests {
    fn unwrap_in_tests_is_fine(dev: &dyn Device) {
        dev.sync().unwrap();
    }
}
