//! File-backed device.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::{Device, DeviceError, IoToken, Result};

/// One job handed to the I/O worker thread.
enum AioJob {
    Write { id: u64, offset: u64, data: Vec<u8> },
    Sync { id: u64 },
}

/// Completion state shared between submitters and the worker.
#[derive(Debug, Default)]
struct AioCompletions {
    done: Mutex<HashMap<u64, Result<()>>>,
    cv: Condvar,
}

/// The lazily-spawned submission queue. One worker thread drains jobs in
/// FIFO order, so a `Sync` job is a barrier for every `Write` job submitted
/// before it — the same ordering contract io_uring gives a single
/// `IOSQE_IO_DRAIN`-chained queue, which is why the shape ports directly.
#[derive(Debug)]
struct Aio {
    jobs: Sender<AioJob>,
    worker: Option<JoinHandle<()>>,
}

impl Drop for Aio {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; join so in-flight jobs
        // finish before the file handle is released.
        let (tx, _rx) = std::sync::mpsc::channel();
        drop(std::mem::replace(&mut self.jobs, tx));
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// A device backed by a regular file (or, on Unix, a raw block device node).
///
/// Durability is provided by `fdatasync`; this mirrors the paper's reliance
/// on "the correct implementation of the `fsync` system call" (§3.3).
///
/// Asynchronous submission ([`Device::submit_write`]/[`Device::submit_sync`])
/// is served by a lazily-spawned worker thread draining a FIFO job queue;
/// completions are published to a map that [`Device::wait`]/[`Device::poll`]
/// consult. The submit/complete split keeps the call sites io_uring-shaped
/// without the dependency.
///
/// # Examples
///
/// ```no_run
/// use rvm_storage::{Device, FileDevice};
///
/// let dev = FileDevice::create("/tmp/rvm.log", 4 << 20).unwrap();
/// dev.write_at(0, b"hello").unwrap();
/// dev.sync().unwrap();
/// ```
#[derive(Debug)]
pub struct FileDevice {
    file: Arc<File>,
    path: PathBuf,
    next_id: AtomicU64,
    completions: Arc<AioCompletions>,
    aio: Mutex<Option<Aio>>,
}

impl FileDevice {
    fn from_file(file: File, path: PathBuf) -> Self {
        Self {
            file: Arc::new(file),
            path,
            next_id: AtomicU64::new(1),
            completions: Arc::new(AioCompletions::default()),
            aio: Mutex::new(None),
        }
    }

    /// Opens an existing file for read/write access.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        Ok(Self::from_file(file, path.as_ref().to_owned()))
    }

    /// Creates (or truncates) a file of exactly `len` zero-filled bytes.
    pub fn create<P: AsRef<Path>>(path: P, len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(len)?;
        Ok(Self::from_file(file, path.as_ref().to_owned()))
    }

    /// Opens `path` if it exists, otherwise creates it with `len` bytes.
    pub fn open_or_create<P: AsRef<Path>>(path: P, len: u64) -> Result<Self> {
        if path.as_ref().exists() {
            Self::open(path)
        } else {
            Self::create(path, len)
        }
    }

    /// Returns the path this device was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bounds-checked positional write against `file` (shared by the sync
    /// path and the worker thread).
    fn write_to(file: &File, offset: u64, data: &[u8]) -> Result<()> {
        let device_len = file.metadata()?.len();
        let end = offset.checked_add(data.len() as u64);
        if end.is_none() || end.unwrap() > device_len {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: data.len() as u64,
                device_len,
            });
        }
        file.write_all_at(data, offset)?;
        Ok(())
    }

    fn worker_loop(file: Arc<File>, rx: Receiver<AioJob>, completions: Arc<AioCompletions>) {
        while let Ok(job) = rx.recv() {
            let (id, result) = match job {
                AioJob::Write { id, offset, data } => (id, Self::write_to(&file, offset, &data)),
                AioJob::Sync { id } => (id, file.sync_data().map_err(DeviceError::from)),
            };
            completions.done.lock().insert(id, result);
            completions.cv.notify_all();
        }
    }

    /// Enqueues `job`, spawning the worker on first use. Returns a pending
    /// token; falls back to an inline error token if the worker cannot be
    /// spawned or has died.
    fn enqueue(&self, make: impl FnOnce(u64) -> AioJob) -> IoToken {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut aio = self.aio.lock();
        if aio.is_none() {
            let (tx, rx) = std::sync::mpsc::channel();
            let file = Arc::clone(&self.file);
            let completions = Arc::clone(&self.completions);
            let spawned = std::thread::Builder::new()
                .name("rvm-file-io".into())
                .spawn(move || Self::worker_loop(file, rx, completions));
            match spawned {
                Ok(worker) => {
                    *aio = Some(Aio {
                        jobs: tx,
                        worker: Some(worker),
                    });
                }
                Err(e) => return IoToken::inline(Err(DeviceError::from(e))),
            }
        }
        let sender = &aio.as_ref().expect("worker just ensured").jobs;
        match sender.send(make(id)) {
            Ok(()) => IoToken::pending(id),
            Err(_) => IoToken::inline(Err(DeviceError::from(std::io::Error::other(
                "file device I/O worker exited",
            )))),
        }
    }
}

impl Device for FileDevice {
    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let device_len = self.len()?;
        let end = offset.checked_add(buf.len() as u64);
        if end.is_none() || end.unwrap() > device_len {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                device_len,
            });
        }
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        Self::write_to(&self.file, offset, data)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn submit_write(&self, offset: u64, data: Vec<u8>) -> IoToken {
        self.enqueue(|id| AioJob::Write { id, offset, data })
    }

    fn submit_sync(&self) -> IoToken {
        self.enqueue(|id| AioJob::Sync { id })
    }

    fn poll(&self, token: &IoToken) -> bool {
        if token.is_inline() {
            return true;
        }
        self.completions.done.lock().contains_key(&token.id())
    }

    fn wait(&self, token: IoToken) -> Result<()> {
        let id = match token.into_inline() {
            Ok(result) => return result,
            Err(pending) => pending.id(),
        };
        let mut done = self.completions.done.lock();
        loop {
            if let Some(result) = done.remove(&id) {
                return result;
            }
            self.completions.cv.wait(&mut done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rvm-storage-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn create_write_read() {
        let path = temp_path("crw");
        let dev = FileDevice::create(&path, 64).unwrap();
        assert_eq!(dev.len().unwrap(), 64);
        dev.write_at(10, b"persist").unwrap();
        dev.sync().unwrap();
        drop(dev);

        let dev = FileDevice::open(&path).unwrap();
        let mut buf = [0u8; 7];
        dev.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"persist");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let path = temp_path("bounds");
        let dev = FileDevice::create(&path, 8).unwrap();
        assert!(matches!(
            dev.write_at(6, &[0; 4]).unwrap_err(),
            DeviceError::OutOfBounds { .. }
        ));
        assert!(matches!(
            dev.read_at(9, &mut [0; 1]).unwrap_err(),
            DeviceError::OutOfBounds { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_reuses_contents() {
        let path = temp_path("ooc");
        {
            let dev = FileDevice::open_or_create(&path, 16).unwrap();
            dev.write_at(0, &[42]).unwrap();
        }
        let dev = FileDevice::open_or_create(&path, 16).unwrap();
        let mut b = [0u8; 1];
        dev.read_at(0, &mut b).unwrap();
        assert_eq!(b[0], 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn async_submit_write_then_sync_round_trips() {
        let path = temp_path("aio");
        let dev = FileDevice::create(&path, 64).unwrap();
        let w = dev.submit_write(8, b"async".to_vec());
        let s = dev.submit_sync();
        assert!(!w.is_inline());
        assert!(!s.is_inline());
        dev.wait(w).unwrap();
        dev.wait(s).unwrap();
        let mut buf = [0u8; 5];
        dev.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"async");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn async_write_errors_surface_at_wait() {
        let path = temp_path("aio-err");
        let dev = FileDevice::create(&path, 8).unwrap();
        let t = dev.submit_write(6, vec![0; 4]);
        assert!(matches!(
            dev.wait(t).unwrap_err(),
            DeviceError::OutOfBounds { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn poll_reports_completion_without_consuming_it() {
        let path = temp_path("aio-poll");
        let dev = FileDevice::create(&path, 64).unwrap();
        let t = dev.submit_sync();
        while !dev.poll(&t) {
            std::thread::yield_now();
        }
        assert!(dev.poll(&t));
        dev.wait(t).unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
