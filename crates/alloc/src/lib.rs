//! A recoverable memory allocator layered on RVM.
//!
//! §4.1: "A recoverable memory allocator, also layered on RVM, supports
//! heap management of storage within a segment." This crate is that
//! layer: a first-fit free-list allocator whose *entire state lives in
//! recoverable memory*, so the heap structure itself enjoys transactional
//! atomicity and survives crashes.
//!
//! # Layout
//!
//! The managed region starts with a header (magic, version, byte counts)
//! followed by a sequence of blocks. Every block carries a small header
//! (`size | used`-style, with explicit next-free links). Free blocks form
//! a singly-linked list threaded through block headers by region offset;
//! `NIL` (`u64::MAX`) terminates the list.
//!
//! All mutations happen inside a caller-supplied [`rvm::Transaction`], so
//! an aborted transaction rolls the heap back along with the caller's own
//! data, and a crash recovers to the last committed heap.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use rvm::segment::MemResolver;
//! use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
//! use rvm_alloc::RvmHeap;
//! use rvm_storage::MemDevice;
//!
//! let rvm = Rvm::initialize(
//!     Options::new(Arc::new(MemDevice::with_len(1 << 20)))
//!         .resolver(MemResolver::new().into_resolver())
//!         .create_if_empty(),
//! )
//! .unwrap();
//! let region = rvm.map(&RegionDescriptor::new("heap", 0, 4 * PAGE_SIZE)).unwrap();
//!
//! let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
//! let heap = RvmHeap::format(&region, &mut txn).unwrap();
//! let a = heap.alloc(&region, &mut txn, 100).unwrap();
//! region.write(&mut txn, a, b"persistent bytes").unwrap();
//! txn.commit(CommitMode::Flush).unwrap();
//! ```

use rvm::{Region, Result, RvmError, Transaction};

const MAGIC: u64 = 0x5256_4D48_4541_5031; // "RVMHEAP1"
const NIL: u64 = u64::MAX;

/// Region-offset of the heap header fields.
mod hdr {
    pub const MAGIC: u64 = 0;
    pub const TOTAL: u64 = 8;
    pub const FREE_HEAD: u64 = 16;
    pub const USED_BYTES: u64 = 24;
    pub const ALLOCS: u64 = 32;
    pub const SIZE: u64 = 40;
}

/// Per-block header: size (excluding header) and state.
mod blk {
    /// Block payload size.
    pub const SIZE: u64 = 0;
    /// `1` if allocated, else the offset of the next free block.
    pub const STATE: u64 = 8;
    /// Header bytes before the payload.
    pub const HEADER: u64 = 16;
}

const USED: u64 = 1;
/// Smallest payload worth splitting off as a remainder block.
const MIN_SPLIT: u64 = 32;

/// A heap manager over one mapped region.
///
/// The struct itself is stateless — all state is in recoverable memory —
/// so it is trivially `Clone` and cheap to re-open after a restart.
#[derive(Debug, Clone, Copy)]
pub struct RvmHeap;

/// Point-in-time usage statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Total managed payload capacity.
    pub total_bytes: u64,
    /// Bytes currently allocated (payloads only).
    pub used_bytes: u64,
    /// Live allocations.
    pub allocations: u64,
    /// Blocks on the free list.
    pub free_blocks: u64,
    /// Largest free payload available.
    pub largest_free: u64,
}

impl RvmHeap {
    /// Formats `region` as an empty heap inside `txn`.
    ///
    /// The heap takes over the whole region; existing contents are
    /// clobbered (transactionally — an abort restores them).
    pub fn format(region: &Region, txn: &mut Transaction) -> Result<RvmHeap> {
        let total = region.len();
        if total < hdr::SIZE + blk::HEADER + MIN_SPLIT {
            return Err(RvmError::BadMapping(format!(
                "region of {total} bytes is too small for a heap"
            )));
        }
        region.put_u64(txn, hdr::MAGIC, MAGIC)?;
        region.put_u64(txn, hdr::TOTAL, total)?;
        region.put_u64(txn, hdr::FREE_HEAD, hdr::SIZE)?;
        region.put_u64(txn, hdr::USED_BYTES, 0)?;
        region.put_u64(txn, hdr::ALLOCS, 0)?;
        // One big free block covering the rest.
        let first = hdr::SIZE;
        region.put_u64(txn, first + blk::SIZE, total - hdr::SIZE - blk::HEADER)?;
        region.put_u64(txn, first + blk::STATE, NIL)?;
        Ok(RvmHeap)
    }

    /// Opens an existing heap, validating its header.
    pub fn open(region: &Region) -> Result<RvmHeap> {
        if region.get_u64(hdr::MAGIC)? != MAGIC {
            return Err(RvmError::BadMapping(
                "region does not contain an RVM heap".to_owned(),
            ));
        }
        if region.get_u64(hdr::TOTAL)? != region.len() {
            return Err(RvmError::BadMapping(
                "heap was formatted over a region of a different size".to_owned(),
            ));
        }
        Ok(RvmHeap)
    }

    /// Allocates `size` bytes, returning the payload's region offset.
    ///
    /// First-fit over the free list; the chosen block is split when the
    /// remainder is large enough to be useful.
    pub fn alloc(&self, region: &Region, txn: &mut Transaction, size: u64) -> Result<u64> {
        let size = size.max(1);
        let mut prev = NIL;
        let mut cur = region.get_u64(hdr::FREE_HEAD)?;
        while cur != NIL {
            let block_size = region.get_u64(cur + blk::SIZE)?;
            let next = region.get_u64(cur + blk::STATE)?;
            if block_size >= size {
                // Unlink from the free list.
                let remainder = block_size - size;
                let take_all = remainder < blk::HEADER + MIN_SPLIT;
                let successor = if take_all {
                    next
                } else {
                    // Split: the tail becomes a new free block.
                    let tail = cur + blk::HEADER + size;
                    region.put_u64(txn, tail + blk::SIZE, remainder - blk::HEADER)?;
                    region.put_u64(txn, tail + blk::STATE, next)?;
                    region.put_u64(txn, cur + blk::SIZE, size)?;
                    tail
                };
                if prev == NIL {
                    region.put_u64(txn, hdr::FREE_HEAD, successor)?;
                } else {
                    region.put_u64(txn, prev + blk::STATE, successor)?;
                }
                region.put_u64(txn, cur + blk::STATE, USED)?;
                let payload = if take_all { block_size } else { size };
                let used = region.get_u64(hdr::USED_BYTES)?;
                region.put_u64(txn, hdr::USED_BYTES, used + payload)?;
                let allocs = region.get_u64(hdr::ALLOCS)?;
                region.put_u64(txn, hdr::ALLOCS, allocs + 1)?;
                return Ok(cur + blk::HEADER);
            }
            prev = cur;
            cur = next;
        }
        Err(RvmError::OutOfRange {
            offset: 0,
            len: size,
            region_len: region.len(),
        })
    }

    /// Frees the allocation whose payload starts at `offset`.
    ///
    /// The block is pushed onto the free list head. (Coalescing of
    /// adjacent free blocks happens lazily in [`RvmHeap::coalesce`].)
    pub fn free(&self, region: &Region, txn: &mut Transaction, offset: u64) -> Result<()> {
        let block = offset
            .checked_sub(blk::HEADER)
            .ok_or(RvmError::OutOfRange {
                offset,
                len: 0,
                region_len: region.len(),
            })?;
        if region.get_u64(block + blk::STATE)? != USED {
            return Err(RvmError::OutOfRange {
                offset,
                len: 0,
                region_len: region.len(),
            });
        }
        let size = region.get_u64(block + blk::SIZE)?;
        let head = region.get_u64(hdr::FREE_HEAD)?;
        region.put_u64(txn, block + blk::STATE, head)?;
        region.put_u64(txn, hdr::FREE_HEAD, block)?;
        let used = region.get_u64(hdr::USED_BYTES)?;
        region.put_u64(txn, hdr::USED_BYTES, used.saturating_sub(size))?;
        let allocs = region.get_u64(hdr::ALLOCS)?;
        region.put_u64(txn, hdr::ALLOCS, allocs.saturating_sub(1))?;
        Ok(())
    }

    /// Walks the whole region merging physically adjacent free blocks and
    /// rebuilding the free list in address order. Returns the number of
    /// merges performed.
    pub fn coalesce(&self, region: &Region, txn: &mut Transaction) -> Result<u64> {
        let total = region.get_u64(hdr::TOTAL)?;
        let mut merges = 0u64;
        let mut new_head = NIL;
        let mut last_free: Option<u64> = None;
        let mut prev_free_block: Option<u64> = None;
        let mut cur = hdr::SIZE;
        while cur + blk::HEADER <= total {
            let size = region.get_u64(cur + blk::SIZE)?;
            let state = region.get_u64(cur + blk::STATE)?;
            let next_block = cur + blk::HEADER + size;
            if state != USED {
                if let Some(pf) = prev_free_block {
                    // Physically adjacent to the previous free block: merge.
                    let pf_size = region.get_u64(pf + blk::SIZE)?;
                    region.put_u64(txn, pf + blk::SIZE, pf_size + blk::HEADER + size)?;
                    merges += 1;
                } else {
                    // New free run: link it in address order.
                    if let Some(lf) = last_free {
                        region.put_u64(txn, lf + blk::STATE, cur)?;
                    } else {
                        new_head = cur;
                    }
                    region.put_u64(txn, cur + blk::STATE, NIL)?;
                    last_free = Some(cur);
                    prev_free_block = Some(cur);
                }
            } else {
                prev_free_block = None;
            }
            if next_block <= cur {
                return Err(RvmError::BadMapping(
                    "corrupt heap: non-advancing block chain".to_owned(),
                ));
            }
            cur = next_block;
        }
        region.put_u64(txn, hdr::FREE_HEAD, new_head)?;
        Ok(merges)
    }

    /// Reads usage statistics (no transaction needed).
    pub fn stats(&self, region: &Region) -> Result<HeapStats> {
        let mut free_blocks = 0u64;
        let mut largest = 0u64;
        let mut cur = region.get_u64(hdr::FREE_HEAD)?;
        while cur != NIL {
            free_blocks += 1;
            largest = largest.max(region.get_u64(cur + blk::SIZE)?);
            cur = region.get_u64(cur + blk::STATE)?;
        }
        Ok(HeapStats {
            total_bytes: region.get_u64(hdr::TOTAL)?,
            used_bytes: region.get_u64(hdr::USED_BYTES)?,
            allocations: region.get_u64(hdr::ALLOCS)?,
            free_blocks,
            largest_free: largest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn world() -> (Rvm, Region) {
        let rvm = Rvm::initialize(
            Options::new(Arc::new(MemDevice::with_len(4 << 20)))
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("heap", 0, 16 * PAGE_SIZE))
            .unwrap();
        (rvm, region)
    }

    fn formatted() -> (Rvm, Region, RvmHeap) {
        let (rvm, region) = world();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let heap = RvmHeap::format(&region, &mut txn).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        (rvm, region, heap)
    }

    #[test]
    fn alloc_free_round_trip() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let a = heap.alloc(&region, &mut txn, 100).unwrap();
        let b = heap.alloc(&region, &mut txn, 200).unwrap();
        assert!(b >= a + 100, "allocations must not overlap");
        region.write(&mut txn, a, &[0xAA; 100]).unwrap();
        region.write(&mut txn, b, &[0xBB; 200]).unwrap();
        heap.free(&region, &mut txn, a).unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        let stats = heap.stats(&region).unwrap();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.used_bytes, 200);
        assert_eq!(region.read_vec(b, 200).unwrap(), vec![0xBB; 200]);
    }

    #[test]
    fn allocations_never_overlap_under_churn() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let mut live: Vec<(u64, u64, u8)> = Vec::new();
        for i in 0..200u64 {
            let size = 16 + (i * 13) % 300;
            if i % 3 == 2 && !live.is_empty() {
                let (off, _, _) = live.remove((i as usize * 7) % live.len());
                heap.free(&region, &mut txn, off).unwrap();
            } else {
                let off = heap.alloc(&region, &mut txn, size).unwrap();
                let tag = (i % 251) as u8;
                region
                    .write(&mut txn, off, &vec![tag; size as usize])
                    .unwrap();
                live.push((off, size, tag));
            }
        }
        // Every live allocation still holds its own bytes.
        for (off, size, tag) in &live {
            assert_eq!(
                region.read_vec(*off, *size).unwrap(),
                vec![*tag; *size as usize],
                "allocation at {off} was clobbered"
            );
        }
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn abort_rolls_back_the_heap_structure() {
        let (rvm, region, heap) = formatted();
        let before = heap.stats(&region).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let _ = heap.alloc(&region, &mut txn, 500).unwrap();
        let _ = heap.alloc(&region, &mut txn, 500).unwrap();
        txn.abort().unwrap();
        assert_eq!(heap.stats(&region).unwrap(), before);
    }

    #[test]
    fn heap_survives_restart() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        let offset;
        {
            let rvm = Rvm::initialize(
                Options::new(log.clone())
                    .resolver(segs.clone().into_resolver())
                    .create_if_empty(),
            )
            .unwrap();
            let region = rvm
                .map(&RegionDescriptor::new("heap", 0, 16 * PAGE_SIZE))
                .unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let heap = RvmHeap::format(&region, &mut txn).unwrap();
            offset = heap.alloc(&region, &mut txn, 64).unwrap();
            region.write(&mut txn, offset, b"reborn!!").unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            std::mem::forget(rvm); // crash
        }
        let rvm = Rvm::initialize(
            Options::new(log)
                .resolver(segs.into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("heap", 0, 16 * PAGE_SIZE))
            .unwrap();
        let heap = RvmHeap::open(&region).unwrap();
        assert_eq!(heap.stats(&region).unwrap().allocations, 1);
        assert_eq!(region.read_vec(offset, 8).unwrap(), b"reborn!!");
        // And the heap still works.
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let other = heap.alloc(&region, &mut txn, 64).unwrap();
        assert_ne!(other, offset);
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn open_rejects_unformatted_regions() {
        let (_rvm, region) = world();
        assert!(RvmHeap::open(&region).is_err());
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let mut count = 0;
        while heap.alloc(&region, &mut txn, 1000).is_ok() {
            count += 1;
            assert!(count < 100, "should run out well before 100 KB-blocks");
        }
        // A smaller allocation may still fit.
        assert!(count > 50, "got {count} kilobyte blocks from 64 KiB");
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn free_rejects_bogus_offsets() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        assert!(heap.free(&region, &mut txn, 0).is_err());
        let a = heap.alloc(&region, &mut txn, 32).unwrap();
        heap.free(&region, &mut txn, a).unwrap();
        // Double free is rejected (the block is no longer marked used).
        assert!(heap.free(&region, &mut txn, a).is_err());
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn coalesce_merges_adjacent_free_blocks() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let offs: Vec<u64> = (0..8)
            .map(|_| heap.alloc(&region, &mut txn, 100).unwrap())
            .collect();
        for &o in &offs {
            heap.free(&region, &mut txn, o).unwrap();
        }
        let frag = heap.stats(&region).unwrap();
        assert!(frag.free_blocks >= 8);
        let merges = heap.coalesce(&region, &mut txn).unwrap();
        assert!(merges >= 7, "expected near-total merging, got {merges}");
        let after = heap.stats(&region).unwrap();
        assert_eq!(after.free_blocks, 1);
        assert_eq!(after.used_bytes, 0);
        // The whole region (minus headers) is one block again.
        assert!(after.largest_free > region.len() - 64);
        txn.commit(CommitMode::Flush).unwrap();
    }

    #[test]
    fn split_reuses_remainders() {
        let (rvm, region, heap) = formatted();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let big = heap.alloc(&region, &mut txn, 10_000).unwrap();
        heap.free(&region, &mut txn, big).unwrap();
        // Allocating small out of the freed block must split it, leaving
        // room for more.
        let a = heap.alloc(&region, &mut txn, 100).unwrap();
        let b = heap.alloc(&region, &mut txn, 100).unwrap();
        assert_ne!(a, b);
        let stats = heap.stats(&region).unwrap();
        assert!(stats.largest_free > 5_000);
        txn.commit(CommitMode::Flush).unwrap();
    }
}
