//! `rvm-lint` — standalone driver for the workspace static analyzer.
//! `rvmlog lint` wraps the same [`rvm_lint::cli_main`].

use std::process::exit;

pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    exit(rvm_lint::cli_main(&args));
}
