//! Pass 1 — lock-order: every acquisition site vs the canonical order.
//!
//! Within each non-test function the pass tracks which lock guards are
//! live at every token:
//!
//! * `let g = x.lock();` binds a guard until the end of its block (or an
//!   explicit `drop(g)`);
//! * a bare `x.lock().f()` temporary lives to the end of the statement;
//! * temporaries in `if let` / `while let` conditions and `match`
//!   scrutinees live to the end of the construct's block (Rust ≤2021
//!   temporary-scope rules — exactly the footgun that makes this worth
//!   checking); plain `if` / `while` conditions drop at the `{`.
//!
//! Acquiring lock B while holding A demands `rank(A) < rank(B)`. Edges
//! are also derived interprocedurally: a call made while holding A to a
//! function whose transitive acquisition set contains B is an A→B edge
//! (this is the shape of the `query` check→core inversion PR 4 fixed by
//! hand). Undeclared locks, re-acquisition of a held lock, and condvar
//! waits that hold extra locks or park on the wrong lock are findings.

use std::collections::{HashMap, HashSet};

use crate::config::LockOrder;
use crate::findings::{Finding, IdSpace, Pass};
use crate::items::FileModel;
use crate::lexer::{Kind, Tok};
use crate::passes::{
    brace_match, call_sites, chain_matches, fn_key, in_regions, paren_match, receiver_chain,
    spawn_regions, CallGraph,
};

const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];
const WAIT_METHODS: [&str; 4] = ["wait", "wait_for", "wait_while", "wait_until"];

/// An acquisition site.
struct Acq {
    /// Token index of the method-name ident.
    at: usize,
    /// Index into `order.locks`, or `None` for an undeclared lock.
    decl: Option<usize>,
    chain: String,
    line: u32,
}

/// A live guard during the walk.
struct Guard {
    decl: usize,
    name: Option<String>,
    /// Token index after which the guard is dead.
    until: usize,
    line: u32,
}

fn match_decl(order: &LockOrder, chain: &[String], method: &str) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (pattern len, decl idx)
    for (i, l) in order.locks.iter().enumerate() {
        for p in &l.patterns {
            let (fields, m) = p.rsplit_once('.').unwrap_or(("", p));
            if m != method {
                continue;
            }
            let fields: Vec<&str> = fields.split('.').collect();
            if chain_matches(chain, &fields) && best.is_none_or(|(n, _)| fields.len() > n) {
                best = Some((fields.len(), i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// Scans a body for guard-method acquisition sites. Acquisitions inside
/// `spawn(...)` arguments belong to the spawned thread and are skipped —
/// the spawned function's own body is analyzed in its own right.
fn acquisitions(order: &LockOrder, toks: &[Tok], open: usize, close: usize) -> Vec<Acq> {
    let spawns = spawn_regions(toks, open, close);
    let mut out = Vec::new();
    for i in open + 1..close.saturating_sub(0) {
        let t = &toks[i];
        if t.kind != Kind::Ident || !GUARD_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if in_regions(&spawns, i) {
            continue;
        }
        // `.m()` with *empty* parens: RwLock/Mutex acquisition arity.
        // (`device.read(buf)` and friends take arguments.)
        if i == 0
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || !toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            continue;
        }
        let chain = receiver_chain(toks, i - 1);
        if chain.is_empty() {
            continue;
        }
        out.push(Acq {
            at: i,
            decl: match_decl(order, &chain, &t.text),
            chain: chain.join("."),
            line: t.line,
        });
    }
    out
}

/// Next `;` at paren depth 0, starting from `from` (exclusive bound
/// `close`).
fn next_semi(toks: &[Tok], from: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < close {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return i;
        }
        i += 1;
    }
    close
}

/// First `{` at paren depth 0 from `from`.
fn next_block_open(toks: &[Tok], from: usize, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    while i < close {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct('{') {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Per-function lock summary for the interprocedural step.
#[derive(Default, Clone)]
pub struct FnLocks {
    pub direct: HashSet<usize>,
}

pub struct Analysis<'a> {
    pub order: &'a LockOrder,
    /// fn key -> transitively acquired decl indices.
    pub closure: HashMap<String, HashSet<usize>>,
    pub graph: CallGraph,
    pub resolved: HashMap<String, String>,
}

/// Builds summaries + transitive closure over the file set.
pub fn analyze<'a>(order: &'a LockOrder, files: &[&FileModel]) -> Analysis<'a> {
    let mut direct: HashMap<String, HashSet<usize>> = HashMap::new();
    for fm in files {
        for f in fm.fns.iter().filter(|f| !f.is_test) {
            let Some((open, close)) = f.body else {
                continue;
            };
            let set: HashSet<usize> = acquisitions(order, &fm.lexed.toks, open, close)
                .into_iter()
                .filter_map(|a| a.decl)
                .collect();
            direct.insert(fn_key(&fm.path, &f.qual), set);
        }
    }
    let (graph, resolved) = CallGraph::build(files);
    // Fixpoint: propagate callee sets into callers.
    let mut closure = direct.clone();
    loop {
        let mut changed = false;
        let keys: Vec<String> = closure.keys().cloned().collect();
        for k in keys {
            let mut add: HashSet<usize> = HashSet::new();
            for callee in graph.calls.get(&k).into_iter().flatten() {
                if let Some(s) = closure.get(callee) {
                    add.extend(s.iter().copied());
                }
            }
            let e = closure.entry(k).or_default();
            let before = e.len();
            e.extend(add);
            changed |= e.len() != before;
        }
        if !changed {
            break;
        }
    }
    Analysis {
        order,
        closure,
        graph,
        resolved,
    }
}

/// Runs the pass over `files` (typically `crates/core`).
pub fn run(order: &LockOrder, files: &[&FileModel]) -> Vec<Finding> {
    let analysis = analyze(order, files);
    let mut findings = Vec::new();
    let mut ids = IdSpace::default();
    for fm in files {
        check_file(&analysis, fm, &mut ids, &mut findings);
    }
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    ids: &mut IdSpace,
    fm: &FileModel,
    function: &str,
    line: u32,
    detail: &str,
    message: String,
) {
    if fm.lexed.allowed(Pass::LockOrder.slug(), line) {
        return;
    }
    findings.push(Finding {
        id: ids.id(Pass::LockOrder, &fm.path, function, detail),
        pass: Pass::LockOrder,
        file: fm.path.clone(),
        line,
        function: function.to_string(),
        message,
    });
}

fn check_file(a: &Analysis, fm: &FileModel, ids: &mut IdSpace, findings: &mut Vec<Finding>) {
    let toks = &fm.lexed.toks;
    let braces = brace_match(toks);
    let order = a.order;
    // Undeclared locks are reported once per (file, chain, method).
    let mut undeclared_seen: HashSet<String> = HashSet::new();

    for f in fm.fns.iter().filter(|f| !f.is_test) {
        let Some((open, close)) = f.body else {
            continue;
        };
        let acqs = acquisitions(order, toks, open, close);
        let acq_at: HashMap<usize, usize> =
            acqs.iter().enumerate().map(|(n, a)| (a.at, n)).collect();
        let calls: HashSet<usize> = call_sites(toks, open, close).into_iter().collect();
        let spawns = spawn_regions(toks, open, close);
        let mut guards: Vec<Guard> = Vec::new();
        // Per-function edge dedup.
        let mut seen_edges: HashSet<String> = HashSet::new();
        let mut blocks: Vec<usize> = Vec::new(); // open-brace token indices
        let mut stmt_start = open + 1;

        let mut i = open + 1;
        while i < close {
            // Skip spawned-closure bodies wholesale: they run on another
            // thread (guard extents and brace balance are unaffected —
            // the argument group is balanced).
            if let Some(&(_, end)) = spawns.iter().find(|&&(a, _)| a == i) {
                i = end + 1;
                continue;
            }
            let t = &toks[i];
            guards.retain(|g| g.until > i);
            if t.is_punct('{') {
                blocks.push(i);
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                blocks.pop();
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            if t.is_punct(';') {
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            // drop(g) ends a named guard early.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                let name = &toks[i + 2].text;
                guards.retain(|g| g.name.as_deref() != Some(name));
                i += 4;
                continue;
            }
            // Condvar waits.
            if t.kind == Kind::Ident
                && WAIT_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                let chain = receiver_chain(toks, i - 1);
                let cv = order
                    .condvars
                    .iter()
                    .find(|c| chain.last().is_some_and(|l| l == &c.pattern));
                // The parked guard: first ident inside the parens after
                // optional `&` / `mut`.
                let mut j = i + 2;
                while toks
                    .get(j)
                    .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
                {
                    j += 1;
                }
                let parked = toks
                    .get(j)
                    .filter(|x| x.kind == Kind::Ident)
                    .map(|x| x.text.clone());
                let parked_guard = guards
                    .iter()
                    .filter(|g| g.name.is_some() && g.name == parked)
                    .map(|g| g.decl)
                    .next();
                if let Some(cv) = cv {
                    if let Some(pd) = parked_guard {
                        if order.locks[pd].name != cv.parks {
                            push(
                                findings,
                                ids,
                                fm,
                                &f.qual,
                                t.line,
                                &format!("cv:{}!={}", cv.name, order.locks[pd].name),
                                format!(
                                    "condvar `{}` parks on `{}` here but is declared to park on `{}`",
                                    cv.name, order.locks[pd].name, cv.parks
                                ),
                            );
                        }
                    }
                    let extra: Vec<&str> = guards
                        .iter()
                        .filter(|g| g.name != parked || g.name.is_none())
                        .map(|g| order.locks[g.decl].name.as_str())
                        .collect();
                    if !extra.is_empty() {
                        push(
                            findings,
                            ids,
                            fm,
                            &f.qual,
                            t.line,
                            &format!("cv-hold:{}:{}", cv.name, extra.join("+")),
                            format!(
                                "condvar `{}` wait while still holding {} — a blocked wait \
                                 keeps those locks held across the park",
                                cv.name,
                                extra.join(", ")
                            ),
                        );
                    }
                }
                i += 1;
                continue;
            }
            // Calls made while holding locks: consult callee closures.
            if calls.contains(&i) && !guards.is_empty() {
                if let Some(callee_key) = a.resolved.get(&t.text) {
                    // A callee that *is* this function doesn't add edges.
                    if callee_key != &fn_key(&fm.path, &f.qual) {
                        if let Some(acquired) = a.closure.get(callee_key) {
                            for g in &guards {
                                for &b in acquired {
                                    let (ra, rb) = (order.locks[g.decl].rank, order.locks[b].rank);
                                    if rb <= ra {
                                        let detail = format!(
                                            "{}->{} via {}",
                                            order.locks[g.decl].name, order.locks[b].name, t.text
                                        );
                                        if seen_edges.insert(detail.clone()) {
                                            let msg = if g.decl == b {
                                                format!(
                                                    "holding `{}` (rank {ra}, acquired line {}) across a call \
                                                     to `{}`, which (transitively) re-acquires `{}`",
                                                    order.locks[g.decl].name, g.line, t.text,
                                                    order.locks[b].name
                                                )
                                            } else {
                                                format!(
                                                    "holding `{}` (rank {ra}, acquired line {}) across a call \
                                                     to `{}`, which (transitively) acquires `{}` (rank {rb}) — \
                                                     contradicts the canonical order",
                                                    order.locks[g.decl].name, g.line, t.text,
                                                    order.locks[b].name
                                                )
                                            };
                                            push(findings, ids, fm, &f.qual, t.line, &detail, msg);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Direct acquisitions.
            if let Some(&ai) = acq_at.get(&i) {
                let acq = &acqs[ai];
                match acq.decl {
                    None => {
                        let key = format!("{}|{}.{}", fm.path, acq.chain, t.text);
                        if undeclared_seen.insert(key) {
                            push(
                                findings,
                                ids,
                                fm,
                                &f.qual,
                                acq.line,
                                &format!("undeclared:{}.{}", acq.chain, t.text),
                                format!(
                                    "acquisition `{}.{}()` matches no lock declared in \
                                     lockorder.toml — declare it (with a rank) or rename",
                                    acq.chain, t.text
                                ),
                            );
                        }
                    }
                    Some(d) => {
                        for g in &guards {
                            let (ra, rb) = (order.locks[g.decl].rank, order.locks[d].rank);
                            if g.decl == d {
                                let detail = format!("reacquire:{}", order.locks[d].name);
                                if seen_edges.insert(detail.clone()) {
                                    push(
                                        findings,
                                        ids,
                                        fm,
                                        &f.qual,
                                        acq.line,
                                        &detail,
                                        format!(
                                            "`{}` re-acquired while already held (acquired line {}) — \
                                             parking_lot locks are not reentrant",
                                            order.locks[d].name, g.line
                                        ),
                                    );
                                }
                            } else if ra >= rb {
                                let detail = format!(
                                    "{}->{}",
                                    order.locks[g.decl].name, order.locks[d].name
                                );
                                if seen_edges.insert(detail.clone()) {
                                    push(
                                        findings,
                                        ids,
                                        fm,
                                        &f.qual,
                                        acq.line,
                                        &detail,
                                        format!(
                                            "acquires `{}` (rank {rb}) while holding `{}` (rank {ra}, \
                                             acquired line {}) — contradicts the canonical order",
                                            order.locks[d].name, order.locks[g.decl].name, g.line
                                        ),
                                    );
                                }
                            }
                        }
                        // Model the new guard's extent.
                        let cp = paren_match(toks, acq.at + 1);
                        let (name, until) = guard_extent(
                            toks,
                            braces
                                .get(&blocks.last().copied().unwrap_or(open))
                                .copied()
                                .unwrap_or(close),
                            stmt_start,
                            acq,
                            cp,
                            close,
                        );
                        guards.push(Guard {
                            decl: d,
                            name,
                            until,
                            line: acq.line,
                        });
                    }
                }
            }
            i += 1;
        }
    }
}

/// Decides how long an acquisition's guard lives. Returns the guard's
/// binding name (for `drop()` and condvar matching) and the token index
/// after which it dies.
fn guard_extent(
    toks: &[Tok],
    enclosing_block_close: usize,
    stmt_start: usize,
    acq: &Acq,
    close_paren: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    let st = &toks[stmt_start];
    // `let [mut] name = <chain>.lock();` — a real binding only when the
    // guard itself is stored: the call must end the statement (`;` right
    // after the parens) and must not be deref-copied (`*`).
    if st.is_ident("let") {
        let mut j = stmt_start + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = toks
            .get(j)
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone());
        let eq = toks.get(j + 1).is_some_and(|t| t.is_punct('='));
        let ends_stmt = toks.get(close_paren + 1).is_some_and(|t| t.is_punct(';'));
        let derefed = toks[stmt_start..acq.at].iter().any(|t| t.is_punct('*'));
        if name.is_some() && eq && ends_stmt && !derefed {
            return (name, enclosing_block_close.min(body_close));
        }
        // Bound through a combinator (`.take()`, `*deref`): temporary.
        return (None, next_semi(toks, close_paren, body_close));
    }
    // `if let` / `while let` / `match`: the temporary lives to the end
    // of the construct's block (≤2021 rules). Plain `if`/`while`: drops
    // at the `{`.
    let is_match = st.is_ident("match");
    let is_if_while = st.is_ident("if") || st.is_ident("while");
    let has_let = is_if_while && toks[stmt_start..acq.at].iter().any(|t| t.is_ident("let"));
    if is_match || has_let {
        if let Some(bo) = next_block_open(toks, close_paren, body_close) {
            let bc = {
                // Match the block open.
                let mut depth = 0i32;
                let mut k = bo;
                loop {
                    if k >= body_close {
                        break body_close;
                    }
                    if toks[k].is_punct('{') {
                        depth += 1;
                    } else if toks[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    k += 1;
                }
            };
            return (None, bc);
        }
    }
    if is_if_while {
        let bo = next_block_open(toks, close_paren, body_close).unwrap_or(body_close);
        return (None, bo);
    }
    (None, next_semi(toks, close_paren, body_close))
}
