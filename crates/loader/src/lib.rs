//! The segment loader package (§4.1).
//!
//! "A segment loader package, built on top of RVM, allows the creation and
//! maintenance of a load map for recoverable storage and takes care of
//! mapping a segment into the same base address each time. This simplifies
//! the use of absolute pointers in segments."
//!
//! A Rust process cannot promise a fixed *hardware* address for a heap
//! allocation, so the loader recreates the same guarantee one level up:
//! every segment is assigned a **stable virtual base** — a 64-bit address
//! in a private, non-overlapping range recorded in the load map, which
//! itself lives in recoverable memory. "Absolute pointers" stored inside
//! segments are these stable addresses ([`PersistentPtr`]); the loader
//! translates them to `(Region, offset)` pairs on every run, no matter
//! where the region's memory really landed.

use std::collections::HashMap;

use rvm::{
    CommitMode, Region, RegionDescriptor, Result, Rvm, RvmError, Transaction, TxnMode, PAGE_SIZE,
};

const MAGIC: u64 = 0x5256_4D4C_4F41_4431; // "RVMLOAD1"
/// Segments get bases `BASE_ORIGIN + index * BASE_STRIDE`.
const BASE_ORIGIN: u64 = 0x5000_0000_0000;
const BASE_STRIDE: u64 = 1 << 40;

/// A stable pointer into recoverable storage: meaningful across process
/// lifetimes, resolved through the [`Loader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistentPtr(pub u64);

impl PersistentPtr {
    /// The null persistent pointer.
    pub const NULL: PersistentPtr = PersistentPtr(0);

    /// Returns `true` for the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// One load-map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadMapEntry {
    /// Segment name.
    pub name: String,
    /// Stable virtual base assigned to the segment.
    pub base: u64,
    /// Region length recorded at first load.
    pub len: u64,
}

/// A loaded segment: its mapped region plus its stable base.
#[derive(Clone)]
pub struct LoadedSegment {
    /// The mapped region.
    pub region: Region,
    /// The segment's stable virtual base.
    pub base: u64,
}

impl LoadedSegment {
    /// Builds a persistent pointer to `offset` within this segment.
    pub fn ptr_to(&self, offset: u64) -> PersistentPtr {
        PersistentPtr(self.base + offset)
    }
}

/// The segment loader: a persistent load map plus the segments loaded in
/// this incarnation.
pub struct Loader {
    map_region: Region,
    entries: Vec<LoadMapEntry>,
    loaded: HashMap<String, LoadedSegment>,
}

/// Load-map wire format inside its one-page region:
/// `magic u64 | count u64 | entries*`, each entry
/// `base u64 | len u64 | name_len u64 | name bytes`.
fn encode_entries(entries: &[LoadMapEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        buf.extend_from_slice(&e.base.to_le_bytes());
        buf.extend_from_slice(&e.len.to_le_bytes());
        buf.extend_from_slice(&(e.name.len() as u64).to_le_bytes());
        buf.extend_from_slice(e.name.as_bytes());
    }
    buf
}

fn decode_entries(buf: &[u8]) -> Option<Vec<LoadMapEntry>> {
    let get = |at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
    };
    if get(0)? != MAGIC {
        return None;
    }
    let count = get(8)? as usize;
    let mut entries = Vec::with_capacity(count);
    let mut at = 16;
    for _ in 0..count {
        let base = get(at)?;
        let len = get(at + 8)?;
        let name_len = get(at + 16)? as usize;
        let name = String::from_utf8(buf.get(at + 24..at + 24 + name_len)?.to_vec()).ok()?;
        entries.push(LoadMapEntry { name, base, len });
        at += 24 + name_len;
    }
    Some(entries)
}

impl Loader {
    /// Opens (creating if necessary) the load map stored in the named
    /// segment's first page.
    pub fn open(rvm: &Rvm, map_segment: &str) -> Result<Loader> {
        let map_region = rvm.map(&RegionDescriptor::new(map_segment, 0, PAGE_SIZE))?;
        let image = map_region.read_vec(0, PAGE_SIZE)?;
        let entries = match decode_entries(&image) {
            Some(entries) => entries,
            None => {
                // Fresh map: persist an empty one.
                let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
                map_region.write(&mut txn, 0, &encode_entries(&[]))?;
                txn.commit(CommitMode::Flush)?;
                Vec::new()
            }
        };
        Ok(Loader {
            map_region,
            entries,
            loaded: HashMap::new(),
        })
    }

    /// The persistent load map.
    pub fn entries(&self) -> &[LoadMapEntry] {
        &self.entries
    }

    fn persist(&self, rvm: &Rvm) -> Result<()> {
        let buf = encode_entries(&self.entries);
        if buf.len() as u64 > PAGE_SIZE {
            return Err(RvmError::SegmentTableFull);
        }
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        self.map_region.write(&mut txn, 0, &buf)?;
        txn.commit(CommitMode::Flush)?;
        Ok(())
    }

    /// Loads (maps) a segment at its stable base, assigning one on first
    /// load. The recorded length must match on later loads.
    pub fn load(&mut self, rvm: &Rvm, name: &str, len: u64) -> Result<LoadedSegment> {
        if let Some(seg) = self.loaded.get(name) {
            return Ok(seg.clone());
        }
        let entry = match self.entries.iter().find(|e| e.name == name) {
            Some(e) => {
                if e.len != len {
                    return Err(RvmError::BadMapping(format!(
                        "segment '{name}' was recorded with length {} but loaded with {len}",
                        e.len
                    )));
                }
                e.clone()
            }
            None => {
                let entry = LoadMapEntry {
                    name: name.to_owned(),
                    base: BASE_ORIGIN + self.entries.len() as u64 * BASE_STRIDE,
                    len,
                };
                self.entries.push(entry.clone());
                self.persist(rvm)?;
                entry
            }
        };
        let region = rvm.map(&RegionDescriptor::new(name, 0, len))?;
        let seg = LoadedSegment {
            region,
            base: entry.base,
        };
        self.loaded.insert(name.to_owned(), seg.clone());
        Ok(seg)
    }

    /// Resolves a persistent pointer to the region and offset it points
    /// into, if that segment is loaded.
    pub fn resolve(&self, ptr: PersistentPtr) -> Option<(&LoadedSegment, u64)> {
        if ptr.is_null() {
            return None;
        }
        self.loaded.values().find_map(|seg| {
            let offset = ptr.0.checked_sub(seg.base)?;
            (offset < seg.region.len()).then_some((seg, offset))
        })
    }

    /// Reads `len` bytes through a persistent pointer.
    pub fn read_ptr(&self, ptr: PersistentPtr, len: u64) -> Result<Vec<u8>> {
        let (seg, offset) = self.resolve(ptr).ok_or(RvmError::Unmapped)?;
        seg.region.read_vec(offset, len)
    }

    /// Writes bytes through a persistent pointer inside `txn`.
    pub fn write_ptr(&self, txn: &mut Transaction, ptr: PersistentPtr, data: &[u8]) -> Result<()> {
        let (seg, offset) = self.resolve(ptr).ok_or(RvmError::Unmapped)?;
        seg.region.write(txn, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::Options;
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn boot(log: &Arc<MemDevice>, segs: &MemResolver) -> Rvm {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap()
    }

    #[test]
    fn bases_are_stable_across_restarts() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        let (base_a, base_b);
        {
            let rvm = boot(&log, &segs);
            let mut loader = Loader::open(&rvm, "loadmap").unwrap();
            base_a = loader.load(&rvm, "segA", PAGE_SIZE).unwrap().base;
            base_b = loader.load(&rvm, "segB", 2 * PAGE_SIZE).unwrap().base;
            assert_ne!(base_a, base_b);
            rvm.terminate().unwrap();
        }
        let rvm = boot(&log, &segs);
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        assert_eq!(loader.entries().len(), 2);
        assert_eq!(
            loader.load(&rvm, "segB", 2 * PAGE_SIZE).unwrap().base,
            base_b
        );
        assert_eq!(loader.load(&rvm, "segA", PAGE_SIZE).unwrap().base, base_a);
    }

    #[test]
    fn persistent_pointers_survive_restarts() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        let ptr;
        {
            let rvm = boot(&log, &segs);
            let mut loader = Loader::open(&rvm, "loadmap").unwrap();
            let seg = loader.load(&rvm, "data", PAGE_SIZE).unwrap();
            ptr = seg.ptr_to(128);
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            loader.write_ptr(&mut txn, ptr, b"pointed-at").unwrap();
            // Store the pointer itself in recoverable memory too.
            seg.region.put_u64(&mut txn, 0, ptr.0).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            rvm.terminate().unwrap();
        }
        let rvm = boot(&log, &segs);
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        let seg = loader.load(&rvm, "data", PAGE_SIZE).unwrap();
        let stored = PersistentPtr(seg.region.get_u64(0).unwrap());
        assert_eq!(stored, ptr, "the stored absolute pointer still resolves");
        assert_eq!(loader.read_ptr(stored, 10).unwrap(), b"pointed-at");
    }

    #[test]
    fn length_mismatch_is_rejected_across_incarnations() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        {
            let rvm = boot(&log, &segs);
            let mut loader = Loader::open(&rvm, "loadmap").unwrap();
            loader.load(&rvm, "seg", PAGE_SIZE).unwrap();
            rvm.terminate().unwrap();
        }
        let rvm = boot(&log, &segs);
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        let Err(err) = loader.load(&rvm, "seg", 2 * PAGE_SIZE) else {
            panic!("length mismatch must be rejected");
        };
        assert!(matches!(err, RvmError::BadMapping(_)));
    }

    #[test]
    fn resolve_rejects_null_and_foreign_pointers() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        let rvm = boot(&log, &segs);
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        let seg = loader.load(&rvm, "seg", PAGE_SIZE).unwrap();
        assert!(loader.resolve(PersistentPtr::NULL).is_none());
        assert!(loader.resolve(PersistentPtr(123)).is_none());
        assert!(loader.resolve(seg.ptr_to(0)).is_some());
        assert!(
            loader.resolve(seg.ptr_to(PAGE_SIZE)).is_none(),
            "one past end"
        );
    }

    #[test]
    fn loading_twice_returns_the_same_mapping() {
        let log = Arc::new(MemDevice::with_len(4 << 20));
        let segs = MemResolver::new();
        let rvm = boot(&log, &segs);
        let mut loader = Loader::open(&rvm, "loadmap").unwrap();
        let a = loader.load(&rvm, "seg", PAGE_SIZE).unwrap();
        let b = loader.load(&rvm, "seg", PAGE_SIZE).unwrap();
        assert_eq!(a.base, b.base);
        // Same underlying mapping (no duplicate-map error).
        assert_eq!(a.region.segment_name(), b.region.segment_name());
    }
}
