//! File-backed device.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::{Device, DeviceError, Result};

/// A device backed by a regular file (or, on Unix, a raw block device node).
///
/// Durability is provided by `fdatasync`; this mirrors the paper's reliance
/// on "the correct implementation of the `fsync` system call" (§3.3).
///
/// # Examples
///
/// ```no_run
/// use rvm_storage::{Device, FileDevice};
///
/// let dev = FileDevice::create("/tmp/rvm.log", 4 << 20).unwrap();
/// dev.write_at(0, b"hello").unwrap();
/// dev.sync().unwrap();
/// ```
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    path: PathBuf,
}

impl FileDevice {
    /// Opens an existing file for read/write access.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        Ok(Self {
            file,
            path: path.as_ref().to_owned(),
        })
    }

    /// Creates (or truncates) a file of exactly `len` zero-filled bytes.
    pub fn create<P: AsRef<Path>>(path: P, len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(len)?;
        Ok(Self {
            file,
            path: path.as_ref().to_owned(),
        })
    }

    /// Opens `path` if it exists, otherwise creates it with `len` bytes.
    pub fn open_or_create<P: AsRef<Path>>(path: P, len: u64) -> Result<Self> {
        if path.as_ref().exists() {
            Self::open(path)
        } else {
            Self::create(path, len)
        }
    }

    /// Returns the path this device was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Device for FileDevice {
    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let device_len = self.len()?;
        let end = offset.checked_add(buf.len() as u64);
        if end.is_none() || end.unwrap() > device_len {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                device_len,
            });
        }
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let device_len = self.len()?;
        let end = offset.checked_add(data.len() as u64);
        if end.is_none() || end.unwrap() > device_len {
            return Err(DeviceError::OutOfBounds {
                offset,
                len: data.len() as u64,
                device_len,
            });
        }
        self.file.write_all_at(data, offset)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rvm-storage-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn create_write_read() {
        let path = temp_path("crw");
        let dev = FileDevice::create(&path, 64).unwrap();
        assert_eq!(dev.len().unwrap(), 64);
        dev.write_at(10, b"persist").unwrap();
        dev.sync().unwrap();
        drop(dev);

        let dev = FileDevice::open(&path).unwrap();
        let mut buf = [0u8; 7];
        dev.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"persist");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let path = temp_path("bounds");
        let dev = FileDevice::create(&path, 8).unwrap();
        assert!(matches!(
            dev.write_at(6, &[0; 4]).unwrap_err(),
            DeviceError::OutOfBounds { .. }
        ));
        assert!(matches!(
            dev.read_at(9, &mut [0; 1]).unwrap_err(),
            DeviceError::OutOfBounds { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_reuses_contents() {
        let path = temp_path("ooc");
        {
            let dev = FileDevice::open_or_create(&path, 16).unwrap();
            dev.write_at(0, &[42]).unwrap();
        }
        let dev = FileDevice::open_or_create(&path, 16).unwrap();
        let mut b = [0u8; 1];
        dev.read_at(0, &mut b).unwrap();
        assert_eq!(b[0], 42);
        std::fs::remove_file(&path).unwrap();
    }
}
