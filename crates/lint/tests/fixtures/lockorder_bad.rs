// Known-bad fixture for the lock-order pass. Each function is one
// conviction the fixture test pins down.

/// The historical `query` shape: `check` held across a `core`
/// acquisition (rank 25 -> rank 10, against the order).
fn check_then_core(shared: &Shared) -> u64 {
    let state = shared.check.lock();
    let core = shared.core.lock();
    state.snapshots.len() as u64 + core.seq
}

/// Re-acquisition: parking_lot mutexes are not reentrant.
fn core_reentrant(shared: &Shared) {
    let a = shared.core.lock();
    let b = shared.core.lock();
    drop(a);
    drop(b);
}

/// Inversion through a call: holding `page_vector` while calling a
/// helper whose transitive closure takes `mem_lock`.
fn vector_then_helper(region: &Region) {
    let pv = region.page_vector.lock();
    helper_touches_memory(region);
    drop(pv);
}

fn helper_touches_memory(region: &Region) {
    let _guard = region.mem_lock.write();
}

/// `if let` scrutinee temporary: the guard lives to the end of the
/// construct's block (Rust <= 2021 rules), so the `core` acquisition
/// inside the block happens with `check` still held.
fn if_let_extends_guard(shared: &Shared) {
    if let Some(snap) = shared.check.lock().snapshots.first() {
        let _core = shared.core.lock();
        consume(snap);
    }
}

/// Acquiring a lock nobody declared in lockorder.toml.
fn undeclared_lock(shared: &Shared) {
    let _g = shared.secret_side_table.lock();
}
