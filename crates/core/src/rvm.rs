//! The top-level RVM instance: initialization, mapping, commit paths,
//! flushing, and truncation (Figure 4's operation set).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use rvm_storage::Device;

use crate::check::{self, CheckState, CheckViolation};
use crate::error::{Result, RvmError};
use crate::group::{GroupCommit, GroupSlot, SlotWork};
use crate::log::record::{self, RecordRange};
use crate::log::status::{format_log, read_status, write_status, StatusBlock, LOG_AREA_START};
use crate::log::wal::{scan_forward, AppendInfo, StagingBuf, Wal, WalCheckpoint};
use crate::options::{CommitMode, LoadPolicy, Options, Tuning, TxnMode, PAGE_SIZE};
use crate::pipeline::{InFlightBatch, LogPipeline};
use crate::query::{LogInfo, QueryInfo};
use crate::ranges::{ByteRange, RangeSet};
use crate::recovery::{build_latest_trees, recover, RecoveryReport};
use crate::region::{Region, RegionDescriptor, RegionInner, RegionMemory};
use crate::retry::{retry_resolver, Retrier, RetryDevice};
use crate::scrub::{
    apply_tree_verified, read_page_verified, sidecar_name, ApplyContext, ApplyOutcome, ScrubReport,
    SegmentChecksums,
};
use crate::segment::{DeviceResolver, SegmentId, SegmentInfo};
use crate::spool::{Spool, SpooledTxn};
use crate::stats::{batch_size_bucket, Stats, StatsSnapshot};
use crate::truncation::page_vector::PageVector;
use crate::truncation::{PageDesc, PageQueue};
use crate::txn::{Transaction, TxnRegion};

/// Pages written per incremental-truncation sync batch.
const INCREMENTAL_BATCH_PAGES: usize = 32;

/// The held core lock. Functions that may *release and reacquire* the
/// lock (waiting out an in-flight epoch truncation) take this guard type;
/// functions that only mutate state take plain `&mut Core`.
type CoreGuard<'a> = MutexGuard<'a, Core>;

/// State guarded by the single "core" lock: the WAL, the segment table,
/// the spool, and the page queue. One lock serializes commits, exactly as
/// the C library serialized its log with an internal mutex.
pub(crate) struct Core {
    wal: Wal,
    status_seq: u64,
    segments: Vec<SegmentInfo>,
    seg_devices: HashMap<u32, Arc<dyn Device>>,
    /// Checksum catalogs for resolved segments (empty with
    /// [`Tuning::segment_checksums`] off).
    seg_catalogs: HashMap<u32, Arc<SegmentChecksums>>,
    spool: Spool,
    page_queue: PageQueue,
    /// Segments referenced by live (untruncated) log records.
    segs_in_log: HashSet<u32>,
    /// The in-flight concurrent epoch truncation, if any (§5.1.2,
    /// Figure 6: the old epoch is applied to segments while forward
    /// processing continues in the rest of the log).
    epoch: Option<EpochInFlight>,
    /// Bumped by any thread that releases and reacquires the core lock
    /// inside [`RvmShared::append_with_space`] (waiting out an in-flight
    /// epoch). A group-commit leader compares it against the value at
    /// its WAL checkpoint: if it changed, other committers' records may
    /// have interleaved and the checkpoint is no longer a rollback point.
    wait_generation: u64,
}

/// A concurrent epoch truncation in flight: the frozen span
/// `[wal.head(), end)` is being scanned and applied to data segments with
/// the core lock *released*. The head does not move and nothing in the
/// span can be overwritten meanwhile, because free-space accounting still
/// counts the span as live; and everything in it is fully written and
/// forced, because records are appended and forced under a single lock
/// hold.
struct EpochInFlight {
    /// Exclusive logical end of the frozen span.
    end: u64,
    /// `next_seq` the log had at `end` when the epoch was snapshotted
    /// (becomes `seq_at_head` when the head advances to `end`).
    next_seq: u64,
    /// Segments referenced by frozen-span records (restored on failure).
    segs: HashSet<u32>,
    /// Page-queue descriptors covered by the frozen span, drained at
    /// snapshot time so commits landing during the apply re-enqueue
    /// their pages with new-epoch offsets.
    drained: Vec<PageDesc>,
}

/// Shared library state behind [`Rvm`] handles and live transactions.
pub(crate) struct RvmShared {
    dev: Arc<dyn Device>,
    resolver: DeviceResolver,
    pub(crate) tuning: RwLock<Tuning>,
    pub(crate) stats: Stats,
    core: Mutex<Core>,
    /// The group-commit queue (see [`crate::group`]). Its lock is never
    /// held while acquiring `core` or vice versa.
    group: GroupCommit,
    regions: RwLock<HashMap<u64, Arc<RegionInner>>>,
    /// Debug-mode checker state (snapshots, declared ranges, violations).
    /// Lock order: `regions` → `check` → region memory locks; never taken
    /// while holding `core`.
    check: Mutex<CheckState>,
    next_tid: AtomicU64,
    next_region_id: AtomicU64,
    pub(crate) active_txns: AtomicU64,
    terminated: AtomicBool,
    /// Set when an unrecoverable I/O failure left the durable image ahead
    /// of what callers were told; see [`RvmError::Poisoned`].
    poisoned: AtomicBool,
    bg_wakeup: Mutex<bool>,
    bg_condvar: Condvar,
    /// Tells the background truncation thread to exit; set by
    /// [`Rvm::set_options`] when `background_truncation` is toggled off.
    bg_stop: AtomicBool,
    /// Wakeup flag/condvar/stop for the background scrubber thread,
    /// mirroring the truncation trio above.
    scrub_wakeup: Mutex<bool>,
    scrub_condvar: Condvar,
    scrub_stop: AtomicBool,
    /// Paired with `core`: signalled whenever an in-flight epoch
    /// truncation completes or fails. Waiters hold the core lock.
    epoch_done: Condvar,
    /// True while an epoch apply is running off-lock (phase 2); commits
    /// that complete in that window count `commits_during_truncation`.
    truncating: AtomicBool,
    /// The pipelined log writer's staging buffers and in-flight batches
    /// (see [`crate::pipeline`]); inert unless [`Tuning::log_pipeline`].
    /// Its lock ranks just above `core` and is never held across an
    /// acquisition of `core`.
    pipeline: LogPipeline,
}

/// A recoverable-virtual-memory instance over one log (§4.2's
/// `initialize`).
///
/// One `Rvm` corresponds to one process-wide log in the paper's design
/// (§3.3: "each process using RVM has a separate log"); nothing prevents a
/// Rust program from holding several instances over distinct logs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
/// use rvm::segment::MemResolver;
/// use rvm_storage::MemDevice;
///
/// let log = Arc::new(MemDevice::with_len(1 << 20));
/// let rvm = Rvm::initialize(
///     Options::new(log)
///         .resolver(MemResolver::new().into_resolver())
///         .create_if_empty(),
/// )
/// .unwrap();
/// let region = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)).unwrap();
/// let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
/// region.write(&mut txn, 0, b"hello").unwrap();
/// txn.commit(CommitMode::Flush).unwrap();
/// assert_eq!(region.read_vec(0, 5).unwrap(), b"hello");
/// ```
pub struct Rvm {
    shared: Arc<RvmShared>,
    recovery_report: RecoveryReport,
    /// The background truncation thread, if running. Behind a mutex so
    /// [`Rvm::set_options`] can spawn/stop it through `&self`.
    bg_thread: Mutex<Option<JoinHandle<()>>>,
    /// The background scrubber thread, if running (same discipline).
    scrub_thread: Mutex<Option<JoinHandle<()>>>,
}

/// Failure from [`Rvm::terminate`], carrying the instance back to the
/// caller.
///
/// `terminate` used to consume the instance even when it *refused* to
/// terminate (`TransactionsOutstanding`), so a caller could never end its
/// transactions and retry. On refusal the instance comes back untouched
/// and fully usable; on a shutdown I/O failure it comes back already
/// terminated, for inspection only.
pub struct TerminateFailure {
    /// The instance: untouched after a refusal, terminated after a
    /// shutdown failure.
    pub rvm: Rvm,
    /// Why termination failed.
    pub error: RvmError,
}

impl TerminateFailure {
    /// Splits into the instance and the error.
    pub fn into_parts(self) -> (Rvm, RvmError) {
        (self.rvm, self.error)
    }
}

impl std::fmt::Debug for TerminateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TerminateFailure")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for TerminateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "terminate failed: {}", self.error)
    }
}

impl std::error::Error for TerminateFailure {}

impl From<TerminateFailure> for RvmError {
    /// Propagating with `?` drops the returned instance (best-effort
    /// shutdown, as `Drop` always did) and keeps the underlying error.
    fn from(failure: TerminateFailure) -> Self {
        failure.error
    }
}

impl Rvm {
    /// Formats `dev` as an empty RVM log (the paper's `create_log`).
    pub fn create_log(dev: &dyn Device) -> Result<()> {
        format_log(dev)?;
        Ok(())
    }

    /// Initializes the library over an existing (or, with
    /// [`Options::create_if_empty`], fresh) log and runs crash recovery.
    pub fn initialize(options: Options) -> Result<Self> {
        // Every device touchpoint — the log and every resolved segment,
        // including those recovery writes to below — goes through the
        // bounded-retry layer. The counters live in `stats` so retries
        // during recovery are visible in the first `query`.
        let stats = Stats::default();
        let retrier = Retrier::new(
            options.retry,
            options.retry_sleeper.clone(),
            stats.fault.clone(),
        );
        let dev: Arc<dyn Device> = Arc::new(RetryDevice::new(options.log.clone(), retrier.clone()));
        let resolver = retry_resolver(options.resolver.clone(), retrier);
        let status = match read_status(dev.as_ref()) {
            Ok(s) => s,
            Err(_) if options.create_if_empty => format_log(dev.as_ref())?,
            Err(e) => return Err(e),
        };
        if LOG_AREA_START + status.area_len > dev.len()? {
            return Err(RvmError::BadLog(format!(
                "status block claims a record area of {} bytes but the device holds {}",
                status.area_len,
                dev.len()?
            )));
        }

        let recovered = recover(&dev, status, &resolver, options.tuning.segment_checksums)?;
        let status = recovered.status;
        let wal = Wal::new(
            dev.clone(),
            status.area_len,
            status.head,
            status.tail,
            status.seq_at_head,
            status.next_seq,
        );

        let shared = Arc::new(RvmShared {
            dev,
            resolver,
            tuning: RwLock::new(options.tuning),
            stats,
            core: Mutex::new(Core {
                wal,
                status_seq: status.seq,
                segments: status.segments,
                seg_devices: recovered.seg_devices,
                seg_catalogs: recovered.seg_catalogs,
                spool: Spool::new(),
                page_queue: PageQueue::new(),
                segs_in_log: HashSet::new(),
                epoch: None,
                wait_generation: 0,
            }),
            group: GroupCommit::new(),
            regions: RwLock::new(HashMap::new()),
            check: Mutex::new(CheckState::default()),
            next_tid: AtomicU64::new(1),
            next_region_id: AtomicU64::new(1),
            active_txns: AtomicU64::new(0),
            terminated: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            bg_wakeup: Mutex::new(false),
            bg_condvar: Condvar::new(),
            bg_stop: AtomicBool::new(false),
            scrub_wakeup: Mutex::new(false),
            scrub_condvar: Condvar::new(),
            scrub_stop: AtomicBool::new(false),
            epoch_done: Condvar::new(),
            truncating: AtomicBool::new(false),
            pipeline: LogPipeline::new(),
        });

        let bg_thread = options
            .tuning
            .background_truncation
            .then(|| spawn_bg_thread(&shared));
        let scrub_thread = options
            .tuning
            .background_scrub
            .then(|| spawn_scrub_thread(&shared));

        Ok(Self {
            shared,
            recovery_report: recovered.report,
            bg_thread: Mutex::new(bg_thread),
            scrub_thread: Mutex::new(scrub_thread),
        })
    }

    /// What crash recovery did during [`Rvm::initialize`].
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery_report
    }

    fn check_live(&self) -> Result<()> {
        if self.shared.terminated.load(Ordering::Acquire) {
            Err(RvmError::Terminated)
        } else if self.shared.poisoned.load(Ordering::Acquire) {
            Err(RvmError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Whether the instance is poisoned (see [`RvmError::Poisoned`]).
    /// Reads of already-mapped regions keep working on a poisoned
    /// instance; everything that touches the log fails fast.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// Maps a region of an external data segment into recoverable memory
    /// (§4.1). The mapped memory holds the committed image of the region,
    /// copied in eagerly (the paper's behaviour); see [`Rvm::map_with`]
    /// for on-demand loading.
    pub fn map(&self, desc: &RegionDescriptor) -> Result<Region> {
        self.map_with(desc, LoadPolicy::Eager)
    }

    /// Maps a region with an explicit [`LoadPolicy`]. On-demand mapping
    /// returns immediately and fetches pages from the segment on first
    /// access — the "copy data on demand" option §3.2 planned, which
    /// removes the startup latency of reading recoverable memory in en
    /// masse.
    pub fn map_with(&self, desc: &RegionDescriptor, policy: LoadPolicy) -> Result<Region> {
        self.check_live()?;
        desc.validate()?;
        let shared = &self.shared;
        let mut core = shared.core.lock();

        // Enter the segment into the durable table on first sight; the
        // table must be durable before any record references the id.
        let mut status_dirty = false;
        let seg_id = match core.segments.iter().position(|s| s.name == desc.segment) {
            Some(i) => core.segments[i].id,
            None => {
                if !StatusBlock::segments_fit(&core.segments, desc.segment.len()) {
                    return Err(RvmError::SegmentTableFull);
                }
                let id = SegmentId::new(core.segments.len() as u32);
                core.segments.push(SegmentInfo {
                    id,
                    name: desc.segment.clone(),
                    min_len: desc.offset + desc.len,
                });
                status_dirty = true;
                id
            }
        };
        {
            let info = core
                .segments
                .iter_mut()
                .find(|s| s.id == seg_id)
                .expect("segment just looked up");
            if info.min_len < desc.offset + desc.len {
                info.min_len = desc.offset + desc.len;
                status_dirty = true;
            }
        }

        // §4.1 mapping rules: no region mapped twice, no overlap.
        let new_range = ByteRange::at(desc.offset, desc.len);
        for region in shared.regions.read().values() {
            if region.seg == seg_id {
                let existing = ByteRange::at(region.seg_offset, region.len);
                if new_range.start < existing.end && existing.start < new_range.end {
                    return Err(RvmError::BadMapping(format!(
                        "[{}, {}) of '{}' overlaps the mapped region [{}, {})",
                        new_range.start, new_range.end, desc.segment, existing.start, existing.end
                    )));
                }
            }
        }

        let min_len = desc.offset + desc.len;
        let seg_dev = self.shared.segment_device(&mut core, seg_id, min_len)?;
        let catalog = self.shared.segment_catalog(&mut core, seg_id, &seg_dev)?;
        if status_dirty {
            let r = shared.write_status_locked(&mut core);
            shared.guard_io(r)?;
        }

        // A pipelined batch not yet reaped may reference this segment
        // without appearing in `segs_in_log` (membership is recorded at
        // reap): drain the pipeline so the image decision below sees a
        // settled log. Reaping needs the core lock, so release it around
        // the drain; batches are submitted under `core`, so once the
        // pipeline is idle *while we hold the lock* none can be in flight.
        while !shared.pipeline.is_idle() {
            drop(core);
            shared.pipeline_drain();
            core = shared.core.lock();
            core.wait_generation += 1;
        }

        // Guarantee the mapped image is the committed one: if live log
        // records, an in-flight epoch apply, or spooled commits reference
        // this segment, reflect them into the device first.
        let epoch_references = |core: &Core| {
            core.epoch
                .as_ref()
                .is_some_and(|e| e.segs.contains(&seg_id.as_u32()))
        };
        if core.segs_in_log.contains(&seg_id.as_u32())
            || core.spool.references(seg_id)
            || epoch_references(&core)
        {
            // An off-lock epoch apply owns the span `[head, epoch.end)`;
            // wait it out rather than scanning a span another thread is
            // applying (the wait releases the core lock).
            while core.epoch.is_some() {
                shared.epoch_done.wait(&mut core);
            }
            if shared.poisoned.load(Ordering::Acquire) {
                return Err(RvmError::Poisoned);
            }
            if core.segs_in_log.contains(&seg_id.as_u32()) || core.spool.references(seg_id) {
                let r = shared.flush_spool_locked(&mut core);
                shared.guard_io(r)?;
                let r = shared.epoch_truncate_locked(&mut core);
                shared.guard_io(r)?;
            }
        }

        let inner = Arc::new(RegionInner {
            id: shared.next_region_id.fetch_add(1, Ordering::Relaxed),
            seg: seg_id,
            seg_name: desc.segment.clone(),
            seg_dev,
            seg_offset: desc.offset,
            len: desc.len,
            mem: RegionMemory::alloc(desc.len as usize),
            mem_lock: RwLock::new(()),
            mapped: AtomicBool::new(true),
            uncommitted_txns: AtomicU64::new(0),
            page_vector: Mutex::new(PageVector::new(desc.len)),
            unloaded: Mutex::new(match policy {
                LoadPolicy::Eager => None,
                LoadPolicy::OnDemand => Some(vec![true; desc.len.div_ceil(PAGE_SIZE) as usize]),
            }),
            catalog,
            degraded: AtomicBool::new(false),
            media: self.shared.stats.media.clone(),
        });
        if policy == LoadPolicy::Eager {
            inner.load_from_segment()?;
        }
        shared.regions.write().insert(inner.id, inner.clone());
        Ok(Region { inner })
    }

    /// Unmaps a quiescent region (§4.1: no uncommitted transactions may be
    /// outstanding). Committed-but-untruncated changes remain safe in the
    /// log and spool.
    pub fn unmap(&self, region: &Region) -> Result<()> {
        region.inner.check_mapped()?;
        let uncommitted = region.inner.uncommitted_txns.load(Ordering::Acquire);
        if uncommitted > 0 {
            return Err(RvmError::RegionBusy { uncommitted });
        }
        region.inner.mapped.store(false, Ordering::Release);
        self.shared.regions.write().remove(&region.inner.id);
        Ok(())
    }

    /// Starts a transaction (§4.2 `begin_transaction`).
    pub fn begin_transaction(&self, mode: TxnMode) -> Result<Transaction> {
        self.check_live()?;
        self.shared.active_txns.fetch_add(1, Ordering::AcqRel);
        let tid = self.shared.next_tid.fetch_add(1, Ordering::Relaxed);
        let txn = Transaction::new(tid, mode, self.shared.clone());
        if self.shared.tuning.read().check_unlogged_writes {
            self.shared.snapshot_for_check(tid);
        }
        Ok(txn)
    }

    /// Forces all spooled no-flush commits to the log (§4.2 `flush`).
    pub fn flush(&self) -> Result<()> {
        self.check_live()?;
        let mut core = self.shared.core.lock();
        let r = self.shared.flush_spool_locked(&mut core);
        self.shared.guard_io(r)
    }

    /// Applies every committed change in the write-ahead log to its data
    /// segment and reclaims the space (§4.2 `truncate`). Blocks until
    /// done, but runs the epoch apply with the core lock *released*, so
    /// concurrent commits keep appending in the rest of the circular log
    /// (§5.1.2: truncation proceeds "while forward processing continues").
    /// Spooled no-flush commits are *not* included — call [`Rvm::flush`]
    /// first for that.
    pub fn truncate(&self) -> Result<()> {
        self.check_live()?;
        // Settle any in-flight pipelined batches first: the epoch can
        // only freeze the span below the pipeline floor, and an explicit
        // truncate promises to reclaim everything committed so far.
        self.shared.pipeline_drain();
        self.shared.epoch_truncate_concurrent(None, true)?;
        Ok(())
    }

    /// Current tuning options.
    pub fn options(&self) -> Tuning {
        *self.shared.tuning.read()
    }

    /// Replaces the tuning options (§4.2 `set_options`).
    ///
    /// Commit paths read the tuning once at entry, so a change applies to
    /// commits that *begin* after this call; a group-commit leader mid
    /// batch finishes with the tuning its batch started under.
    ///
    /// Toggling `background_truncation` spawns or stops the background
    /// truncation thread accordingly (the toggle used to be silently
    /// ignored after construction). Stopping joins the thread, so a
    /// disable returns only once any truncation it is running completes.
    /// `background_scrub` toggles the scrubber thread the same way.
    pub fn set_options(&self, tuning: Tuning) {
        // `bg_thread`/`scrub_thread` are locked around both the tuning
        // write and the spawn/stop so concurrent `set_options` calls
        // cannot leave the thread state disagreeing with the flags.
        let mut bg = self.bg_thread.lock();
        let mut scrub = self.scrub_thread.lock();
        let (was_bg, was_scrub) = {
            let mut t = self.shared.tuning.write();
            let was = (t.background_truncation, t.background_scrub);
            *t = tuning;
            was
        };
        if tuning.background_truncation && !was_bg {
            if bg.is_none() {
                *bg = Some(spawn_bg_thread(&self.shared));
            }
        } else if !tuning.background_truncation && was_bg {
            if let Some(handle) = bg.take() {
                self.shared.bg_stop.store(true, Ordering::Release);
                self.shared.bg_condvar.notify_all();
                let _ = handle.join();
                self.shared.bg_stop.store(false, Ordering::Release);
            }
        }
        if tuning.background_scrub && !was_scrub {
            if scrub.is_none() {
                *scrub = Some(spawn_scrub_thread(&self.shared));
            }
        } else if !tuning.background_scrub && was_scrub {
            if let Some(handle) = scrub.take() {
                self.shared.scrub_stop.store(true, Ordering::Release);
                self.shared.scrub_condvar.notify_all();
                let _ = handle.join();
                self.shared.scrub_stop.store(false, Ordering::Release);
            }
        }
    }

    /// Library-wide information (§4.2 `query`).
    pub fn query(&self) -> QueryInfo {
        // Per the crate-level lock order, `check` is never held while
        // acquiring `core`: copy the violations out and drop that guard
        // before touching anything else.
        let check_violations = {
            let check = self.shared.check.lock();
            check.violations.clone()
        };
        let (mapped_regions, regions_degraded) = {
            let regions = self.shared.regions.read();
            (
                regions.len(),
                regions.values().filter(|r| r.is_degraded()).count(),
            )
        };
        let core = self.shared.core.lock();
        // Mirror health: sum replica counts over every mirrored device in
        // play (the log plus resolved segments). Plain devices report no
        // replica health and contribute nothing.
        let mut replicas_alive = 0usize;
        let mut replicas_total = 0usize;
        for (alive, total) in std::iter::once(self.shared.dev.replica_health())
            .chain(core.seg_devices.values().map(|d| d.replica_health()))
            .flatten()
        {
            replicas_alive += alive;
            replicas_total += total;
        }
        QueryInfo {
            active_transactions: self.shared.active_txns.load(Ordering::Acquire),
            mapped_regions,
            regions_degraded,
            replicas_alive,
            replicas_total,
            spooled_transactions: core.spool.len(),
            spool_bytes: core.spool.bytes(),
            queued_pages: core.page_queue.len(),
            log: LogInfo {
                head: core.wal.head(),
                tail: core.wal.tail(),
                used: core.wal.used(),
                capacity: core.wal.capacity(),
                utilization: core.wal.utilization(),
            },
            truncation_in_flight: core.epoch.is_some(),
            poisoned: self.shared.poisoned.load(Ordering::Acquire),
            check_violations,
            stats: self.shared.stats.snapshot(),
        }
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Verifies every mapped region's on-segment pages against their
    /// checksum catalogs, repairing what it can — one synchronous scrub
    /// pass (the background analog is
    /// [`Tuning::background_scrub`](crate::Tuning)).
    ///
    /// Detection requires [`Tuning::segment_checksums`](crate::Tuning)
    /// (on by default); regions mapped while it was off are skipped. On a
    /// mismatch the repair ladder runs: bounded re-reads (transient,
    /// in-flight corruption), mirror read-repair (when the segment device
    /// is a [`MirrorDevice`](rvm_storage::MirrorDevice)), a rewrite from
    /// the committed image in VM, and finally per-region quarantine —
    /// the region turns read-only and further writes fail with
    /// [`RvmError::Media`], while every other region keeps committing.
    pub fn scrub(&self) -> Result<ScrubReport> {
        self.check_live()?;
        self.shared.scrub_pass()
    }

    /// Shuts the instance down cleanly (§4.2 `terminate`): fails if
    /// transactions are outstanding, otherwise flushes the spool and
    /// writes a final status block.
    ///
    /// On failure the instance comes back inside the
    /// [`TerminateFailure`]: after a `TransactionsOutstanding` refusal it
    /// is untouched, so the caller can end the transactions and call
    /// `terminate` again. Propagating the failure with `?` converts to
    /// the underlying [`RvmError`] and drops the instance (best-effort
    /// shutdown, as `Drop` always did).
    // The large Err is the point: the failure hands the whole instance
    // back so the caller can retry, and boxing it would change the API
    // for a cold path.
    #[allow(clippy::result_large_err)]
    pub fn terminate(mut self) -> std::result::Result<(), TerminateFailure> {
        let active = self.shared.active_txns.load(Ordering::Acquire);
        if active > 0 {
            return Err(TerminateFailure {
                rvm: self,
                error: RvmError::TransactionsOutstanding(active),
            });
        }
        match self.shutdown() {
            Ok(()) => Ok(()),
            Err(error) => Err(TerminateFailure { rvm: self, error }),
        }
    }

    fn shutdown(&mut self) -> Result<()> {
        if self.shared.terminated.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        // Wake and join the background truncation and scrubber threads.
        {
            let mut flag = self.shared.bg_wakeup.lock();
            *flag = true;
            self.shared.bg_condvar.notify_all();
        }
        if let Some(handle) = self.bg_thread.lock().take() {
            let _ = handle.join();
        }
        {
            let mut flag = self.shared.scrub_wakeup.lock();
            *flag = true;
            self.shared.scrub_condvar.notify_all();
        }
        if let Some(handle) = self.scrub_thread.lock().take() {
            let _ = handle.join();
        }
        // A poisoned instance must not touch the durable image again: the
        // surviving log already holds the committed prefix, and a final
        // status write could advance past records that never made it out.
        if self.shared.poisoned.load(Ordering::Acquire) {
            return Err(RvmError::Poisoned);
        }
        let mut core = self.shared.core.lock();
        let r = self.shared.flush_spool_locked(&mut core);
        self.shared.guard_io(r)?;
        let r = self.shared.write_status_locked(&mut core);
        self.shared.guard_io(r)?;
        Ok(())
    }
}

impl Drop for Rvm {
    fn drop(&mut self) {
        // Best-effort clean shutdown; errors cannot be reported here.
        let _ = self.shutdown();
    }
}

impl std::fmt::Debug for Rvm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rvm")
            .field(
                "terminated",
                &self.shared.terminated.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl RvmShared {
    /// Marks the instance poisoned (idempotent; counts once).
    fn poison(&self) {
        if !self.poisoned.swap(true, Ordering::AcqRel) {
            self.stats
                .fault
                .poisonings
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Poisons the instance if `result` is a device failure that reached
    /// here — by construction, one that survived the retry layer, so the
    /// durable image can no longer be trusted to match in-memory state.
    /// Non-device errors (`LogFull`, mapping errors, ...) pass through:
    /// they leave the log consistent and the instance usable.
    fn guard_io<T>(&self, result: Result<T>) -> Result<T> {
        if let Err(RvmError::Device(_)) = &result {
            self.poison();
        }
        result
    }

    /// Resolves (and caches) the device backing a segment.
    fn segment_device(
        &self,
        core: &mut Core,
        seg: SegmentId,
        min_len: u64,
    ) -> Result<Arc<dyn Device>> {
        if let Some(dev) = core.seg_devices.get(&seg.as_u32()) {
            if dev.len()? < min_len {
                dev.set_len(min_len)?;
            }
            return Ok(dev.clone());
        }
        let info = core
            .segments
            .iter()
            .find(|s| s.id == seg)
            .ok_or_else(|| RvmError::BadLog(format!("unknown segment id {seg}")))?;
        let dev = (self.resolver)(&info.name, min_len.max(info.min_len))?;
        if dev.len()? < min_len {
            dev.set_len(min_len)?;
        }
        core.seg_devices.insert(seg.as_u32(), dev.clone());
        Ok(dev)
    }

    /// Resolves (and caches) a segment's checksum catalog sidecar; `None`
    /// when [`Tuning::segment_checksums`] is off. A cached catalog is
    /// grown to cover a segment that grew since it was opened.
    fn segment_catalog(
        &self,
        core: &mut Core,
        seg: SegmentId,
        dev: &Arc<dyn Device>,
    ) -> Result<Option<Arc<SegmentChecksums>>> {
        if !self.tuning.read().segment_checksums {
            return Ok(None);
        }
        if let Some(catalog) = core.seg_catalogs.get(&seg.as_u32()) {
            let catalog = catalog.clone();
            catalog.ensure_covers(dev.as_ref(), dev.len()?)?;
            return Ok(Some(catalog));
        }
        let info = core
            .segments
            .iter()
            .find(|s| s.id == seg)
            .ok_or_else(|| RvmError::BadLog(format!("unknown segment id {seg}")))?;
        let side = (self.resolver)(&sidecar_name(&info.name), 0)?;
        let catalog = Arc::new(SegmentChecksums::open(side, dev.as_ref(), dev.len()?)?);
        core.seg_catalogs.insert(seg.as_u32(), catalog.clone());
        Ok(Some(catalog))
    }

    /// Charges a verified apply's corruption counts to the instance-wide
    /// media counters.
    fn charge_media(&self, outcome: &ApplyOutcome) {
        let media = &self.stats.media;
        media
            .corruptions_detected
            .fetch_add(outcome.corruptions_detected, Ordering::Relaxed);
        media
            .corruptions_repaired
            .fetch_add(outcome.corruptions_repaired, Ordering::Relaxed);
    }

    /// Writes the status block from live state.
    fn write_status_locked(&self, core: &mut Core) -> Result<()> {
        let mut status = StatusBlock {
            seq: core.status_seq,
            head: core.wal.head(),
            tail: core.wal.tail(),
            seq_at_head: core.wal.seq_at_head(),
            next_seq: core.wal.next_seq(),
            area_len: core.wal.capacity(),
            epoch_end: core.epoch.as_ref().map_or(0, |e| e.end),
            epoch_next_seq: core.epoch.as_ref().map_or(0, |e| e.next_seq),
            segments: core.segments.clone(),
        };
        write_status(self.dev.as_ref(), &mut status)?;
        core.status_seq = status.seq;
        Ok(())
    }

    /// Appends a record, making room as needed. With an epoch truncation
    /// in flight, the thread waits for it to free the frozen span — the
    /// wait **releases the core lock** (callers must re-validate any
    /// state derived from it; `Core::wait_generation` records that the
    /// release happened). With no epoch in flight, it falls back to the
    /// synchronous space-critical epoch truncation of §5.1.2. Both stall
    /// paths are charged to `truncation_stall_ns`.
    fn append_with_space(
        &self,
        core: &mut CoreGuard<'_>,
        tid: u64,
        ranges: &[RecordRange],
    ) -> Result<AppendInfo> {
        let padded = record::txn_record_size(ranges.iter().map(|r| r.data.len() as u64));
        if padded > core.wal.capacity() {
            return Err(RvmError::LogFull {
                needed: padded,
                capacity: core.wal.capacity(),
            });
        }
        loop {
            if core.wal.space_needed(padded) <= core.wal.free_space() {
                return core.wal.append_txn(tid, ranges);
            }
            let stall = Instant::now();
            if core.epoch.is_some() {
                // The in-flight epoch owns the head and will free the
                // frozen span when it completes; waiting releases the
                // core lock so the apply thread can finish phase 3.
                self.epoch_done.wait(core);
                core.wait_generation += 1;
                self.stats
                    .add(&self.stats.truncation_stall_ns, elapsed_ns(stall));
                if self.poisoned.load(Ordering::Acquire) {
                    return Err(RvmError::Poisoned);
                }
                continue;
            }
            let advanced = self.epoch_truncate_locked(core);
            self.stats
                .add(&self.stats.truncation_stall_ns, elapsed_ns(stall));
            if !advanced? {
                return Err(RvmError::LogFull {
                    needed: core.wal.space_needed(padded),
                    capacity: core.wal.free_space(),
                });
            }
        }
    }

    /// `begin_transaction` hook: snapshots every fully loaded mapped
    /// region for the commit-time unlogged-write diff. On-demand regions
    /// still holding unfetched pages are skipped — a page fetch mutates
    /// memory without any transaction writing it, which the diff would
    /// misread as an unlogged write.
    fn snapshot_for_check(&self, tid: u64) {
        let regions = self.regions.read();
        let mut snaps = HashMap::new();
        for (id, region) in regions.iter() {
            if region.unloaded.lock().is_some() {
                continue;
            }
            snaps.insert(*id, region.read_bytes(0, region.len));
        }
        self.check.lock().snapshots.insert(tid, snaps);
    }

    /// Commit-time unlogged-write check: diffs each snapshotted region
    /// against current memory and subtracts every declared `set_range`
    /// interval — this transaction's own write set plus every other live
    /// transaction's (their commits will log those bytes). Whatever
    /// remains changed behind RVM's back (§6's forgotten-`set_range`
    /// disaster) and is recorded as a [`CheckViolation`].
    fn run_commit_check(&self, txn: &Transaction) {
        let (enabled, panic_on) = {
            let t = self.tuning.read();
            (t.check_unlogged_writes, t.panic_on_violation)
        };
        let regions = self.regions.read();
        let mut state = self.check.lock();
        let Some(snaps) = state.snapshots.remove(&txn.tid) else {
            return;
        };
        if !enabled {
            // Checking was turned off mid-transaction; drop the snapshot.
            return;
        }
        let mut found = Vec::new();
        let mut refresh: Vec<(u64, ByteRange, Vec<u8>)> = Vec::new();
        for (region_id, old) in &snaps {
            let Some(region) = regions.get(region_id) else {
                continue; // unmapped since begin_transaction
            };
            let current = region.read_bytes(0, region.len);
            let mut allowed = RangeSet::new();
            if let Some(txn_region) = txn.regions.get(region_id) {
                for r in txn_region.ranges.iter() {
                    allowed.insert(r);
                }
            }
            if let Some(declared) = state.declared.get(region_id) {
                for (tid, r) in declared {
                    if *tid != txn.tid {
                        allowed.insert(*r);
                    }
                }
            }
            let allowed: Vec<ByteRange> = allowed.iter().collect();
            for d in check::diff_intervals(old, &current) {
                for bad in check::subtract_ranges(d, &allowed) {
                    found.push(CheckViolation::UnloggedWrite {
                        tid: txn.tid,
                        segment: region.seg_name.clone(),
                        offset: bad.start,
                        len: bad.len(),
                    });
                    let bytes = current[bad.start as usize..bad.end as usize].to_vec();
                    refresh.push((*region_id, bad, bytes));
                }
            }
        }
        // Fold the offending bytes into the other live snapshots so one
        // unlogged write is reported once, not once per open transaction.
        for (region_id, bad, bytes) in refresh {
            for snaps in state.snapshots.values_mut() {
                if let Some(img) = snaps.get_mut(&region_id) {
                    img[bad.start as usize..bad.end as usize].copy_from_slice(&bytes);
                }
            }
        }
        self.record_check_violations(&mut state, found, panic_on);
    }

    /// `set_range` hook: records the declaration for the diff exclusion
    /// set and, with conflict checking on, flags overlaps with other live
    /// transactions' declarations (§3.1's punted data-race class).
    pub(crate) fn check_declared_range(
        &self,
        tid: u64,
        region: &Arc<RegionInner>,
        range: ByteRange,
    ) {
        let (track, conflicts, panic_on) = {
            let t = self.tuning.read();
            (
                t.check_unlogged_writes || t.check_range_conflicts,
                t.check_range_conflicts,
                t.panic_on_violation,
            )
        };
        if !track {
            return;
        }
        let mut state = self.check.lock();
        let found = {
            let entries = state.declared.entry(region.id).or_default();
            let mut found = Vec::new();
            if conflicts {
                for (other, r) in entries.iter() {
                    if *other != tid && r.start < range.end && range.start < r.end {
                        let start = range.start.max(r.start);
                        let end = range.end.min(r.end);
                        found.push(CheckViolation::RangeConflict {
                            tid,
                            other_tid: *other,
                            segment: region.seg_name.clone(),
                            offset: start,
                            len: end - start,
                        });
                    }
                }
            }
            entries.push((tid, range));
            found
        };
        self.record_check_violations(&mut state, found, panic_on);
    }

    /// Transaction-end hook (commit, abort, or drop): refreshes the other
    /// live snapshots over this transaction's declared ranges — those
    /// bytes are now either committed or restored, and must not read as
    /// unlogged at someone else's commit — then forgets the transaction.
    pub(crate) fn check_txn_ended(&self, tid: u64, regions: &HashMap<u64, TxnRegion>) {
        let mut state = self.check.lock();
        if state.snapshots.is_empty() && state.declared.is_empty() {
            return;
        }
        for (region_id, txn_region) in regions {
            if state.snapshots.values().any(|m| m.contains_key(region_id)) {
                for r in txn_region.ranges.iter() {
                    let bytes = txn_region.region.read_bytes(r.start, r.len());
                    for snaps in state.snapshots.values_mut() {
                        if let Some(img) = snaps.get_mut(region_id) {
                            img[r.start as usize..r.end as usize].copy_from_slice(&bytes);
                        }
                    }
                }
            }
            let empty = if let Some(entries) = state.declared.get_mut(region_id) {
                entries.retain(|(t, _)| *t != tid);
                entries.is_empty()
            } else {
                false
            };
            if empty {
                state.declared.remove(region_id);
            }
        }
        state.snapshots.remove(&tid);
    }

    /// Counts, stores, and (with `panic_on_violation`) panics on check
    /// violations.
    fn record_check_violations(
        &self,
        state: &mut CheckState,
        found: Vec<CheckViolation>,
        panic_on: bool,
    ) {
        if found.is_empty() {
            return;
        }
        for v in &found {
            match v {
                CheckViolation::UnloggedWrite { .. } => {
                    self.stats.add(&self.stats.check_unlogged_writes, 1)
                }
                CheckViolation::RangeConflict { .. } => {
                    self.stats.add(&self.stats.check_range_conflicts, 1)
                }
            }
        }
        let msg = panic_on.then(|| {
            found
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        });
        state.violations.extend(found);
        if let Some(msg) = msg {
            panic!("rvm check violation: {msg}");
        }
    }

    /// Commits a transaction; called from [`Transaction::commit`].
    pub(crate) fn commit_txn(
        self: &Arc<Self>,
        txn: &mut Transaction,
        mode: CommitMode,
    ) -> Result<()> {
        if self.terminated.load(Ordering::Acquire) {
            txn.rollback();
            return Err(RvmError::Terminated);
        }
        if self.poisoned.load(Ordering::Acquire) {
            txn.rollback();
            return Err(RvmError::Poisoned);
        }
        self.run_commit_check(txn);
        // `Tuning` is `Copy`: a plain read through the lock, no per-commit
        // heap clone.
        let tuning = *self.tuning.read();
        let stats = &self.stats;

        // Read the new values out of recoverable memory *now* — "new-value
        // records that reflect the current contents of the corresponding
        // ranges of memory" (§5.1.1).
        let mut ranges: Vec<RecordRange> = Vec::new();
        let mut net_data = 0u64;
        let mut region_pages: Vec<(Arc<RegionInner>, Vec<usize>)> = Vec::new();
        let mut txn_regions: Vec<_> = txn.regions.values().collect();
        txn_regions.sort_by_key(|r| r.region.id);
        for txn_region in txn_regions {
            let region = &txn_region.region;
            let use_coalesced = tuning.intra_optimization;
            let iter: Vec<ByteRange> = if use_coalesced {
                txn_region.ranges.iter().collect()
            } else {
                txn_region.raw_ranges.clone()
            };
            let mut pages = std::collections::BTreeSet::new();
            for r in &iter {
                let data = region.read_bytes(r.start, r.len());
                net_data += data.len() as u64;
                for p in PageVector::page_span(r.start, r.len()) {
                    pages.insert(p);
                }
                ranges.push(RecordRange {
                    seg: region.seg,
                    offset: region.seg_offset + r.start,
                    data,
                });
            }
            region_pages.push((region.clone(), pages.into_iter().collect()));
        }
        if tuning.intra_optimization && txn.gross_bytes >= net_data {
            stats.add(&stats.bytes_saved_intra, txn.gross_bytes - net_data);
        }

        let mut over_threshold = false;
        if !ranges.is_empty() && mode == CommitMode::Flush && tuning.group_commit {
            // Group commit: park the serialized transaction in the
            // commit queue and share one force with every concurrent
            // flush committer (see `group_commit_enqueue`).
            match self.group_commit_enqueue(txn.tid, ranges, region_pages, &tuning) {
                Ok(over) => {
                    stats.add(&stats.flush_commits, 1);
                    over_threshold = over;
                }
                Err(e) => {
                    txn.rollback();
                    return Err(e);
                }
            }
        } else if !ranges.is_empty() {
            let mut core = self.core.lock();
            match mode {
                CommitMode::Flush => {
                    // Preserve commit order in the durable log. A device
                    // failure anywhere in here — after retries — poisons
                    // the instance: `append_txn` has already rolled the
                    // WAL cursors back, and no later commit may run over
                    // an image whose true durable tail is unknown (a
                    // failed force leaves even successfully appended
                    // records unacknowledged).
                    let append = (|| -> Result<AppendInfo> {
                        self.flush_spool_locked(&mut core)?;
                        let info = self.append_with_space(&mut core, txn.tid, &ranges)?;
                        core.wal.force()?;
                        Ok(info)
                    })();
                    let info = match self.guard_io(append) {
                        Ok(info) => info,
                        Err(e) => {
                            drop(core);
                            txn.rollback();
                            return Err(e);
                        }
                    };
                    stats.add(&stats.log_forces, 1);
                    stats.add(&stats.bytes_logged, info.record_bytes);
                    stats.add(&stats.flush_commits, 1);
                    for (region, pages) in &region_pages {
                        {
                            let mut pv = region.page_vector.lock();
                            for &p in pages {
                                pv.mark_page_dirty(p);
                            }
                        }
                        for &p in pages {
                            core.page_queue.enqueue(region, p, info.offset, info.seq);
                        }
                    }
                    for r in &ranges {
                        core.segs_in_log.insert(r.seg.as_u32());
                    }
                }
                CommitMode::NoFlush => {
                    let record_bytes = record::HEADER_SIZE
                        + ranges
                            .iter()
                            .map(|r| record::RANGE_ENTRY_SIZE + r.data.len() as u64)
                            .sum::<u64>()
                        + record::TRAILER_SIZE;
                    let mut pages_list = Vec::new();
                    for (region, pages) in &region_pages {
                        let mut pv = region.page_vector.lock();
                        for &p in pages {
                            pv.inc_unflushed(p);
                        }
                        pages_list.push((Arc::downgrade(region), pages.clone()));
                    }
                    let saved = core.spool.push(
                        SpooledTxn {
                            tid: txn.tid,
                            ranges,
                            pages: pages_list,
                            record_bytes,
                        },
                        tuning.inter_optimization,
                    );
                    stats.add(&stats.bytes_saved_inter, saved);
                    stats.add(&stats.no_flush_commits, 1);
                    if core.spool.bytes() > tuning.spool_max_bytes {
                        let r = self.flush_spool_locked(&mut core);
                        if let Err(e) = self.guard_io(r) {
                            drop(core);
                            txn.rollback();
                            return Err(e);
                        }
                    }
                }
            }
            over_threshold = core.wal.utilization() > tuning.truncation_threshold;
        } else {
            // An empty transaction logs nothing itself, but a flush-mode
            // commit still promises that every commit that returned
            // before it is durable — including spooled no-flush commits.
            // Drain the spool exactly as a non-empty flush commit would
            // (previously skipped, which silently weakened the flush
            // guarantee to "durable except what the spool still holds").
            if mode == CommitMode::Flush {
                let mut core = self.core.lock();
                if !core.spool.is_empty() {
                    let r = self.flush_spool_locked(&mut core);
                    if let Err(e) = self.guard_io(r) {
                        drop(core);
                        txn.rollback();
                        return Err(e);
                    }
                    over_threshold = core.wal.utilization() > tuning.truncation_threshold;
                }
            }
            stats.add(
                match mode {
                    CommitMode::Flush => &stats.flush_commits,
                    CommitMode::NoFlush => &stats.no_flush_commits,
                },
                1,
            );
        }
        stats.add(&stats.txns_committed, 1);
        if self.truncating.load(Ordering::Relaxed) {
            // An epoch apply is running off-lock right now; this commit
            // made progress through it.
            stats.add(&stats.commits_during_truncation, 1);
        }
        txn.release();

        if over_threshold {
            self.request_truncation(&tuning);
        }
        Ok(())
    }

    /// Group-commit committer side: parks the serialized transaction in
    /// the commit queue, then either waits for a leader to commit it or
    /// becomes the leader itself. Returns whether the log crossed the
    /// truncation threshold (the caller triggers truncation outside the
    /// locks, as the serialized path does).
    ///
    /// Leadership is a baton, not a thread: the first committer to find
    /// no active leader takes it, runs one bounded batch via
    /// [`RvmShared::group_leader_round`], releases it, and re-checks its
    /// own slot. A committer whose slot was left out of a bounded batch
    /// simply takes the baton next and leads the following batch, so
    /// every enqueued transaction is committed after at most
    /// `queue length / max_txns` rounds and durable-log order equals
    /// queue order.
    fn group_commit_enqueue(
        self: &Arc<Self>,
        tid: u64,
        ranges: Vec<RecordRange>,
        region_pages: Vec<(Arc<RegionInner>, Vec<usize>)>,
        tuning: &Tuning,
    ) -> Result<bool> {
        let record_bytes = record::HEADER_SIZE
            + ranges
                .iter()
                .map(|r| record::RANGE_ENTRY_SIZE + r.data.len() as u64)
                .sum::<u64>()
            + record::TRAILER_SIZE;
        let slot = Arc::new(GroupSlot {
            tid,
            record_bytes,
            work: Mutex::new(SlotWork {
                ranges,
                region_pages,
                outcome: None,
                over_threshold: false,
            }),
        });
        self.group.state.lock().queue.push_back(slot.clone());
        loop {
            let mut gs = self.group.state.lock();
            {
                let mut work = slot.work.lock();
                if let Some(outcome) = work.outcome.take() {
                    let over = work.over_threshold;
                    return outcome.map(|_| over);
                }
            }
            if gs.leader_active {
                // A leader is running (possibly carrying this slot in its
                // batch); wait for it to publish and hand off.
                self.group.wakeup.wait(&mut gs);
                continue;
            }
            gs.leader_active = true;
            drop(gs);
            if tuning.log_pipeline {
                self.pipeline_leader_round(tuning);
            } else {
                self.group_leader_round(tuning);
            }
            self.group.state.lock().leader_active = false;
            self.group.wakeup.notify_all();
        }
    }

    /// Group-commit leader side: one bounded batch. Drains up to
    /// `group_commit_max_txns` / `group_commit_max_bytes` slots from the
    /// queue front, appends them in order under the core lock, forces the
    /// log **once**, does the per-member page bookkeeping, and publishes
    /// each member's outcome into its slot. The caller releases
    /// leadership and wakes the followers.
    ///
    /// Failure semantics extend the single-commit path to the batch: a
    /// `LogFull` on one member fails only that member (nothing of it was
    /// appended; the others still force and commit), while a device error
    /// on any append, the spool drain, or the shared force fails the
    /// *whole* batch — the WAL cursors are rolled back to the pre-group
    /// checkpoint and the instance is poisoned, because records may sit
    /// unacknowledged in the device's write-behind cache.
    fn group_leader_round(self: &Arc<Self>, tuning: &Tuning) {
        if tuning.group_commit_wait_us > 0 {
            // Accumulation window: let concurrent committers join the
            // batch. Wall-clock only; nothing is charged to a simulated
            // clock, and no lock is held.
            std::thread::sleep(std::time::Duration::from_micros(
                tuning.group_commit_wait_us,
            ));
        }
        let max_txns = tuning.group_commit_max_txns.max(1);
        let batch: Vec<Arc<GroupSlot>> = {
            let mut gs = self.group.state.lock();
            let mut batch = Vec::new();
            let mut bytes = 0u64;
            while batch.len() < max_txns {
                let Some(front) = gs.queue.front() else { break };
                if !batch.is_empty() && bytes + front.record_bytes > tuning.group_commit_max_bytes {
                    break;
                }
                bytes += front.record_bytes;
                batch.push(gs.queue.pop_front().expect("front was Some"));
            }
            batch
        };
        if batch.is_empty() {
            return;
        }

        let stats = &self.stats;
        let mut core = self.core.lock();
        if self.poisoned.load(Ordering::Acquire) {
            // Poisoned between enqueue and leadership (e.g. by the
            // previous batch): fail fast without touching the log.
            drop(core);
            for slot in &batch {
                slot.work.lock().outcome = Some(Err(RvmError::Poisoned));
            }
            return;
        }

        let mut outcomes: Vec<Result<AppendInfo>> = Vec::with_capacity(batch.len());
        let group_result: Result<()> = (|| {
            self.flush_spool_locked(&mut core)?;
            // The checkpoint is only a valid rollback point while no one
            // else has appended past it. `append_with_space` may release
            // the core lock to wait out an in-flight epoch truncation,
            // letting other committers interleave records; the
            // wait-generation counter detects that, and the batch then
            // fails *without* rolling back (its records stay in the log
            // unacknowledged, exactly like a failed force — the instance
            // poisons below).
            let ckpt = core.wal.checkpoint();
            let ckpt_gen = core.wait_generation;
            let rollback = |core: &mut Core| {
                // `skip_group_rollback` is a crashmc mutation hook: it
                // reintroduces the cursors-past-unforced-records bug the
                // rollback exists to prevent, so the model checker can
                // prove it would catch that bug.
                if core.wait_generation == ckpt_gen && !tuning.mutation.skip_group_rollback {
                    core.wal.rollback_to(ckpt);
                }
            };
            let mut appended_any = false;
            for slot in &batch {
                let work = slot.work.lock();
                match self.append_with_space(&mut core, slot.tid, &work.ranges) {
                    Ok(info) => {
                        appended_any = true;
                        outcomes.push(Ok(info));
                    }
                    Err(e @ RvmError::LogFull { .. }) => outcomes.push(Err(e)),
                    Err(e) => {
                        rollback(&mut core);
                        return Err(e);
                    }
                }
            }
            if appended_any && !tuning.mutation.skip_group_force {
                // `skip_group_force` is a crashmc mutation hook: it
                // acknowledges the batch without the durability barrier,
                // the classic lost-commit bug the model checker must be
                // able to see.
                if let Err(e) = core.wal.force() {
                    rollback(&mut core);
                    return Err(e);
                }
            }
            Ok(())
        })();

        match self.guard_io(group_result) {
            Ok(()) => {
                let successes = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
                if successes > 0 {
                    stats.add(&stats.log_forces, 1);
                    stats.add(&stats.group_commit_batches, 1);
                    stats.add(&stats.group_commit_txns, successes);
                    stats.add(
                        &stats.group_commit_batch_sizes[batch_size_bucket(successes)],
                        1,
                    );
                }
                for (slot, outcome) in batch.iter().zip(&outcomes) {
                    if let Ok(info) = outcome {
                        let work = slot.work.lock();
                        stats.add(&stats.bytes_logged, info.record_bytes);
                        for (region, pages) in &work.region_pages {
                            {
                                let mut pv = region.page_vector.lock();
                                for &p in pages {
                                    pv.mark_page_dirty(p);
                                }
                            }
                            for &p in pages {
                                core.page_queue.enqueue(region, p, info.offset, info.seq);
                            }
                        }
                        for r in &work.ranges {
                            core.segs_in_log.insert(r.seg.as_u32());
                        }
                    }
                }
                let over = core.wal.utilization() > tuning.truncation_threshold;
                drop(core);
                for (slot, outcome) in batch.iter().zip(outcomes) {
                    let mut work = slot.work.lock();
                    work.over_threshold = over;
                    work.outcome = Some(outcome);
                }
            }
            Err(e) => {
                drop(core);
                // The whole batch failed. One member receives the
                // original error (for a batch of one this is exactly the
                // serialized path's behaviour); the rest observe the
                // instance state the failure left behind: `Poisoned`
                // after a device error, or a reconstructed `LogFull`
                // when the spool drain ran out of log space (which
                // leaves the instance healthy).
                let log_full = match &e {
                    RvmError::LogFull { needed, capacity } => Some((*needed, *capacity)),
                    _ => None,
                };
                let mut original = Some(e);
                let mut outcomes = outcomes.into_iter();
                for slot in &batch {
                    let result = match outcomes.next() {
                        // This member individually ran out of log space
                        // before the group failed; keep its own error.
                        Some(Err(member_err)) => Err(member_err),
                        _ => Err(original.take().unwrap_or(match log_full {
                            Some((needed, capacity)) => RvmError::LogFull { needed, capacity },
                            None => RvmError::Poisoned,
                        })),
                    };
                    slot.work.lock().outcome = Some(result);
                }
            }
        }
    }

    /// Pipelined leader side (`Tuning::log_pipeline`): one bounded batch,
    /// encoded into a staging buffer and *submitted* — writes and force —
    /// without waiting for the device. The batch goes onto the in-flight
    /// queue; the next leader's fill overlaps its force, and a later reap
    /// ([`Self::pipeline_reap_batch`]) acknowledges the committers. See
    /// [`crate::pipeline`] for the protocol.
    ///
    /// Reservation and submission both happen under one core-lock hold,
    /// in queue order: a successor batch must never reach the device
    /// while an earlier batch's bytes are still an unwritten hole below
    /// it, or a crash after the successor's force could strand forced
    /// records beyond a gap the recovery scan cannot cross.
    fn pipeline_leader_round(self: &Arc<Self>, tuning: &Tuning) {
        if tuning.group_commit_wait_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(
                tuning.group_commit_wait_us,
            ));
        }
        let max_txns = tuning.group_commit_max_txns.max(1);
        let batch: Vec<Arc<GroupSlot>> = {
            let mut gs = self.group.state.lock();
            let mut batch = Vec::new();
            let mut bytes = 0u64;
            while batch.len() < max_txns {
                let Some(front) = gs.queue.front() else { break };
                if !batch.is_empty() && bytes + front.record_bytes > tuning.group_commit_max_bytes {
                    break;
                }
                bytes += front.record_bytes;
                batch.push(gs.queue.pop_front().expect("front was Some"));
            }
            batch
        };
        if batch.is_empty() {
            // Nothing queued: this round is the pipeline tail. Stand in
            // as the reaper so in-flight committers (including, possibly,
            // this thread's own batch) get their outcomes.
            self.pipeline_reap_front();
            return;
        }

        let mut staging = self.pipeline_acquire_buf();
        let stats = &self.stats;
        let mut core = self.core.lock();

        enum Fill {
            Submitted {
                write_tokens: Vec<rvm_storage::IoToken>,
                force_token: Option<rvm_storage::IoToken>,
                ckpt: WalCheckpoint,
                ckpt_gen: u64,
            },
            Failed(RvmError),
        }

        let mut outcomes: Vec<Result<AppendInfo>> = Vec::with_capacity(batch.len());
        // Members truncation provably cannot make room for; on the next
        // fill attempt they take their own `LogFull` instead of
        // re-truncating (guarantees the retry loop terminates).
        let mut wont_fit: Vec<bool> = vec![false; batch.len()];
        let fill: Fill = 'attempt: loop {
            // Any path that released the core lock restarts the fill from
            // scratch: the staged appends were rolled back first, and the
            // checkpoint below is re-taken.
            staging.clear();
            outcomes.clear();
            if self.poisoned.load(Ordering::Acquire) {
                break Fill::Failed(RvmError::Poisoned);
            }
            if let Err(e) = self.flush_spool_locked(&mut core) {
                break Fill::Failed(e);
            }
            let ckpt = core.wal.checkpoint();
            let ckpt_gen = core.wait_generation;
            let mut appended_any = false;
            for (i, slot) in batch.iter().enumerate() {
                let work = slot.work.lock();
                let padded =
                    record::txn_record_size(work.ranges.iter().map(|r| r.data.len() as u64));
                if padded > core.wal.capacity() {
                    outcomes.push(Err(RvmError::LogFull {
                        needed: padded,
                        capacity: core.wal.capacity(),
                    }));
                    continue;
                }
                if wont_fit[i] {
                    outcomes.push(Err(RvmError::LogFull {
                        needed: core.wal.space_needed(padded),
                        capacity: core.wal.free_space(),
                    }));
                    continue;
                }
                if core.wal.space_needed(padded) > core.wal.free_space() {
                    // Out of space mid-fill. Rolling back the staged
                    // cursor advances is always safe here — the core lock
                    // has been held since the checkpoint, so nothing
                    // interleaved — and nothing of this batch reached the
                    // device yet.
                    drop(work);
                    core.wal.rollback_to(ckpt);
                    let stall = Instant::now();
                    if core.epoch.is_some() {
                        // The in-flight epoch owns the head; wait it out
                        // (releases the core lock).
                        self.epoch_done.wait(&mut core);
                        core.wait_generation += 1;
                        stats.add(&stats.truncation_stall_ns, elapsed_ns(stall));
                        continue 'attempt;
                    }
                    // Synchronous truncation can only reclaim below the
                    // pipeline floor, so drain the in-flight batches
                    // first. Reaping needs the core lock — release it
                    // around the drain.
                    drop(core);
                    self.pipeline_drain();
                    core = self.core.lock();
                    core.wait_generation += 1;
                    match self.epoch_truncate_locked(&mut core) {
                        Ok(advanced) => {
                            stats.add(&stats.truncation_stall_ns, elapsed_ns(stall));
                            if !advanced {
                                wont_fit[i] = true;
                            }
                            continue 'attempt;
                        }
                        Err(e) => break 'attempt Fill::Failed(e),
                    }
                }
                match core
                    .wal
                    .append_txn_staged(slot.tid, &work.ranges, &mut staging)
                {
                    Ok(info) => {
                        appended_any = true;
                        outcomes.push(Ok(info));
                    }
                    Err(e @ RvmError::LogFull { .. }) => outcomes.push(Err(e)),
                    Err(e) => break 'attempt Fill::Failed(e),
                }
            }
            let write_tokens = core.wal.submit_staged(&mut staging);
            // `skip_group_force` is the crashmc mutation hook from the
            // serial path: acknowledge without the durability barrier.
            let force_token = (appended_any && !tuning.mutation.skip_group_force)
                .then(|| core.wal.submit_force());
            break Fill::Submitted {
                write_tokens,
                force_token,
                ckpt,
                ckpt_gen,
            };
        };

        match fill {
            Fill::Submitted {
                write_tokens,
                force_token,
                ckpt,
                ckpt_gen,
            } => {
                if write_tokens.is_empty() && force_token.is_none() {
                    // Every member individually failed (`LogFull`): no
                    // bytes reached the device, nothing to wait on.
                    let over = core.wal.utilization() > tuning.truncation_threshold;
                    drop(core);
                    self.pipeline_release_buf(staging);
                    for (slot, outcome) in batch.iter().zip(outcomes) {
                        let mut work = slot.work.lock();
                        work.over_threshold = over;
                        work.outcome = Some(outcome);
                    }
                    return;
                }
                let end_tail = core.wal.tail();
                let dev = Arc::clone(core.wal.device());
                stats.add(&stats.pipeline_submits, 1);
                let depth = {
                    let mut ps = self.pipeline.pipe.lock();
                    ps.in_flight.push_back(InFlightBatch {
                        slots: batch,
                        outcomes,
                        write_tokens,
                        force_token,
                        dev,
                        ckpt,
                        ckpt_gen,
                        end_tail,
                        buf: staging,
                    });
                    ps.in_flight.len() as u64 + u64::from(ps.reap_floor.is_some())
                };
                stats
                    .forces_in_flight_hw
                    .fetch_max(depth, Ordering::Relaxed);
                drop(core);
                // Reap the predecessor, if any: its force has been in
                // flight while this batch filled. This batch itself stays
                // in flight so the *next* leader's fill overlaps it.
                let has_predecessor = self.pipeline.pipe.lock().in_flight.len() > 1;
                if has_predecessor {
                    self.pipeline_reap_front();
                }
            }
            Fill::Failed(e) => {
                drop(core);
                self.pipeline_release_buf(staging);
                let e = self.guard_io(Err::<(), _>(e)).unwrap_err();
                self.pipeline_publish_failure(&batch, outcomes, e);
            }
        }
    }

    /// Takes a free staging buffer, reaping the oldest in-flight batch
    /// when both are out. Time spent waiting is the pipeline *stall*
    /// (`pipeline_stall_ns`): the fill could not start until a force
    /// completed.
    fn pipeline_acquire_buf(&self) -> StagingBuf {
        let mut stalled: Option<Instant> = None;
        loop {
            let mut ps = self.pipeline.pipe.lock();
            if let Some(buf) = ps.free.pop() {
                drop(ps);
                if let Some(t) = stalled {
                    self.stats.add(&self.stats.pipeline_stall_ns, elapsed_ns(t));
                }
                return buf;
            }
            stalled.get_or_insert_with(Instant::now);
            if ps.reap_floor.is_none() {
                if let Some(batch) = ps.in_flight.pop_front() {
                    ps.reap_floor = Some(batch.ckpt);
                    drop(ps);
                    let buf = self.pipeline_reap_batch(batch);
                    self.pipeline_settle(buf);
                    continue;
                }
                // No free buffer, nothing in flight, no reap in progress:
                // unreachable while leadership is exclusive (at most one
                // filling buffer exists, and it is not this caller's).
                debug_assert!(false, "staging buffers unaccounted for");
            }
            self.pipeline.pipe_cv.wait(&mut ps);
        }
    }

    /// Reaps the oldest in-flight batch, waiting out a concurrent reaper
    /// first so reaps stay FIFO. No-op when the pipeline is idle.
    fn pipeline_reap_front(&self) {
        let mut ps = self.pipeline.pipe.lock();
        loop {
            if ps.reap_floor.is_none() {
                let Some(batch) = ps.in_flight.pop_front() else {
                    return; // idle
                };
                ps.reap_floor = Some(batch.ckpt);
                drop(ps);
                let buf = self.pipeline_reap_batch(batch);
                self.pipeline_settle(buf);
                return;
            }
            // Another thread owns the reap; FIFO order means waiting it
            // out is as good as reaping the front ourselves.
            self.pipeline.pipe_cv.wait(&mut ps);
        }
    }

    /// Returns a drained staging buffer to the free list and releases the
    /// reap floor set by the caller's pop.
    fn pipeline_settle(&self, buf: StagingBuf) {
        let mut ps = self.pipeline.pipe.lock();
        debug_assert!(ps.reap_floor.is_some());
        ps.reap_floor = None;
        ps.free.push(buf);
        drop(ps);
        self.pipeline.pipe_cv.notify_all();
    }

    /// Returns a buffer that never made it into an in-flight batch.
    fn pipeline_release_buf(&self, mut buf: StagingBuf) {
        buf.clear();
        let mut ps = self.pipeline.pipe.lock();
        ps.free.push(buf);
        drop(ps);
        self.pipeline.pipe_cv.notify_all();
    }

    /// Reaps every in-flight batch. Used by paths that need the log
    /// settled: mapping a segment the pipeline may reference, and the
    /// space-critical synchronous truncation (which can only reclaim
    /// below the pipeline floor). Must be called with **no** locks held.
    pub(crate) fn pipeline_drain(&self) {
        loop {
            {
                let ps = self.pipeline.pipe.lock();
                if ps.in_flight.is_empty() && ps.reap_floor.is_none() {
                    return;
                }
            }
            self.pipeline_reap_front();
        }
    }

    /// Completion side: waits the batch's submitted writes and force with
    /// no locks held, then performs the same post-force bookkeeping as
    /// the serial leader (success) or the rollback-and-poison protocol
    /// (failure), and publishes every member's outcome. Returns the
    /// batch's staging buffer for the caller to settle.
    fn pipeline_reap_batch(&self, mut batch: InFlightBatch) -> StagingBuf {
        let mut io: rvm_storage::Result<()> = Ok(());
        for t in batch.write_tokens.drain(..) {
            let r = batch.dev.wait(t);
            if io.is_ok() {
                io = r;
            }
        }
        if let Some(f) = batch.force_token.take() {
            let r = batch.dev.wait(f);
            if io.is_ok() {
                io = r;
            }
        }
        let mut result: Result<()> = io.map_err(RvmError::from);
        if result.is_ok() && self.poisoned.load(Ordering::Acquire) {
            // An older batch failed after this one was submitted: these
            // records sit beyond an unforced hole a recovery scan cannot
            // cross, so the batch fails even though its own force
            // succeeded.
            result = Err(RvmError::Poisoned);
        }
        let tuning = *self.tuning.read();
        let stats = &self.stats;
        match result {
            Ok(()) => {
                let mut core = self.core.lock();
                let successes = batch.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
                if successes > 0 {
                    stats.add(&stats.log_forces, 1);
                    stats.add(&stats.group_commit_batches, 1);
                    stats.add(&stats.group_commit_txns, successes);
                    stats.add(
                        &stats.group_commit_batch_sizes[batch_size_bucket(successes)],
                        1,
                    );
                }
                for (slot, outcome) in batch.slots.iter().zip(&batch.outcomes) {
                    if let Ok(info) = outcome {
                        let work = slot.work.lock();
                        stats.add(&stats.bytes_logged, info.record_bytes);
                        for (region, pages) in &work.region_pages {
                            {
                                let mut pv = region.page_vector.lock();
                                for &p in pages {
                                    pv.mark_page_dirty(p);
                                }
                            }
                            for &p in pages {
                                core.page_queue.enqueue(region, p, info.offset, info.seq);
                            }
                        }
                        for r in &work.ranges {
                            core.segs_in_log.insert(r.seg.as_u32());
                        }
                    }
                }
                let over = core.wal.utilization() > tuning.truncation_threshold;
                drop(core);
                for (slot, outcome) in batch.slots.iter().zip(batch.outcomes) {
                    let mut work = slot.work.lock();
                    work.over_threshold = over;
                    work.outcome = Some(outcome);
                }
            }
            Err(e) => {
                {
                    let mut core = self.core.lock();
                    // Roll back iff nothing appended past this batch: the
                    // tail still matches its post-append position and no
                    // core-lock release bumped the wait generation.
                    // (`skip_group_rollback` is the crashmc mutation hook,
                    // exactly as in the serial path.)
                    if core.wait_generation == batch.ckpt_gen
                        && core.wal.tail() == batch.end_tail
                        && !tuning.mutation.skip_group_rollback
                    {
                        core.wal.rollback_to(batch.ckpt);
                    }
                }
                let e = self.guard_io(Err::<(), _>(e)).unwrap_err();
                self.pipeline_publish_failure(&batch.slots, batch.outcomes, e);
            }
        }
        // Purely an accelerant: parked committers re-check their slots
        // sooner. Missed wakeups are impossible — a committer that finds
        // `leader_active` false claims leadership itself, and leadership
        // release notifies under the group-state lock.
        self.group.wakeup.notify_all();
        batch.buf
    }

    /// Failure publication shared by the pipelined submit and reap paths;
    /// mirrors the serial group path: one member receives the original
    /// error, members that individually ran out of log space keep their
    /// own `LogFull`, and the rest observe the state the failure left
    /// behind (`Poisoned` after a device error, or a reconstructed
    /// `LogFull`).
    fn pipeline_publish_failure(
        &self,
        slots: &[Arc<GroupSlot>],
        outcomes: Vec<Result<AppendInfo>>,
        e: RvmError,
    ) {
        let log_full = match &e {
            RvmError::LogFull { needed, capacity } => Some((*needed, *capacity)),
            _ => None,
        };
        let mut original = Some(e);
        let mut outcomes = outcomes.into_iter();
        for slot in slots {
            let result = match outcomes.next() {
                Some(Err(member_err)) => Err(member_err),
                _ => Err(original.take().unwrap_or(match log_full {
                    Some((needed, capacity)) => RvmError::LogFull { needed, capacity },
                    None => RvmError::Poisoned,
                })),
            };
            slot.work.lock().outcome = Some(result);
        }
    }

    /// Writes every spooled record to the log and forces it once. May
    /// release and reacquire the core lock if an append has to wait out
    /// an in-flight epoch truncation (see
    /// [`RvmShared::append_with_space`]).
    fn flush_spool_locked(&self, core: &mut CoreGuard<'_>) -> Result<()> {
        if core.spool.is_empty() {
            return Ok(());
        }
        let stats = &self.stats;
        let mut flushed_any = false;
        while let Some(spooled) = core.spool.pop_front() {
            let info = match self.append_with_space(core, spooled.tid, &spooled.ranges) {
                Ok(info) => info,
                Err(e) => {
                    core.spool.push_front(spooled);
                    return Err(e);
                }
            };
            flushed_any = true;
            stats.add(&stats.bytes_logged, info.record_bytes);
            for (weak, pages) in &spooled.pages {
                if let Some(region) = weak.upgrade() {
                    let mut pv = region.page_vector.lock();
                    for &p in pages {
                        pv.dec_unflushed(p);
                        pv.mark_page_dirty(p);
                    }
                    drop(pv);
                    for &p in pages {
                        core.page_queue.enqueue(&region, p, info.offset, info.seq);
                    }
                }
            }
            for r in &spooled.ranges {
                core.segs_in_log.insert(r.seg.as_u32());
            }
        }
        if flushed_any {
            core.wal.force()?;
            stats.add(&stats.log_forces, 1);
            stats.add(&stats.spool_flushes, 1);
        }
        Ok(())
    }

    /// Synchronous epoch truncation (§5.1.2's "space critical" path): the
    /// recovery procedure applied to the whole live log under the core
    /// lock, without releasing it. Only legal when no concurrent epoch is
    /// in flight — the two would race for the head. Returns whether the
    /// head moved.
    fn epoch_truncate_locked(&self, core: &mut Core) -> Result<bool> {
        debug_assert!(
            core.epoch.is_none(),
            "synchronous epoch truncation with an epoch in flight"
        );
        if core.wal.used() == 0 {
            return Ok(false);
        }
        let head = core.wal.head();
        // In-flight pipelined batches past the floor are written (or still
        // being written) but not forced; only the stable prefix below the
        // floor may be scanned and reclaimed.
        let split = match self.pipeline.floor() {
            Some(f) => f.tail().min(core.wal.tail()),
            None => core.wal.tail(),
        };
        if split <= head {
            return Ok(false);
        }
        let scan = scan_forward(
            core.wal.device().as_ref(),
            core.wal.capacity(),
            head,
            core.wal.seq_at_head(),
            Some(split),
        )?;

        let trees = build_latest_trees(&scan.records);
        let mut seg_ids: Vec<u32> = trees.keys().copied().collect();
        seg_ids.sort_unstable();
        for seg_raw in seg_ids {
            let tree = &trees[&seg_raw];
            let needed = tree
                .iter()
                .map(|(s, p)| s + p.len() as u64)
                .max()
                .unwrap_or(0);
            let dev = self.segment_device(core, SegmentId::new(seg_raw), needed)?;
            let catalog = self.segment_catalog(core, SegmentId::new(seg_raw), &dev)?;
            // Writes, syncs, and persists the catalog — all before the
            // head advance below (the scrub module's crash ordering).
            let outcome = apply_tree_verified(
                dev.as_ref(),
                catalog.as_deref(),
                tree,
                ApplyContext::Truncation,
            )?;
            self.charge_media(&outcome);
        }

        let stats = &self.stats;
        stats.add(&stats.truncation_bytes_scanned, split - head);
        for tree in trees.values() {
            stats.add(&stats.truncation_ranges_applied, tree.len() as u64);
            stats.add(&stats.truncation_bytes_applied, tree.total_len());
        }
        core.wal.advance_head(scan.tail, scan.next_seq);
        if scan.tail == core.wal.tail() {
            core.segs_in_log.clear();
            core.page_queue.clear();
            for region in self.regions.read().values() {
                region.page_vector.lock().clear_dirty_where_flushed();
            }
        } else {
            // Records above the pipeline floor are still live: drop only
            // the queue prefix this epoch applied and keep the (possibly
            // overbroad — that is merely conservative) segment set.
            core.page_queue.drain_below(scan.tail);
        }
        self.write_status_locked(core)?;
        self.stats.add(&self.stats.epoch_truncations, 1);
        Ok(true)
    }

    /// Concurrent epoch truncation (§5.1.2, Figure 6: the old epoch is
    /// truncated "while forward processing continues in the rest" of the
    /// log). Three phases:
    ///
    /// 1. **Snapshot** (core lock held): freeze the span
    ///    `[head, tail)` as the epoch, take over its segment set, drain
    ///    its page-queue prefix, and persist the boundary in the status
    ///    block — a crash from here on recovers by scanning from the
    ///    unmoved head, re-applying the span idempotently.
    /// 2. **Apply** (core lock *released*): scan the frozen span, build
    ///    the newest-wins recovery trees, write them to the data segments
    ///    and sync — while commits keep appending past `end`.
    /// 3. **Complete** (core lock reacquired): advance the head to `end`,
    ///    clear the epoch from core and status, settle the drained page
    ///    descriptors, and wake every thread waiting on the epoch.
    ///
    /// The off-lock scan is safe because records are appended *and
    /// forced* under a single core-lock hold — whenever the lock is free,
    /// every byte of `[head, tail)` is a fully written record — and the
    /// frozen span cannot be overwritten, because free-space accounting
    /// counts it as live until the head advances.
    ///
    /// `threshold`: re-checked under the lock; with `Some(t)` the epoch
    /// is skipped if utilization already dropped to `t` or below (another
    /// thread truncated first). `wait_if_busy`: wait for an in-flight
    /// epoch and then truncate what remains (explicit [`Rvm::truncate`])
    /// versus return immediately (threshold triggers — the in-flight
    /// epoch *is* the truncation that was asked for). Returns whether the
    /// head moved.
    fn epoch_truncate_concurrent(
        &self,
        threshold: Option<f64>,
        wait_if_busy: bool,
    ) -> Result<bool> {
        // Phase 1: snapshot the epoch boundary under the core lock.
        let (dev, area_len, start, start_seq, end) = {
            let mut core = self.core.lock();
            while core.epoch.is_some() {
                if !wait_if_busy {
                    return Ok(false);
                }
                self.epoch_done.wait(&mut core);
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(RvmError::Poisoned);
            }
            if let Some(t) = threshold {
                if core.wal.utilization() <= t {
                    return Ok(false);
                }
            }
            if core.wal.used() == 0 {
                return Ok(false);
            }
            let start = core.wal.head();
            let start_seq = core.wal.seq_at_head();
            // Freeze only the stable prefix below the pipeline floor:
            // in-flight pipelined batches are written (or still being
            // written) but not forced, and the off-lock apply requires
            // every byte of the span to be a fully written, forced record.
            let (end, next_seq, full) = match self.pipeline.floor() {
                Some(f) if f.tail() < core.wal.tail() => (f.tail(), f.next_seq(), false),
                _ => (core.wal.tail(), core.wal.next_seq(), true),
            };
            if end <= start {
                return Ok(false);
            }
            let segs = if full {
                std::mem::take(&mut core.segs_in_log)
            } else {
                // Records above the floor still reference segments; keep
                // the set (an overbroad set is merely conservative).
                core.segs_in_log.clone()
            };
            let drained = core.page_queue.drain_below(end);
            core.epoch = Some(EpochInFlight {
                end,
                next_seq,
                segs,
                drained,
            });
            // Persist the boundary *before* touching any segment.
            if let Err(e) = self.write_status_locked(&mut core) {
                self.abandon_epoch(&mut core);
                return self.guard_io(Err(e));
            }
            self.truncating.store(true, Ordering::Release);
            (
                core.wal.device().clone(),
                core.wal.capacity(),
                start,
                start_seq,
                end,
            )
        };

        // Phase 2: scan and apply the frozen span, off-lock.
        let applied = self.apply_epoch_span(&dev, area_len, start, start_seq, end);
        self.truncating.store(false, Ordering::Release);

        // Phase 3: reacquire to advance the head and settle the queue.
        let mut core = self.core.lock();
        let result = match applied {
            Ok(()) => {
                let epoch = core.epoch.take().expect("epoch still in flight");
                core.wal.advance_head(epoch.end, epoch.next_seq);
                // A drained page not re-dirtied during the apply is clean
                // now: its latest committed bytes were all in the frozen
                // span. One re-enqueued by a commit that landed during
                // the apply keeps its new descriptor and its dirty bit;
                // one with spooled (unflushed) data stays dirty too.
                for desc in &epoch.drained {
                    if core.page_queue.contains(desc.region_id, desc.page) {
                        continue;
                    }
                    if let Some(region) = desc.region.upgrade() {
                        let mut pv = region.page_vector.lock();
                        let entry = pv.entry_mut(desc.page);
                        if entry.unflushed == 0 {
                            entry.dirty = false;
                        }
                    }
                }
                self.write_status_locked(&mut core)
            }
            Err(e) => {
                self.abandon_epoch(&mut core);
                Err(e)
            }
        };
        self.epoch_done.notify_all();
        drop(core);
        self.guard_io(result)?;
        self.stats.add(&self.stats.epoch_truncations, 1);
        self.stats.add(&self.stats.epochs_truncated, 1);
        Ok(true)
    }

    /// Scans the frozen span `[start, end)` and applies its newest-wins
    /// trees to the data segments. Runs with the core lock released; the
    /// lock is taken only briefly to resolve segment devices.
    fn apply_epoch_span(
        &self,
        dev: &Arc<dyn Device>,
        area_len: u64,
        start: u64,
        start_seq: u64,
        end: u64,
    ) -> Result<()> {
        let scan = scan_forward(dev.as_ref(), area_len, start, start_seq, Some(end))?;
        if scan.tail != end {
            // Everything in the span was forced before the snapshot; a
            // short scan means the log was corrupted underneath us.
            return Err(RvmError::BadLog(format!(
                "epoch scan ended at {} before the snapshotted boundary {end}",
                scan.tail
            )));
        }
        let trees = build_latest_trees(&scan.records);
        let mut seg_ids: Vec<u32> = trees.keys().copied().collect();
        seg_ids.sort_unstable();
        type SegTargets = Vec<(Arc<dyn Device>, Option<Arc<SegmentChecksums>>)>;
        let seg_targets: SegTargets = {
            let mut core = self.core.lock();
            let mut seg_targets = Vec::with_capacity(seg_ids.len());
            for &seg_raw in &seg_ids {
                let tree = &trees[&seg_raw];
                let needed = tree
                    .iter()
                    .map(|(s, p)| s + p.len() as u64)
                    .max()
                    .unwrap_or(0);
                let dev = self.segment_device(&mut core, SegmentId::new(seg_raw), needed)?;
                let catalog = self.segment_catalog(&mut core, SegmentId::new(seg_raw), &dev)?;
                seg_targets.push((dev, catalog));
            }
            seg_targets
        };
        for (seg_raw, (seg_dev, catalog)) in seg_ids.iter().zip(&seg_targets) {
            let tree = &trees[seg_raw];
            // Writes, syncs, and persists the catalog; the head advances
            // only after phase 3 (the scrub module's crash ordering).
            let outcome = apply_tree_verified(
                seg_dev.as_ref(),
                catalog.as_deref(),
                tree,
                ApplyContext::Truncation,
            )?;
            self.charge_media(&outcome);
        }
        let stats = &self.stats;
        stats.add(&stats.truncation_bytes_scanned, end - start);
        for tree in trees.values() {
            stats.add(&stats.truncation_ranges_applied, tree.len() as u64);
            stats.add(&stats.truncation_bytes_applied, tree.total_len());
        }
        Ok(())
    }

    /// Reverts an epoch snapshot after a failure: the span is still live
    /// and unapplied, so its segment set and drained page descriptors go
    /// back where they were.
    fn abandon_epoch(&self, core: &mut Core) {
        if let Some(epoch) = core.epoch.take() {
            core.segs_in_log.extend(epoch.segs);
            core.page_queue.requeue_front(epoch.drained);
        }
    }

    /// Incremental truncation (Figure 7): write dirty pages from VM in
    /// page-queue order, advancing the log head. Returns bytes reclaimed.
    ///
    /// Steps are batched: up to [`INCREMENTAL_BATCH_PAGES`] writable pages
    /// are written and their segment devices synced once before the head
    /// advances past all of them, so each step costs one positioning
    /// batch rather than one sync per page.
    fn incremental_truncate_locked(&self, core: &mut CoreGuard<'_>, target: u64) -> Result<u64> {
        let start_head = core.wal.head();
        'outer: loop {
            // `flush_spool_locked` below may release the core lock while
            // waiting for space; if an epoch truncation started in that
            // window, stop — the epoch owns the head now, and every
            // remaining queue descriptor sits at or past its boundary.
            if core.epoch.is_some() {
                break;
            }
            if core.wal.head() - start_head >= target {
                break;
            }
            if core.page_queue.is_empty() {
                // Queue drained: every *reaped*, flushed change is
                // applied. The log is reclaimable up to the pipeline
                // floor; in-flight batches keep their span (their pages
                // only enter the queue at reap).
                let (tail, seq) = match self.pipeline.floor() {
                    Some(f) if f.tail() < core.wal.tail() => (f.tail(), f.next_seq()),
                    _ => (core.wal.tail(), core.wal.next_seq()),
                };
                if tail > core.wal.head() {
                    let full = tail == core.wal.tail();
                    core.wal.advance_head(tail, seq);
                    if full {
                        core.segs_in_log.clear();
                    }
                }
                break;
            }

            // Gather a batch of writable pages from the queue head.
            let mut batch: Vec<(Arc<RegionInner>, usize)> = Vec::new();
            while batch.len() < INCREMENTAL_BATCH_PAGES {
                let Some(front) = core.page_queue.front() else {
                    break;
                };
                let Some(region) = front.region.upgrade() else {
                    if batch.is_empty() {
                        // The region was unmapped: its pages cannot be
                        // written from VM any more. Revert to epoch
                        // truncation (§5.1.2).
                        self.epoch_truncate_locked(core)?;
                        break 'outer;
                    }
                    break;
                };
                let page = front.page;
                {
                    let mut pv = region.page_vector.lock();
                    let entry = *pv.entry(page);
                    if entry.uncommitted > 0 {
                        // "Incremental truncation is now blocked until
                        // the uncommitted reference count drops to zero."
                        break;
                    }
                    if entry.unflushed > 0 {
                        if !batch.is_empty() {
                            break;
                        }
                        // Committed data still in the spool: flushing it
                        // is always safe and unblocks the page.
                        drop(pv);
                        self.flush_spool_locked(core)?;
                        continue 'outer;
                    }
                    pv.entry_mut(page).reserved = true;
                }
                core.page_queue.pop_front();
                batch.push((region, page));
            }
            if batch.is_empty() {
                break; // blocked at the queue head
            }

            // Write the batch from VM to the data segments, one sync per
            // distinct device. Region pages are full segment pages
            // (mapping offsets are page-aligned), so the VM image updates
            // the checksum catalog exactly.
            for (region, page) in &batch {
                let page_off = *page as u64 * PAGE_SIZE;
                let len = PAGE_SIZE.min(region.len - page_off);
                let buf = region.read_bytes(page_off, len);
                region
                    .seg_dev
                    .write_at(region.seg_offset + page_off, &buf)?;
                if let Some(catalog) = &region.catalog {
                    catalog.update(((region.seg_offset + page_off) / PAGE_SIZE) as usize, &buf);
                }
            }
            let mut synced: Vec<u64> = Vec::new();
            for (region, _) in &batch {
                if !synced.contains(&region.id) {
                    region.seg_dev.sync()?;
                    synced.push(region.id);
                }
            }
            // Persist updated catalogs (once per segment) before the head
            // advances past the records whose pages were just applied.
            let mut persisted: Vec<u32> = Vec::new();
            for (region, _) in &batch {
                if let Some(catalog) = &region.catalog {
                    if !persisted.contains(&region.seg.as_u32()) {
                        catalog.persist()?;
                        persisted.push(region.seg.as_u32());
                    }
                }
            }
            for (region, page) in &batch {
                let mut pv = region.page_vector.lock();
                pv.entry_mut(*page).reserved = false;
                pv.entry_mut(*page).dirty = false;
            }
            self.stats.add(&self.stats.incremental_steps, 1);
            self.stats
                .add(&self.stats.pages_written_incremental, batch.len() as u64);

            // Move the log head to the next descriptor's offset — capped
            // at the pipeline floor: in-flight batches have no queue
            // entries yet, so the queue can skip straight from below the
            // floor to a later spool-flush descriptor, and the head must
            // not jump over unforced records.
            let floor = self.pipeline.floor();
            let cap = |off: u64, seq: u64| match floor {
                Some(f) if f.tail() < off => (f.tail(), f.next_seq()),
                None | Some(_) => (off, seq),
            };
            let (new_head, new_seq) = match core.page_queue.front() {
                Some(d) if d.offset > core.wal.head() => cap(d.offset, d.seq),
                Some(_) => (core.wal.head(), core.wal.seq_at_head()),
                None => cap(core.wal.tail(), core.wal.next_seq()),
            };
            core.wal.advance_head(new_head, new_seq);
        }
        let reclaimed = core.wal.head() - start_head;
        if reclaimed > 0 {
            self.write_status_locked(core)?;
        }
        Ok(reclaimed)
    }

    /// Runs the configured truncation mechanism once, in response to a
    /// threshold trigger (inline committer or the background thread).
    /// Takes the core lock itself; the caller must not hold it.
    pub(crate) fn run_triggered_truncation(&self, tuning: &Tuning) {
        // Threshold-triggered truncation swallows errors at its call
        // sites, so the poison transition must happen here or a failed
        // truncation would go entirely unnoticed.
        let result = (|| -> Result<()> {
            match tuning.truncation_mode {
                crate::options::TruncationMode::Epoch => {
                    // Concurrent protocol. If an epoch is already in
                    // flight, it *is* the truncation this trigger asked
                    // for — don't wait, just return.
                    self.epoch_truncate_concurrent(Some(tuning.truncation_threshold), false)?;
                }
                crate::options::TruncationMode::Incremental => {
                    let mut core = self.core.lock();
                    // Re-check under the lock; another committer may have
                    // truncated already. With an epoch in flight the head
                    // is owned by its completion — nothing to do inline.
                    if core.epoch.is_some() || core.wal.utilization() <= tuning.truncation_threshold
                    {
                        return Ok(());
                    }
                    let reclaimed = self
                        .incremental_truncate_locked(&mut core, tuning.incremental_reclaim_bytes)?;
                    // Blocked with space critical: revert to epoch
                    // truncation. The revert point must sit at or above
                    // the trigger threshold — with a threshold above
                    // 0.95, a bare `min(0.95)` would put the "critical"
                    // mark *below* the trigger and every blocked trigger
                    // would look critical immediately.
                    let critical = (tuning.truncation_threshold + 0.3)
                        .min(0.95)
                        .max(tuning.truncation_threshold);
                    if reclaimed == 0 && core.wal.utilization() > critical && core.epoch.is_none() {
                        self.epoch_truncate_locked(&mut core)?;
                    }
                }
            }
            Ok(())
        })();
        let _ = self.guard_io(result);
    }

    fn request_truncation(&self, tuning: &Tuning) {
        if tuning.background_truncation {
            let mut flag = self.bg_wakeup.lock();
            *flag = true;
            self.bg_condvar.notify_all();
        } else {
            self.run_triggered_truncation(tuning);
        }
    }

    /// One scrub pass over every mapped region with a checksum catalog
    /// (see [`Rvm::scrub`]). Device failures propagate (they are *not*
    /// checksum mismatches — the media may be fine); corruption never
    /// poisons the instance, it quarantines at most the affected regions.
    pub(crate) fn scrub_pass(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let regions: Vec<Arc<RegionInner>> = self.regions.read().values().cloned().collect();
        for region in regions {
            self.scrub_region(&region, &mut report)?;
        }
        Ok(report)
    }

    /// Scrubs one region page by page, taking the core lock per page so
    /// commits interleave freely with a pass.
    fn scrub_region(&self, region: &Arc<RegionInner>, report: &mut ScrubReport) -> Result<()> {
        if region.catalog.is_none() {
            return Ok(());
        }
        let pages = (region.len / PAGE_SIZE) as usize;
        for page in 0..pages {
            let core = self.core.lock();
            if core.epoch.is_some() {
                // An off-lock epoch apply owns the segment writers; the
                // rest of this region waits for the next pass.
                report.pages_skipped += (pages - page) as u64;
                return Ok(());
            }
            if !region.mapped.load(Ordering::Acquire) || region.is_degraded() {
                report.pages_skipped += (pages - page) as u64;
                return Ok(());
            }
            self.scrub_region_page(core, region, page, report)?;
        }
        Ok(())
    }

    /// Verifies one region page against the catalog and runs the repair
    /// ladder on a mismatch: bounded re-reads and mirror read-repair
    /// (inside [`read_page_verified`]), then a rewrite from the committed
    /// image in VM, else quarantine.
    ///
    /// Holding `core` for the whole page excludes every other segment
    /// writer (truncation holds `core`; the epoch apply was ruled out by
    /// the caller), so the read-check-rewrite sequence cannot race a
    /// concurrent apply to the same page.
    fn scrub_region_page(
        &self,
        _core: CoreGuard<'_>,
        region: &Arc<RegionInner>,
        page: usize,
        report: &mut ScrubReport,
    ) -> Result<()> {
        let catalog = region.catalog.as_ref().expect("caller checked");
        let media = &self.stats.media;
        let page_off = page as u64 * PAGE_SIZE;
        let seg_page = ((region.seg_offset + page_off) / PAGE_SIZE) as usize;
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let (verified, healed) =
            read_page_verified(region.seg_dev.as_ref(), catalog, seg_page, &mut buf)?;
        report.pages_scanned += 1;
        media.pages_scrubbed.fetch_add(1, Ordering::Relaxed);
        if verified {
            if healed {
                report.corruptions_detected += 1;
                report.corruptions_repaired += 1;
                media.corruptions_detected.fetch_add(1, Ordering::Relaxed);
                media.corruptions_repaired.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(());
        }
        report.corruptions_detected += 1;
        media.corruptions_detected.fetch_add(1, Ordering::Relaxed);
        // Re-reads and any mirror failed; next rung is a rewrite from the
        // committed image. A *loaded* page with no uncommitted
        // transaction activity holds exactly that image in VM: committed
        // changes were applied at load or written since, and map-time
        // truncation drained the segment's live log records before the
        // load, so nothing committed is missing from memory.
        let loaded = region
            .unloaded
            .lock()
            .as_ref()
            .is_none_or(|pending| !pending[page]);
        if loaded {
            let _mem = region.mem_lock.read();
            let uncommitted = region.page_vector.lock().entry(page).uncommitted;
            if uncommitted > 0 {
                // VM holds uncommitted bytes; retry on a later pass.
                report.pages_skipped += 1;
                return Ok(());
            }
            let len = PAGE_SIZE.min(region.len - page_off) as usize;
            let mut img = vec![0u8; len];
            // SAFETY: shared memory lock held; bounds within the region.
            unsafe { region.mem.copy_out(page_off as usize, &mut img) }?;
            region
                .seg_dev
                .write_at(region.seg_offset + page_off, &img)?;
            region.seg_dev.sync()?;
            catalog.update(seg_page, &img);
            catalog.persist()?;
            report.corruptions_repaired += 1;
            media.corruptions_repaired.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        // Unloaded and unverifiable: no healthy replica, no VM image, and
        // no log span to rebuild from — quarantine the region.
        report.pages_quarantined += 1;
        let _ = region.quarantine(seg_page);
        Ok(())
    }
}

fn background_truncation_loop(shared: Weak<RvmShared>) {
    loop {
        let Some(strong) = shared.upgrade() else {
            return;
        };
        {
            let mut flag = strong.bg_wakeup.lock();
            if !*flag {
                strong
                    .bg_condvar
                    .wait_for(&mut flag, std::time::Duration::from_millis(50));
            }
            *flag = false;
        }
        if strong.terminated.load(Ordering::Acquire) || strong.bg_stop.load(Ordering::Acquire) {
            return;
        }
        let tuning = *strong.tuning.read();
        strong.run_triggered_truncation(&tuning);
        drop(strong);
    }
}

/// Spawns the background truncation thread. The thread holds only a weak
/// reference so a dropped [`Rvm`] lets it exit on its next wakeup.
fn spawn_bg_thread(shared: &Arc<RvmShared>) -> JoinHandle<()> {
    let weak = Arc::downgrade(shared);
    std::thread::Builder::new()
        .name("rvm-truncation".to_owned())
        .spawn(move || background_truncation_loop(weak))
        .expect("failed to spawn the rvm truncation thread")
}

fn background_scrub_loop(shared: Weak<RvmShared>) {
    loop {
        let Some(strong) = shared.upgrade() else {
            return;
        };
        let interval = strong.tuning.read().scrub_interval_ms.max(1);
        {
            let mut flag = strong.scrub_wakeup.lock();
            if !*flag {
                strong
                    .scrub_condvar
                    .wait_for(&mut flag, std::time::Duration::from_millis(interval));
            }
            *flag = false;
        }
        if strong.terminated.load(Ordering::Acquire) || strong.scrub_stop.load(Ordering::Acquire) {
            return;
        }
        // A pass has no caller to report device errors to; the next tick
        // retries. A poisoned instance is left alone entirely — its
        // durable image must not be touched again.
        if !strong.poisoned.load(Ordering::Acquire) {
            let _ = strong.scrub_pass();
        }
        drop(strong);
    }
}

/// Spawns the background scrubber thread (weak reference, as above).
fn spawn_scrub_thread(shared: &Arc<RvmShared>) -> JoinHandle<()> {
    let weak = Arc::downgrade(shared);
    std::thread::Builder::new()
        .name("rvm-scrub".to_owned())
        .spawn(move || background_scrub_loop(weak))
        .expect("failed to spawn the rvm scrub thread")
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
