//! Crash-image enumeration.
//!
//! A crash can happen at any instant, but only `sync` boundaries change
//! what is *guaranteed* durable: between two syncs the set of reachable
//! crash images only grows as writes accumulate, so every image reachable
//! mid-window is also reachable at the window's end with the later writes
//! dropped. Enumerating just before each `sync` (plus the end of the
//! trace) therefore covers the full image space — the prefix pruning that
//! keeps exhaustive enumeration feasible.
//!
//! At a crash point, each device's writes since its own last completed
//! `sync` are pending. Pending writes are split into sector-granular
//! *pieces*; a crash image keeps an arbitrary subset of the pieces
//! (applied in issue order). This subsumes both extended fault fates of
//! the storage layer: `TornWrite` (a proper sub-range of one write's
//! pieces) and `ArbitrarySubset` (any keep/drop pattern across writes,
//! including out-of-order survival). `set_len` is modeled as ordered
//! metadata: always applied.
//!
//! Piece counts at or under [`EnumConfig::exhaustive_piece_cap`] are
//! enumerated exhaustively (2^n subsets); larger counts are sampled:
//! a deterministic worst-case core — all kept, all dropped, every single
//! piece dropped, every single piece kept — plus seeded random masks.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use rvm_storage::TraceOpKind;

use crate::{apply_write, ensure_len, xorshift64, Trace};

/// Enumeration tuning. The defaults enumerate a small workload
/// exhaustively in seconds; CI uses them as-is.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Torn-write granularity in bytes.
    pub sector: usize,
    /// A single write contributes at most this many pieces (bigger writes
    /// get proportionally coarser pieces — sound, since coarse subsets
    /// are a subset of the fine-grained image space).
    pub max_pieces_per_write: usize,
    /// Crash points with at most this many pieces are exhaustive.
    pub exhaustive_piece_cap: u32,
    /// Random masks per sampled crash point (on top of the deterministic
    /// worst-case core).
    pub samples_per_point: usize,
    /// Seed for sampled masks; a violation report quotes it.
    pub seed: u64,
    /// Stop after this many violations.
    pub max_violations: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            sector: 512,
            max_pieces_per_write: 4,
            exhaustive_piece_cap: 12,
            samples_per_point: 64,
            seed: 0xC0FF_EE00_D15C,
            max_violations: 1,
        }
    }
}

/// Coverage counters from one enumeration pass.
#[derive(Debug, Clone, Default)]
pub struct EnumStats {
    pub crash_points: usize,
    pub sampled_points: usize,
    pub images_enumerated: u64,
    /// Distinct images by hash, across all crash points.
    pub images_unique: u64,
    /// No crash point overflowed the exhaustive cap.
    pub exhaustive: bool,
}

/// One pending (unsynced) op on a device.
#[derive(Debug, Clone)]
enum Pending {
    Write { offset: u64, data: Vec<u8> },
    SetLen { len: u64 },
}

/// A keep-or-drop unit: a sector-aligned slice of one pending write.
/// `op` indexes the device's pending list; `start..start+len` its data.
#[derive(Debug, Clone, Copy)]
struct Piece {
    device: usize,
    op: usize,
    start: usize,
    len: usize,
}

/// Visits every crash image of `trace` under `cfg`.
///
/// The visitor receives the crash point, the kept-piece mask, a hash of
/// the whole image set (for cross-point dedup), and the per-device images
/// keyed by recorder id. Returning `false` stops the walk.
pub fn enumerate_images<F>(trace: &Trace, cfg: &EnumConfig, mut visit: F) -> EnumStats
where
    F: FnMut(usize, &[bool], u64, &[(u32, Vec<u8>)]) -> bool,
{
    let mut stats = EnumStats {
        exhaustive: true,
        ..EnumStats::default()
    };
    let mut unique: HashSet<u64> = HashSet::new();

    // Per-device rolling state: the durable image (as of the device's
    // last completed sync) and the pending ops since.
    let mut durable: Vec<Vec<u8>> = trace.devices.iter().map(|d| d.image.clone()).collect();
    let mut pending: Vec<Vec<Pending>> = vec![Vec::new(); trace.devices.len()];

    // Crash points: just before each sync, plus the end of the trace.
    let mut points: Vec<usize> = trace
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op.kind, TraceOpKind::Sync))
        .map(|(i, _)| i)
        .collect();
    points.push(trace.ops.len());
    stats.crash_points = points.len();

    let mut next_point = 0;
    for cursor in 0..=trace.ops.len() {
        while next_point < points.len() && points[next_point] == cursor {
            if !emit_point(
                trace,
                cfg,
                cursor,
                &durable,
                &pending,
                &mut stats,
                &mut unique,
                &mut visit,
            ) {
                stats.images_unique = unique.len() as u64;
                return stats;
            }
            next_point += 1;
        }
        if cursor == trace.ops.len() {
            break;
        }
        let op = &trace.ops[cursor];
        let d = op.device as usize;
        match &op.kind {
            TraceOpKind::Write { offset, data } => pending[d].push(Pending::Write {
                offset: *offset,
                data: data.clone(),
            }),
            TraceOpKind::SetLen { len } => pending[d].push(Pending::SetLen { len: *len }),
            TraceOpKind::Sync => {
                // The sync completed: everything pending on this device
                // becomes durable, in order.
                let ops = std::mem::take(&mut pending[d]);
                for p in ops {
                    match p {
                        Pending::Write { offset, data } => {
                            apply_write(&mut durable[d], offset, &data)
                        }
                        Pending::SetLen { len } => durable[d].resize(len as usize, 0),
                    }
                }
            }
        }
    }

    stats.images_unique = unique.len() as u64;
    stats
}

/// Emits every (or a sample of) crash image at one crash point.
#[allow(clippy::too_many_arguments)]
fn emit_point<F>(
    trace: &Trace,
    cfg: &EnumConfig,
    point: usize,
    durable: &[Vec<u8>],
    pending: &[Vec<Pending>],
    stats: &mut EnumStats,
    unique: &mut HashSet<u64>,
    visit: &mut F,
) -> bool
where
    F: FnMut(usize, &[bool], u64, &[(u32, Vec<u8>)]) -> bool,
{
    let pieces = split_pieces(cfg, pending);
    let n = pieces.len();

    let mut try_mask = |mask: &[bool]| -> bool {
        let images = synthesize(trace, durable, pending, &pieces, mask);
        let hash = hash_images(&images);
        stats.images_enumerated += 1;
        unique.insert(hash);
        visit(point, mask, hash, &images)
    };

    if n as u32 <= cfg.exhaustive_piece_cap {
        for bits in 0..(1u64 << n) {
            let mask: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if !try_mask(&mask) {
                return false;
            }
        }
        return true;
    }

    stats.sampled_points += 1;
    stats.exhaustive = false;
    // Deterministic worst-case core: both extremes, then each single
    // piece dropped (a torn straggler) and each kept alone (maximal
    // reordering).
    let mut masks: Vec<Vec<bool>> = vec![vec![true; n], vec![false; n]];
    for i in 0..n.min(64) {
        let mut dropped = vec![true; n];
        dropped[i] = false;
        masks.push(dropped);
        let mut alone = vec![false; n];
        alone[i] = true;
        masks.push(alone);
    }
    let mut rng = cfg.seed ^ (point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..cfg.samples_per_point {
        let mut mask = vec![false; n];
        let mut word = 0u64;
        for (i, m) in mask.iter_mut().enumerate() {
            if i % 64 == 0 {
                word = xorshift64(&mut rng);
            }
            *m = word >> (i % 64) & 1 == 1;
        }
        masks.push(mask);
    }
    for mask in &masks {
        if !try_mask(mask) {
            return false;
        }
    }
    true
}

/// Splits every pending write into sector-aligned pieces, coarsened so no
/// single write exceeds `max_pieces_per_write`.
fn split_pieces(cfg: &EnumConfig, pending: &[Vec<Pending>]) -> Vec<Piece> {
    let mut pieces = Vec::new();
    for (device, ops) in pending.iter().enumerate() {
        for (op, p) in ops.iter().enumerate() {
            let Pending::Write { data, .. } = p else {
                continue;
            };
            let len = data.len();
            if len == 0 {
                continue;
            }
            let mut chunk = len.div_ceil(cfg.max_pieces_per_write);
            chunk = chunk.div_ceil(cfg.sector) * cfg.sector;
            let mut start = 0;
            while start < len {
                let l = chunk.min(len - start);
                pieces.push(Piece {
                    device,
                    op,
                    start,
                    len: l,
                });
                start += l;
            }
        }
    }
    pieces
}

/// Builds the per-device crash images for one kept-piece mask.
fn synthesize(
    trace: &Trace,
    durable: &[Vec<u8>],
    pending: &[Vec<Pending>],
    pieces: &[Piece],
    mask: &[bool],
) -> Vec<(u32, Vec<u8>)> {
    let mut images: Vec<(u32, Vec<u8>)> = trace
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.id, durable[i].clone()))
        .collect();
    // Apply pending ops in issue order; a write lands only the kept
    // pieces of its payload (but a partially-kept write still extends the
    // image to the full write's footprint, as a torn platter write does).
    for (d, ops) in pending.iter().enumerate() {
        let img = &mut images[d].1;
        for (op_idx, p) in ops.iter().enumerate() {
            match p {
                Pending::SetLen { len } => img.resize(*len as usize, 0),
                Pending::Write { offset, data } => {
                    ensure_len(img, *offset, data.len());
                    for (pi, piece) in pieces.iter().enumerate() {
                        if piece.device == d && piece.op == op_idx && mask[pi] {
                            apply_write(
                                img,
                                offset + piece.start as u64,
                                &data[piece.start..piece.start + piece.len],
                            );
                        }
                    }
                }
            }
        }
    }
    images
}

fn hash_images(images: &[(u32, Vec<u8>)]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (id, img) in images {
        id.hash(&mut h);
        img.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::TraceOp;

    fn write(device: u32, offset: u64, data: Vec<u8>) -> TraceOp {
        TraceOp {
            device,
            kind: TraceOpKind::Write { offset, data },
        }
    }

    fn sync(device: u32) -> TraceOp {
        TraceOp {
            device,
            kind: TraceOpKind::Sync,
        }
    }

    fn tiny_trace(ops: Vec<TraceOp>) -> Trace {
        Trace {
            devices: vec![crate::DeviceBase {
                id: 0,
                name: "log".into(),
                is_log: true,
                image: vec![0; 8],
            }],
            ops,
            txns: Vec::new(),
            single_threaded: true,
        }
    }

    #[test]
    fn one_unsynced_write_yields_kept_and_dropped_images() {
        let trace = tiny_trace(vec![write(0, 0, vec![7; 4])]);
        let mut seen = Vec::new();
        let stats = enumerate_images(&trace, &EnumConfig::default(), |point, _, _, images| {
            seen.push((point, images[0].1.clone()));
            true
        });
        // One crash point (trace end, op index 1), one 1-piece write:
        // 2 images.
        assert_eq!(stats.crash_points, 1);
        assert_eq!(stats.images_enumerated, 2);
        assert_eq!(stats.images_unique, 2);
        assert!(stats.exhaustive);
        assert!(seen.contains(&(1, vec![0; 8])));
        assert!(seen.contains(&(1, vec![7, 7, 7, 7, 0, 0, 0, 0])));
    }

    #[test]
    fn synced_writes_are_durable_in_every_image() {
        let trace = tiny_trace(vec![
            write(0, 0, vec![1; 2]),
            sync(0),
            write(0, 4, vec![2; 2]),
        ]);
        let stats = enumerate_images(&trace, &EnumConfig::default(), |point, _, _, images| {
            if point > 1 {
                // Once the sync at op 1 completed, the first write is
                // durable in every image.
                assert_eq!(&images[0].1[..2], &[1, 1], "synced write present");
            }
            true
        });
        // Crash before the sync (2 images: write kept or dropped) plus
        // trace end (2 images over the second write).
        assert_eq!(stats.crash_points, 2);
        assert_eq!(stats.images_enumerated, 4);
        assert!(stats.exhaustive);
    }

    #[test]
    fn torn_write_pieces_split_on_sector() {
        let cfg = EnumConfig {
            sector: 2,
            max_pieces_per_write: 4,
            ..EnumConfig::default()
        };
        let trace = tiny_trace(vec![write(0, 0, vec![9; 8])]);
        let mut images = 0;
        let mut torn = false;
        let stats = enumerate_images(&trace, &cfg, |_, mask, _, imgs| {
            images += 1;
            let img = &imgs[0].1;
            if mask.iter().any(|&k| k) && mask.iter().any(|&k| !k) {
                torn = true;
                // A torn image is a sector-boundary mix of old and new.
                for (i, chunk) in img.chunks(2).enumerate() {
                    assert!(chunk == [9, 9] || chunk == [0, 0], "piece {i} mixed");
                }
            }
            true
        });
        // 8 bytes at sector 2 with cap 4 → 4 pieces → 16 subsets.
        assert_eq!(images, 16);
        assert_eq!(stats.images_unique, 16);
        assert!(torn, "partial masks produce torn images");
    }

    #[test]
    fn oversized_points_fall_back_to_sampling() {
        let cfg = EnumConfig {
            sector: 1,
            max_pieces_per_write: 64,
            exhaustive_piece_cap: 4,
            samples_per_point: 8,
            ..EnumConfig::default()
        };
        let trace = tiny_trace(vec![write(0, 0, (0..32).map(|i| i as u8 + 1).collect())]);
        let mut all_kept = false;
        let mut all_dropped = false;
        let stats = enumerate_images(&trace, &cfg, |_, mask, _, _| {
            all_kept |= mask.iter().all(|&k| k);
            all_dropped |= mask.iter().all(|&k| !k);
            true
        });
        assert!(!stats.exhaustive);
        assert_eq!(stats.sampled_points, 1);
        assert!(all_kept && all_dropped, "worst-case core always sampled");
    }

    #[test]
    fn piece_coarsening_respects_per_write_cap() {
        let cfg = EnumConfig {
            sector: 512,
            max_pieces_per_write: 4,
            ..EnumConfig::default()
        };
        let pending = vec![vec![Pending::Write {
            offset: 0,
            data: vec![0; 8192],
        }]];
        let pieces = split_pieces(&cfg, &pending);
        assert_eq!(pieces.len(), 4);
        assert!(pieces.iter().all(|p| p.len == 2048));
        assert_eq!(pieces.iter().map(|p| p.len).sum::<usize>(), 8192);
    }
}
