//! External data segments (§4.1).
//!
//! A segment is the backing store for recoverable memory — "a file or a raw
//! disk partition"; the distinction is invisible to programs, so segments
//! are named by a string and resolved to a [`Device`] through a
//! [`DeviceResolver`]. The default resolver opens (or creates) regular
//! files; tests and simulations inject resolvers returning shared
//! in-memory or latency-modelled devices.
//!
//! Segment identities are small integers recorded in the log's status
//! block, so crash recovery is self-contained: it can re-resolve every
//! segment the log references without application help.

use std::fmt;
use std::sync::Arc;

use rvm_storage::{Device, FileDevice};

/// Identifies a segment within one log's segment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(u32);

impl SegmentId {
    /// Creates a segment id from its raw table index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw table index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A segment-table entry as persisted in the log status block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment's id.
    pub id: SegmentId,
    /// The name the application mapped it by (a path for file-backed
    /// segments).
    pub name: String,
    /// Smallest device length the segment has been known to need; recovery
    /// grows the device to at least this before applying changes.
    pub min_len: u64,
}

/// Resolves a segment name to a device.
///
/// Called with the segment's name and the minimum length the caller needs;
/// the returned device must be at least that long.
pub type DeviceResolver =
    Arc<dyn Fn(&str, u64) -> rvm_storage::Result<Arc<dyn Device>> + Send + Sync>;

/// The default resolver: a segment name is a filesystem path, opened if it
/// exists (grown if shorter than needed) or created zero-filled.
pub fn file_resolver() -> DeviceResolver {
    Arc::new(|name: &str, min_len: u64| {
        let dev = FileDevice::open_or_create(name, min_len)?;
        if dev.len()? < min_len {
            dev.set_len(min_len)?;
        }
        Ok(Arc::new(dev) as Arc<dyn Device>)
    })
}

/// Wraps a resolver so every device it hands out injects faults from one
/// shared [`FaultClock`](rvm_storage::FaultClock) schedule.
///
/// This is the fault-injection hook for *segment* devices: recovery and
/// truncation resolve segments through the `Rvm` instance's resolver, so
/// wrapping it puts their writes on the same operation clock as a wrapped
/// log device — which is how the crash-during-recovery matrix places a
/// crash after the K-th device operation anywhere in the system.
pub fn flaky_resolver(
    inner: DeviceResolver,
    clock: Arc<rvm_storage::FaultClock>,
) -> DeviceResolver {
    Arc::new(move |name: &str, min_len: u64| {
        let dev = inner(name, min_len)?;
        Ok(Arc::new(rvm_storage::FlakyDevice::with_clock(
            dev,
            Arc::clone(&clock),
        )) as Arc<dyn Device>)
    })
}

/// A resolver over named in-memory devices, for tests and simulation.
///
/// All segments resolved through clones of one `MemResolver` share the same
/// backing images, so a "reboot" (a second `Rvm::initialize`) sees the
/// state an earlier instance persisted.
///
/// # Examples
///
/// ```
/// use rvm::segment::MemResolver;
///
/// let resolver = MemResolver::new();
/// let a = resolver.resolve("seg", 4096).unwrap();
/// let b = resolver.resolve("seg", 4096).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
#[derive(Clone, Default)]
pub struct MemResolver {
    devices:
        Arc<parking_lot::Mutex<std::collections::HashMap<String, Arc<rvm_storage::MemDevice>>>>,
}

impl MemResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the named in-memory device.
    pub fn resolve(&self, name: &str, min_len: u64) -> rvm_storage::Result<Arc<dyn Device>> {
        let mut devices = self.devices.lock();
        let dev = devices
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(rvm_storage::MemDevice::with_len(min_len)))
            .clone();
        if dev.len()? < min_len {
            dev.set_len(min_len)?;
        }
        Ok(dev)
    }

    /// Returns the named device if it exists.
    pub fn get(&self, name: &str) -> Option<Arc<rvm_storage::MemDevice>> {
        self.devices.lock().get(name).cloned()
    }

    /// Converts into a [`DeviceResolver`] for [`Options`](crate::Options).
    pub fn into_resolver(self) -> DeviceResolver {
        Arc::new(move |name, min_len| self.resolve(name, min_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_round_trip_and_display() {
        let id = SegmentId::new(7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(id.to_string(), "seg7");
    }

    #[test]
    fn mem_resolver_shares_devices_by_name() {
        let r = MemResolver::new();
        let a = r.resolve("x", 100).unwrap();
        a.write_at(0, &[42]).unwrap();
        let b = r.resolve("x", 100).unwrap();
        let mut buf = [0u8; 1];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 42);
        assert!(r.get("x").is_some());
        assert!(r.get("y").is_none());
    }

    #[test]
    fn mem_resolver_grows_devices() {
        let r = MemResolver::new();
        let a = r.resolve("x", 10).unwrap();
        assert_eq!(a.len().unwrap(), 10);
        let b = r.resolve("x", 100).unwrap();
        assert_eq!(b.len().unwrap(), 100);
    }

    #[test]
    fn flaky_resolver_injects_on_resolved_devices() {
        use rvm_storage::{FaultClock, FaultOp, FlakyFault};
        let clock = FaultClock::new(vec![FlakyFault::transient(FaultOp::Write, 1)]);
        let r = flaky_resolver(MemResolver::new().into_resolver(), clock);
        let dev = r("x", 64).unwrap();
        assert!(dev.write_at(0, &[1]).unwrap_err().is_transient());
        dev.write_at(0, &[1]).unwrap();
    }

    #[test]
    fn file_resolver_creates_and_grows() {
        let mut path = std::env::temp_dir();
        path.push(format!("rvm-seg-test-{}", std::process::id()));
        let name = path.to_str().unwrap().to_owned();
        let r = file_resolver();
        let dev = r(&name, 64).unwrap();
        assert_eq!(dev.len().unwrap(), 64);
        drop(dev);
        let dev = r(&name, 128).unwrap();
        assert_eq!(dev.len().unwrap(), 128);
        std::fs::remove_file(&path).unwrap();
    }
}
