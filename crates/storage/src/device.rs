//! The [`Device`] trait.

use std::sync::Arc;

use crate::Result;

/// A byte-addressable, synchronizable storage device.
///
/// This is the paper's notion of "a Unix file or a raw disk partition"
/// (§3.3): positional reads and writes plus a synchronous flush whose return
/// is the *only* durability point. RVM's permanence guarantee rests entirely
/// on the contract of [`Device::sync`]:
///
/// * data from a `write_at` that completed *before* the last successful
///   `sync` must survive a crash;
/// * data written *after* the last `sync` may be lost, and a single write
///   may be torn (a prefix persists).
///
/// Implementations must be safe to share across threads; RVM serializes
/// conflicting accesses itself but may issue reads concurrently.
pub trait Device: Send + Sync {
    /// Returns the current length of the device in bytes.
    fn len(&self) -> Result<u64>;

    /// Returns `true` if the device has zero length.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads `buf.len()` bytes starting at `offset`, filling `buf` exactly.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes all of `data` starting at `offset`.
    ///
    /// Writes beyond the end of the device must fail with
    /// [`DeviceError::OutOfBounds`](crate::DeviceError::OutOfBounds);
    /// devices are sized explicitly with [`Device::set_len`].
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Forces all completed writes to stable storage.
    fn sync(&self) -> Result<()>;

    /// Resizes the device, zero-filling any extension.
    fn set_len(&self, len: u64) -> Result<()>;
}

/// A reference-counted trait object for any device.
pub type SharedDevice = Arc<dyn Device>;

impl<D: Device + ?Sized> Device for Arc<D> {
    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        (**self).write_at(offset, data)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        (**self).set_len(len)
    }
}
