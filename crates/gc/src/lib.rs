//! A persistent object heap with crash-atomic copying garbage collection
//! over RVM segments.
//!
//! §8 cites O'Toole, Nettles and Gifford (SOSP '93), who used "RVM
//! segments ... as the stable to-space and from-space of the heap for a
//! language that supports concurrent garbage collection of persistent
//! data", as "further evidence of the versatility of RVM ... for a very
//! different context from the one that motivated it". This crate
//! recreates that construction in miniature:
//!
//! * two RVM regions are the **from-space** and **to-space**;
//! * objects carry reference slots (heap offsets) plus raw payload bytes;
//! * a fixed **root table** and a space-flip flag live in a third, small
//!   *meta* region;
//! * [`PersistentHeap::collect`] runs Cheney's copying collection from
//!   the roots into to-space, updating every reference — and the entire
//!   collection, including the space flip, is **one RVM transaction**:
//!   a crash at any point during GC recovers to the un-collected heap,
//!   a crash after commit recovers to the collected one. Atomicity makes
//!   a relocating collector over persistent data almost embarrassingly
//!   easy, which was rather the paper's point.
//!
//! Object handles are offsets in the *current* space and are invalidated
//! by a collection; persistent data structures reach their objects
//! through the root table, exactly as the stable heap of O'Toole et al.
//! reached its data through stable roots.

use rvm::{
    CommitMode, Region, RegionDescriptor, Result, Rvm, RvmError, Transaction, TxnMode, PAGE_SIZE,
};

const META_MAGIC: u64 = 0x5256_4D47_4348_5031; // "RVMGCHP1"
/// Number of root slots in the meta region.
pub const NUM_ROOTS: u64 = 64;

/// Meta-region layout.
mod meta {
    pub const MAGIC: u64 = 0;
    /// Which space (0/1) is current.
    pub const CURRENT: u64 = 8;
    /// Bump-allocation pointer within the current space.
    pub const ALLOC: u64 = 16;
    /// Live objects (diagnostic).
    pub const OBJECTS: u64 = 24;
    /// Root table of object offsets (0 = null).
    pub const ROOTS: u64 = 32;
}

/// Object header layout: `size_of_payload u32 | nrefs u32 | refs... | payload`.
const OBJ_HEADER: u64 = 8;

/// A handle to a heap object: its offset in the *current* space.
///
/// Invalidated by [`PersistentHeap::collect`]; re-fetch from roots after
/// collecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef(u64);

impl ObjRef {
    /// The null reference.
    pub const NULL: ObjRef = ObjRef(0);

    /// Returns `true` for null.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw offset (diagnostic).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A persistent, garbage-collected object heap over three RVM regions.
pub struct PersistentHeap {
    spaces: [Region; 2],
    meta: Region,
    space_len: u64,
}

impl PersistentHeap {
    /// Opens (creating on first use) a heap whose spaces are
    /// `space_len`-byte regions of segments `<name>-0` / `<name>-1`, with
    /// the meta region in `<name>-meta`.
    pub fn open(rvm: &Rvm, name: &str, space_len: u64) -> Result<PersistentHeap> {
        let space_len = space_len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let s0 = rvm.map(&RegionDescriptor::new(format!("{name}-0"), 0, space_len))?;
        let s1 = rvm.map(&RegionDescriptor::new(format!("{name}-1"), 0, space_len))?;
        let meta = rvm.map(&RegionDescriptor::new(format!("{name}-meta"), 0, PAGE_SIZE))?;
        let heap = PersistentHeap {
            spaces: [s0, s1],
            meta,
            space_len,
        };
        if heap.meta.get_u64(meta::MAGIC)? != META_MAGIC {
            let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
            heap.meta.put_u64(&mut txn, meta::MAGIC, META_MAGIC)?;
            heap.meta.put_u64(&mut txn, meta::CURRENT, 0)?;
            // Offset 0 is reserved so it can mean "null".
            heap.meta.put_u64(&mut txn, meta::ALLOC, OBJ_HEADER)?;
            heap.meta.put_u64(&mut txn, meta::OBJECTS, 0)?;
            txn.commit(CommitMode::Flush)?;
        }
        Ok(heap)
    }

    fn current(&self) -> Result<&Region> {
        Ok(&self.spaces[self.meta.get_u64(meta::CURRENT)? as usize & 1])
    }

    /// Bytes allocated in the current space.
    pub fn allocated(&self) -> Result<u64> {
        self.meta.get_u64(meta::ALLOC)
    }

    /// Live-object count as of the last collection plus allocations since.
    pub fn objects(&self) -> Result<u64> {
        self.meta.get_u64(meta::OBJECTS)
    }

    /// Allocates an object with `refs` reference slots and `payload`
    /// bytes, inside `txn`.
    pub fn alloc(&self, txn: &mut Transaction, refs: &[ObjRef], payload: &[u8]) -> Result<ObjRef> {
        let size = OBJ_HEADER + refs.len() as u64 * 8 + payload.len() as u64;
        let at = self.meta.get_u64(meta::ALLOC)?;
        if at + size > self.space_len {
            return Err(RvmError::OutOfRange {
                offset: at,
                len: size,
                region_len: self.space_len,
            });
        }
        let space = self.current()?;
        let mut buf = Vec::with_capacity(size as usize);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(refs.len() as u32).to_le_bytes());
        for r in refs {
            buf.extend_from_slice(&r.0.to_le_bytes());
        }
        buf.extend_from_slice(payload);
        space.write(txn, at, &buf)?;
        self.meta.put_u64(txn, meta::ALLOC, at + size)?;
        let n = self.meta.get_u64(meta::OBJECTS)?;
        self.meta.put_u64(txn, meta::OBJECTS, n + 1)?;
        Ok(ObjRef(at))
    }

    fn obj_geometry(&self, space: &Region, obj: ObjRef) -> Result<(u32, u32)> {
        let payload_len = space.get_u32(obj.0)?;
        let nrefs = space.get_u32(obj.0 + 4)?;
        Ok((payload_len, nrefs))
    }

    /// Reads an object's payload.
    pub fn payload(&self, obj: ObjRef) -> Result<Vec<u8>> {
        let space = self.current()?;
        let (payload_len, nrefs) = self.obj_geometry(space, obj)?;
        space.read_vec(obj.0 + OBJ_HEADER + nrefs as u64 * 8, payload_len as u64)
    }

    /// Reads an object's reference slots.
    pub fn refs(&self, obj: ObjRef) -> Result<Vec<ObjRef>> {
        let space = self.current()?;
        let (_, nrefs) = self.obj_geometry(space, obj)?;
        (0..nrefs as u64)
            .map(|i| Ok(ObjRef(space.get_u64(obj.0 + OBJ_HEADER + i * 8)?)))
            .collect()
    }

    /// Overwrites reference slot `slot` of `obj` inside `txn`.
    pub fn set_ref(
        &self,
        txn: &mut Transaction,
        obj: ObjRef,
        slot: u64,
        target: ObjRef,
    ) -> Result<()> {
        let space = self.current()?;
        let (_, nrefs) = self.obj_geometry(space, obj)?;
        if slot >= nrefs as u64 {
            return Err(RvmError::OutOfRange {
                offset: slot,
                len: 1,
                region_len: nrefs as u64,
            });
        }
        space.put_u64(txn, obj.0 + OBJ_HEADER + slot * 8, target.0)
    }

    /// Overwrites an object's payload (same length) inside `txn`.
    pub fn set_payload(&self, txn: &mut Transaction, obj: ObjRef, payload: &[u8]) -> Result<()> {
        let space = self.current()?;
        let (payload_len, nrefs) = self.obj_geometry(space, obj)?;
        if payload.len() as u64 != payload_len as u64 {
            return Err(RvmError::OutOfRange {
                offset: 0,
                len: payload.len() as u64,
                region_len: payload_len as u64,
            });
        }
        space.write(txn, obj.0 + OBJ_HEADER + nrefs as u64 * 8, payload)
    }

    /// Reads root slot `slot`.
    pub fn root(&self, slot: u64) -> Result<ObjRef> {
        assert!(slot < NUM_ROOTS, "root slot out of range");
        Ok(ObjRef(self.meta.get_u64(meta::ROOTS + slot * 8)?))
    }

    /// Sets root slot `slot` inside `txn`.
    pub fn set_root(&self, txn: &mut Transaction, slot: u64, obj: ObjRef) -> Result<()> {
        assert!(slot < NUM_ROOTS, "root slot out of range");
        self.meta.put_u64(txn, meta::ROOTS + slot * 8, obj.0)
    }

    /// Cheney's copying collection from the root table, as **one RVM
    /// transaction**: the to-space contents, the updated roots, the new
    /// allocation pointer, and the space flip all commit atomically.
    /// Returns (live objects, bytes reclaimed).
    pub fn collect(&self, rvm: &Rvm) -> Result<(u64, u64)> {
        let from_idx = (self.meta.get_u64(meta::CURRENT)? & 1) as usize;
        let from = &self.spaces[from_idx];
        let to = &self.spaces[from_idx ^ 1];
        let old_alloc = self.meta.get_u64(meta::ALLOC)?;

        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        // Forwarding table: from-offset -> to-offset (volatile; the whole
        // collection is one transaction, so no persistent forwarding
        // pointers are needed).
        let mut forwarded = std::collections::HashMap::new();
        let mut scan_queue: Vec<u64> = Vec::new();
        let mut to_alloc = OBJ_HEADER;
        let mut live = 0u64;

        // Evacuate an object, returning its to-space offset.
        let evacuate = |obj: u64,
                        txn: &mut Transaction,
                        forwarded: &mut std::collections::HashMap<u64, u64>,
                        scan_queue: &mut Vec<u64>,
                        to_alloc: &mut u64,
                        live: &mut u64|
         -> Result<u64> {
            if obj == 0 {
                return Ok(0);
            }
            if let Some(&f) = forwarded.get(&obj) {
                return Ok(f);
            }
            let payload_len = from.get_u32(obj)?;
            let nrefs = from.get_u32(obj + 4)?;
            let size = OBJ_HEADER + nrefs as u64 * 8 + payload_len as u64;
            let image = from.read_vec(obj, size)?;
            let new_at = *to_alloc;
            to.write(txn, new_at, &image)?;
            *to_alloc += size;
            *live += 1;
            forwarded.insert(obj, new_at);
            scan_queue.push(new_at);
            Ok(new_at)
        };

        // Roots.
        for slot in 0..NUM_ROOTS {
            let r = self.meta.get_u64(meta::ROOTS + slot * 8)?;
            let f = evacuate(
                r,
                &mut txn,
                &mut forwarded,
                &mut scan_queue,
                &mut to_alloc,
                &mut live,
            )?;
            self.meta.put_u64(&mut txn, meta::ROOTS + slot * 8, f)?;
        }
        // Breadth-first scan of evacuated objects, forwarding their refs.
        let mut next = 0usize;
        while next < scan_queue.len() {
            let at = scan_queue[next];
            next += 1;
            let nrefs = to.get_u32(at + 4)?;
            for i in 0..nrefs as u64 {
                let slot_off = at + OBJ_HEADER + i * 8;
                let target = to.get_u64(slot_off)?;
                let f = evacuate(
                    target,
                    &mut txn,
                    &mut forwarded,
                    &mut scan_queue,
                    &mut to_alloc,
                    &mut live,
                )?;
                to.put_u64(&mut txn, slot_off, f)?;
            }
        }

        // The flip: current space, allocation pointer, object count.
        self.meta
            .put_u64(&mut txn, meta::CURRENT, (from_idx ^ 1) as u64)?;
        self.meta.put_u64(&mut txn, meta::ALLOC, to_alloc)?;
        self.meta.put_u64(&mut txn, meta::OBJECTS, live)?;
        txn.commit(CommitMode::Flush)?;
        Ok((live, old_alloc.saturating_sub(to_alloc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::Options;
    use rvm_storage::MemDevice;
    use std::sync::Arc;

    fn world() -> (Arc<MemDevice>, MemResolver) {
        (Arc::new(MemDevice::with_len(8 << 20)), MemResolver::new())
    }

    fn boot(log: &Arc<MemDevice>, segs: &MemResolver) -> Rvm {
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(segs.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap()
    }

    #[test]
    fn objects_round_trip() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let leaf = heap.alloc(&mut txn, &[], b"leaf").unwrap();
        let node = heap
            .alloc(&mut txn, &[leaf, ObjRef::NULL], b"node")
            .unwrap();
        heap.set_root(&mut txn, 0, node).unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        let node = heap.root(0).unwrap();
        assert_eq!(heap.payload(node).unwrap(), b"node");
        let refs = heap.refs(node).unwrap();
        assert_eq!(refs.len(), 2);
        assert_eq!(heap.payload(refs[0]).unwrap(), b"leaf");
        assert!(refs[1].is_null());
    }

    #[test]
    fn collection_reclaims_garbage_and_preserves_the_graph() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 256 * 1024).unwrap();

        // A live list of 10 nodes and 50 garbage objects.
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let mut head = ObjRef::NULL;
        for i in 0..10u8 {
            head = heap.alloc(&mut txn, &[head], &[i; 16]).unwrap();
        }
        for _ in 0..50 {
            heap.alloc(&mut txn, &[], &[0xFF; 100]).unwrap();
        }
        heap.set_root(&mut txn, 0, head).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        let before = heap.allocated().unwrap();

        let (live, reclaimed) = heap.collect(&rvm).unwrap();
        assert_eq!(live, 10);
        assert!(reclaimed > 50 * 100, "reclaimed {reclaimed}");
        assert!(heap.allocated().unwrap() < before);

        // The list is intact (and in the other space now).
        let mut cur = heap.root(0).unwrap();
        let mut values = Vec::new();
        while !cur.is_null() {
            values.push(heap.payload(cur).unwrap()[0]);
            cur = heap.refs(cur).unwrap()[0];
        }
        assert_eq!(values, vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn shared_structure_is_copied_once() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let shared = heap.alloc(&mut txn, &[], b"shared").unwrap();
        let a = heap.alloc(&mut txn, &[shared], b"a").unwrap();
        let b = heap.alloc(&mut txn, &[shared], b"b").unwrap();
        heap.set_root(&mut txn, 0, a).unwrap();
        heap.set_root(&mut txn, 1, b).unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        let (live, _) = heap.collect(&rvm).unwrap();
        assert_eq!(live, 3, "shared object evacuated once");
        let a = heap.root(0).unwrap();
        let b = heap.root(1).unwrap();
        assert_eq!(heap.refs(a).unwrap()[0], heap.refs(b).unwrap()[0]);
    }

    #[test]
    fn cycles_survive_collection() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let a = heap.alloc(&mut txn, &[ObjRef::NULL], b"A").unwrap();
        let b = heap.alloc(&mut txn, &[a], b"B").unwrap();
        heap.set_ref(&mut txn, a, 0, b).unwrap(); // a -> b -> a
        heap.set_root(&mut txn, 0, a).unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        heap.collect(&rvm).unwrap();
        let a = heap.root(0).unwrap();
        let b = heap.refs(a).unwrap()[0];
        assert_eq!(heap.payload(a).unwrap(), b"A");
        assert_eq!(heap.payload(b).unwrap(), b"B");
        assert_eq!(heap.refs(b).unwrap()[0], a, "cycle closed");
    }

    #[test]
    fn heap_survives_crash_and_recovery() {
        let (log, segs) = world();
        {
            let rvm = boot(&log, &segs);
            let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            let obj = heap.alloc(&mut txn, &[], b"durable-object").unwrap();
            heap.set_root(&mut txn, 5, obj).unwrap();
            txn.commit(CommitMode::Flush).unwrap();
            heap.collect(&rvm).unwrap();
            std::mem::forget(rvm);
        }
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
        let obj = heap.root(5).unwrap();
        assert_eq!(heap.payload(obj).unwrap(), b"durable-object");
        assert_eq!(heap.objects().unwrap(), 1);
    }

    #[test]
    fn interrupted_collection_is_invisible() {
        // A "crash" mid-collection: the transaction never commits, so
        // the heap stays in from-space, untouched.
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 64 * 1024).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let obj = heap.alloc(&mut txn, &[], b"stable").unwrap();
        heap.set_root(&mut txn, 0, obj).unwrap();
        txn.commit(CommitMode::Flush).unwrap();

        // Simulate the abort path a crash would take mid-GC: begin a
        // transaction doing part of the copy, then drop it.
        {
            let mut gc_txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            // Scribble into to-space as a partial evacuation would.
            let to = &heap.spaces[1];
            to.write(&mut gc_txn, 8, &[0xEE; 64]).unwrap();
            heap.meta
                .put_u64(&mut gc_txn, super::meta::CURRENT, 1)
                .unwrap();
            drop(gc_txn); // aborted
        }
        assert_eq!(heap.payload(heap.root(0).unwrap()).unwrap(), b"stable");
        assert_eq!(heap.meta.get_u64(super::meta::CURRENT).unwrap(), 0);

        // And a real collection still works afterwards.
        let (live, _) = heap.collect(&rvm).unwrap();
        assert_eq!(live, 1);
        assert_eq!(heap.payload(heap.root(0).unwrap()).unwrap(), b"stable");
    }

    #[test]
    fn repeated_collections_ping_pong_spaces() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", 128 * 1024).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let obj = heap.alloc(&mut txn, &[], b"pingpong").unwrap();
        heap.set_root(&mut txn, 0, obj).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
        for round in 0..6 {
            // Add garbage each round, then collect it away.
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            for _ in 0..10 {
                heap.alloc(&mut txn, &[], &[round as u8; 64]).unwrap();
            }
            txn.commit(CommitMode::Flush).unwrap();
            let (live, _) = heap.collect(&rvm).unwrap();
            assert_eq!(live, 1, "round {round}");
            assert_eq!(heap.payload(heap.root(0).unwrap()).unwrap(), b"pingpong");
        }
    }

    #[test]
    fn allocation_failure_is_an_error() {
        let (log, segs) = world();
        let rvm = boot(&log, &segs);
        let heap = PersistentHeap::open(&rvm, "heap", PAGE_SIZE).unwrap();
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let r = heap.alloc(&mut txn, &[], &vec![0u8; 2 * PAGE_SIZE as usize]);
        assert!(matches!(r, Err(RvmError::OutOfRange { .. })));
        txn.commit(CommitMode::Flush).unwrap();
    }
}
