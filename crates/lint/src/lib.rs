//! `rvm-lint` — whole-workspace static analysis for the RVM codebase.
//!
//! Four passes, each encoding a discipline this codebase has had to
//! learn the hard way (see the module docs in `passes/`):
//!
//! 1. **lock-order** — every `.lock()`/`.read()`/`.write()` acquisition
//!    in `crates/core` checked (including interprocedurally) against the
//!    canonical order declared in `lockorder.toml`;
//! 2. **device-fallibility** — no `Device`/WAL/status-block `Result`
//!    silently discarded or unwrapped outside tests;
//! 3. **unlogged-write** — raw writes into mapped region memory in
//!    API-consumer functions that never declare a `set_range`;
//! 4. **panic-surface** — an inventory of unwrap/expect/panic!/indexing
//!    reachable from the public API of `rvm` and `rvm-capi`.
//!
//! Findings carry stable IDs (hash of pass, file, function, detail key —
//! *not* line numbers) and are suppressed either inline
//! (`// lint:allow(<pass>): reason`) or via the checked-in
//! `lint-baseline.toml` ratchet: CI fails only on findings not in the
//! baseline, so the lint lands green and the surface can only shrink.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled token
//! lexer plus function extraction (`items`), not full parsing. None of
//! the passes need type information — only token shapes and a call graph
//! resolved by unique bare name.

pub mod config;
pub mod findings;
pub mod items;
pub mod json;
pub mod lexer;
pub mod passes;
pub mod toml;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::{Baseline, ConfigError, LockOrder};
use findings::{Finding, Pass};
use items::FileModel;

/// Default location of the canonical lock order, workspace-relative.
pub const LOCKORDER_PATH: &str = "lockorder.toml";
/// Default location of the finding baseline, workspace-relative.
pub const BASELINE_PATH: &str = "lint-baseline.toml";

/// Which files a pass looks at (workspace-relative, `/`-separated).
fn in_scope(pass: Pass, path: &str) -> bool {
    // Never lint the linter, build output, or vendored deps.
    if path.starts_with("crates/lint/")
        || path.starts_with("target/")
        || path.starts_with("vendor/")
    {
        return false;
    }
    let core = path.starts_with("crates/core/src/");
    match pass {
        // The lock-order prose lives in crates/core; its models/ dir (if
        // any) and other crates have their own, simpler locking.
        Pass::LockOrder => core && !path.starts_with("crates/core/src/models/"),
        // Wherever Device/WAL results flow.
        Pass::DeviceFallibility => {
            core || path.starts_with("crates/storage/src/")
                || path.starts_with("crates/logtool/src/")
                || path.starts_with("crates/capi/src/")
        }
        // API consumers that touch mapped memory.
        Pass::UnloggedWrite => [
            "crates/alloc/",
            "crates/ds/",
            "crates/loader/",
            "crates/nest/",
            "crates/dist/",
            "crates/gc/",
            "crates/simpledb/",
            "crates/tpca/",
            "crates/coda/",
            "crates/camelot/",
            "crates/bench/",
            "examples/",
        ]
        .iter()
        .any(|p| path.starts_with(p)),
        Pass::PanicSurface => core || path.starts_with("crates/capi/src/"),
    }
}

/// `true` if the file is test-only (integration tests, benches, or the
/// shared `tests/` crate): unwraps there are fine.
fn file_is_test(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// Options for a lint run.
pub struct LintOptions {
    /// Workspace root.
    pub root: PathBuf,
    /// Path to `lockorder.toml` (absolute or root-relative).
    pub lockorder: PathBuf,
    /// Path to `lint-baseline.toml` (absolute or root-relative).
    pub baseline: PathBuf,
}

impl LintOptions {
    pub fn new(root: impl Into<PathBuf>) -> LintOptions {
        let root = root.into();
        LintOptions {
            lockorder: root.join(LOCKORDER_PATH),
            baseline: root.join(BASELINE_PATH),
            root,
        }
    }
}

/// The outcome of a lint run.
pub struct Report {
    /// Every finding, in pass order then file/line order.
    pub findings: Vec<Finding>,
    /// IDs present in the baseline but produced by this run anyway
    /// (suppressed).
    pub baselined: Vec<Finding>,
    /// Findings NOT in the baseline — these fail CI.
    pub fresh: Vec<Finding>,
    /// Baseline entries whose finding no longer exists (fixed code):
    /// reported so the baseline can be re-tightened.
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed per pass slug.
    pub files_scanned: BTreeMap<&'static str, usize>,
}

/// Recursively collects `.rs` files under `dir`, as workspace-relative
/// `/`-separated paths. Deterministic (sorted) so finding order and
/// ordinal IDs are stable across platforms.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if matches!(name, "target" | "vendor" | ".git" | ".cargo") {
                continue;
            }
            collect_rs(root, &p, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Runs all four passes over the workspace.
pub fn lint_workspace(opts: &LintOptions) -> Result<Report, ConfigError> {
    let order = LockOrder::load(&opts.lockorder)?;
    let baseline = Baseline::load(&opts.baseline)?;

    let mut paths = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = opts.root.join(top);
        if dir.is_dir() {
            collect_rs(&opts.root, &dir, &mut paths)
                .map_err(|e| ConfigError(format!("walking {top}/: {e}")))?;
        }
    }

    // Load each file once; passes share the models.
    let mut models: Vec<FileModel> = Vec::new();
    for rel in &paths {
        if !Pass::ALL.iter().any(|&p| in_scope(p, rel)) {
            continue;
        }
        let src = std::fs::read_to_string(opts.root.join(rel))
            .map_err(|e| ConfigError(format!("reading {rel}: {e}")))?;
        models.push(FileModel::build(rel, &src, file_is_test(rel)));
    }

    let mut findings = Vec::new();
    let mut files_scanned = BTreeMap::new();
    for &pass in &Pass::ALL {
        let scoped: Vec<&FileModel> = models.iter().filter(|m| in_scope(pass, &m.path)).collect();
        files_scanned.insert(pass.slug(), scoped.len());
        let mut fs = match pass {
            Pass::LockOrder => passes::lockorder::run(&order, &scoped),
            Pass::DeviceFallibility => passes::fallibility::run(&scoped),
            Pass::UnloggedWrite => passes::unlogged::run(&scoped),
            Pass::PanicSurface => passes::panics::run(&scoped),
        };
        fs.sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));
        findings.extend(fs);
    }

    let (baselined, fresh): (Vec<Finding>, Vec<Finding>) = findings
        .iter()
        .cloned()
        .partition(|f| baseline.contains(&f.id));
    let stale_baseline: Vec<String> = baseline
        .entries
        .iter()
        .filter(|e| !findings.iter().any(|f| f.id == e.id))
        .map(|e| e.id.clone())
        .collect();

    Ok(Report {
        findings,
        baselined,
        fresh,
        stale_baseline,
        files_scanned,
    })
}

impl Report {
    /// Machine-readable report. Schema:
    ///
    /// ```json
    /// {"schema": 1,
    ///  "findings": [{"id": "...", "pass": "...", "file": "...",
    ///                "line": 1, "function": "...", "message": "...",
    ///                "baselined": false}, ...],
    ///  "counts": {"total": n, "fresh": n, "baselined": n,
    ///             "stale_baseline": n}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut j = json::JsonBuf::default();
        j.obj_open();
        j.num_field("schema", 1);
        j.arr_open("findings");
        for f in &self.findings {
            let baselined = self.baselined.iter().any(|b| b.id == f.id);
            j.obj_open();
            j.str_field("id", &f.id);
            j.str_field("pass", f.pass.slug());
            j.str_field("file", &f.file);
            j.num_field("line", f.line as u64);
            j.str_field("function", &f.function);
            j.str_field("message", &f.message);
            j.bool_field("baselined", baselined);
            j.obj_close();
        }
        j.arr_close();
        j.key("counts");
        j.obj_open();
        j.num_field("total", self.findings.len() as u64);
        j.num_field("fresh", self.fresh.len() as u64);
        j.num_field("baselined", self.baselined.len() as u64);
        j.num_field("stale_baseline", self.stale_baseline.len() as u64);
        j.obj_close();
        j.obj_close();
        j.finish()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.fresh {
            out.push_str("NEW  ");
            out.push_str(&f.render());
            out.push('\n');
        }
        for f in &self.baselined {
            out.push_str("base ");
            out.push_str(&f.render());
            out.push('\n');
        }
        for id in &self.stale_baseline {
            out.push_str(&format!(
                "stale baseline entry {id} — the finding is gone; \
                 re-run with --write-baseline to tighten the ratchet\n"
            ));
        }
        let scanned: Vec<String> = self
            .files_scanned
            .iter()
            .map(|(k, v)| format!("{k}: {v} files"))
            .collect();
        out.push_str(&format!(
            "rvm-lint: {} finding(s): {} new, {} baselined, {} stale baseline entr{} ({})\n",
            self.findings.len(),
            self.fresh.len(),
            self.baselined.len(),
            self.stale_baseline.len(),
            if self.stale_baseline.len() == 1 {
                "y"
            } else {
                "ies"
            },
            scanned.join(", "),
        ));
        out
    }
}

/// Markers delimiting the rendered section inside DESIGN.md.
pub const DESIGN_BEGIN: &str = "<!-- lockorder:begin (rendered by rvm-lint --update-design) -->";
pub const DESIGN_END: &str = "<!-- lockorder:end -->";

/// Replaces the marked region of `design_src` with the section rendered
/// from `order`. Returns `None` if the markers are missing.
pub fn splice_design(design_src: &str, order: &LockOrder) -> Option<String> {
    let begin = design_src.find(DESIGN_BEGIN)?;
    let end_at = design_src.find(DESIGN_END)?;
    if end_at < begin {
        return None;
    }
    let mut out = String::new();
    out.push_str(&design_src[..begin + DESIGN_BEGIN.len()]);
    out.push_str("\n\n");
    out.push_str(&order.render_markdown());
    out.push('\n');
    out.push_str(&design_src[end_at..]);
    Some(out)
}

const USAGE: &str = "\
rvm-lint — static analysis for the RVM workspace

USAGE:
    rvm-lint [OPTIONS]            (also: rvmlog lint [OPTIONS])

OPTIONS:
    --root <dir>          workspace root (default: auto-detect from cwd)
    --lockorder <file>    lock-order declaration (default: <root>/lockorder.toml)
    --baseline <file>     finding baseline (default: <root>/lint-baseline.toml)
    --json                emit the machine-readable report on stdout
    --write-baseline      rewrite the baseline to the current findings
                          (preserving notes) and exit 0
    --update-design       re-render the Locking section of DESIGN.md from
                          the lock-order declaration and exit 0
    -h, --help            this help

EXIT STATUS:
    0  no findings outside the baseline
    1  new findings (listed with the NEW prefix)
    2  usage or configuration error
";

/// Walks up from `start` to the first directory containing both
/// `Cargo.toml` and `crates/`.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut d = start;
    loop {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        if !d.pop() {
            return None;
        }
    }
}

/// The shared CLI driver behind both `rvm-lint` and `rvmlog lint`.
/// Returns the process exit code (0 clean, 1 new findings, 2 usage or
/// configuration error).
pub fn cli_main(argv: &[String]) -> i32 {
    fn fail(msg: &str) -> i32 {
        eprintln!("rvm-lint: {msg}");
        2
    }
    let mut args = argv.iter();
    let mut root: Option<PathBuf> = None;
    let mut lockorder: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut update_design = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" | "--lockorder" | "--baseline" => {
                let Some(v) = args.next() else {
                    return fail(&format!("{a} needs a value"));
                };
                let v = PathBuf::from(v);
                match a.as_str() {
                    "--root" => root = Some(v),
                    "--lockorder" => lockorder = Some(v),
                    _ => baseline = Some(v),
                }
            }
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--update-design" => update_design = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => return fail(&format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }

    let found = root.or_else(|| find_root(std::env::current_dir().ok()?));
    let Some(root) = found else {
        return fail("cannot find workspace root (try --root)");
    };
    let mut opts = LintOptions::new(&root);
    if let Some(p) = lockorder {
        opts.lockorder = p;
    }
    if let Some(p) = baseline {
        opts.baseline = p;
    }

    if update_design {
        let order = match LockOrder::load(&opts.lockorder) {
            Ok(o) => o,
            Err(e) => return fail(&e.to_string()),
        };
        let design = root.join("DESIGN.md");
        let src = match std::fs::read_to_string(&design) {
            Ok(s) => s,
            Err(e) => return fail(&format!("reading {}: {e}", design.display())),
        };
        let Some(out) = splice_design(&src, &order) else {
            return fail("DESIGN.md has no lockorder:begin/end markers");
        };
        if out != src {
            if let Err(e) = std::fs::write(&design, out) {
                return fail(&format!("writing {}: {e}", design.display()));
            }
            eprintln!("rvm-lint: DESIGN.md Locking section updated");
        } else {
            eprintln!("rvm-lint: DESIGN.md Locking section already current");
        }
        return 0;
    }

    let report = match lint_workspace(&opts) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };

    if write_baseline {
        let prev = Baseline::load(&opts.baseline).unwrap_or_default();
        let rendered = Baseline::render(&report.findings, &prev);
        if let Err(e) = std::fs::write(&opts.baseline, rendered) {
            return fail(&format!("writing {}: {e}", opts.baseline.display()));
        }
        eprintln!(
            "rvm-lint: baseline rewritten with {} finding(s)",
            report.findings.len()
        );
        return 0;
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.fresh.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rules() {
        assert!(in_scope(Pass::LockOrder, "crates/core/src/rvm.rs"));
        assert!(!in_scope(Pass::LockOrder, "crates/storage/src/device.rs"));
        assert!(in_scope(
            Pass::DeviceFallibility,
            "crates/logtool/src/lib.rs"
        ));
        assert!(in_scope(Pass::UnloggedWrite, "examples/src/lib.rs"));
        assert!(!in_scope(Pass::UnloggedWrite, "crates/core/src/rvm.rs"));
        assert!(in_scope(Pass::PanicSurface, "crates/capi/src/lib.rs"));
        for p in Pass::ALL {
            assert!(!in_scope(p, "crates/lint/src/lib.rs"));
            assert!(!in_scope(p, "vendor/rand/src/lib.rs"));
        }
    }

    #[test]
    fn design_splice_replaces_marked_region() {
        let order = LockOrder::parse(
            "[[lock]]\nrank = 1\nname = \"core\"\npatterns = [\"core.lock\"]\ndesc = \"d\"\n",
        )
        .unwrap();
        let doc = format!("# Title\n\n{DESIGN_BEGIN}\nold\n{DESIGN_END}\n\ntail\n");
        let out = splice_design(&doc, &order).unwrap();
        assert!(out.contains("| 1 | core |"));
        assert!(!out.contains("\nold\n"));
        assert!(out.contains("tail"));
        assert!(splice_design("no markers", &order).is_none());
    }
}
