//! Truncation under load: wraparound, threshold triggering, incremental
//! truncation and its epoch fallback, and crashes racing truncation.

mod common {
    include!("lib.rs");
}

use common::World;
use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TruncationMode, Tuning, TxnMode, PAGE_SIZE};

#[test]
fn log_wraps_many_times_under_sustained_load() {
    // ~16 KiB of record area; each txn consumes ~1 KiB of log.
    let world = World::new(40 * 1024);
    let rvm = world.boot_tuned(Tuning {
        truncation_threshold: 0.6,
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
        .unwrap();
    for i in 0..500u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region
            .write(&mut txn, (i % 8) * 512, &[(i % 251) as u8; 512])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    let stats = rvm.stats();
    assert!(stats.epoch_truncations >= 10, "{stats:?}");
    drop(rvm);

    // Everything still consistent after reboot.
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 2 * PAGE_SIZE))
        .unwrap();
    for slot in 0..8u64 {
        // The last writer of slot s was the largest i < 500 with i%8 == s.
        let i = if 496 + slot < 500 {
            496 + slot
        } else {
            488 + slot
        };
        assert_eq!(
            region.read_vec(slot * 512, 4).unwrap(),
            vec![(i % 251) as u8; 4],
            "slot {slot}"
        );
    }
}

#[test]
fn explicit_truncate_empties_the_log_and_applies_data() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    for i in 0..20u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, i * 100, &[7; 100]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    assert!(rvm.query().log.used > 0);
    rvm.truncate().unwrap();
    assert_eq!(rvm.query().log.used, 0);
    let seg = world.segments.get("seg").unwrap();
    let mut buf = vec![0u8; 100];
    use rvm_storage::Device;
    seg.read_at(500, &mut buf).unwrap();
    assert_eq!(buf, vec![7; 100]);
}

#[test]
fn incremental_mode_sustains_load_and_recovers() {
    let world = World::new(128 * 1024);
    let rvm = world.boot_tuned(Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.25,
        incremental_reclaim_bytes: 16 * 1024,
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 16 * PAGE_SIZE))
        .unwrap();
    for i in 0..400u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        let off = (i % 16) * PAGE_SIZE + (i % 4) * 600;
        region
            .write(&mut txn, off, &[(i % 251) as u8; 600])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    let stats = rvm.stats();
    assert!(stats.pages_written_incremental > 0, "{stats:?}");
    drop(rvm);

    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 16 * PAGE_SIZE))
        .unwrap();
    for j in 0..16u64 {
        let i = 384 + j;
        let off = (i % 16) * PAGE_SIZE + (i % 4) * 600;
        assert_eq!(
            region.read_vec(off, 4).unwrap(),
            vec![(i % 251) as u8; 4],
            "txn {i}"
        );
    }
}

#[test]
fn incremental_blocked_by_long_transaction_falls_back_to_epoch() {
    let world = World::new(48 * 1024);
    let rvm = world.boot_tuned(Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.2,
        incremental_reclaim_bytes: u64::MAX,
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();

    // Pin page 0 with a long-running transaction, then hammer commits to
    // the same page until the log is critical: RVM must revert to epoch
    // truncation rather than fill the log.
    let mut long_txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    long_txn.set_range(&region, 0, 8).unwrap();
    for i in 0..60u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region
            .write(&mut txn, 64 + (i % 8) * 128, &[3; 128])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    let stats = rvm.stats();
    assert!(
        stats.epoch_truncations > 0,
        "epoch fallback must fire: {stats:?}"
    );
    long_txn.commit(CommitMode::Flush).unwrap();
}

#[test]
fn unmapped_region_in_queue_falls_back_to_epoch() {
    let world = World::new(64 * 1024);
    let rvm = world.boot_tuned(Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.9, // no automatic triggering
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[1; 64]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    rvm.unmap(&region).unwrap();
    drop(region);

    // Force an incremental pass via the public truncate (epoch) path is
    // not what we want; instead shrink the threshold and commit to
    // another region so truncation runs with the dead descriptor queued.
    let other = rvm
        .map(&RegionDescriptor::new("seg2", 0, PAGE_SIZE))
        .unwrap();
    rvm.set_options(Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.0001,
        ..Tuning::default()
    });
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    other.write(&mut txn, 0, &[2; 64]).unwrap();
    txn.commit(CommitMode::Flush).unwrap();
    assert!(rvm.stats().epoch_truncations > 0);

    // The unmapped region's committed data reached its segment.
    use rvm_storage::Device;
    let seg = world.segments.get("seg").unwrap();
    let mut buf = [0u8; 4];
    seg.read_at(0, &mut buf).unwrap();
    assert_eq!(buf, [1; 4]);
}

#[test]
fn extreme_threshold_keeps_the_epoch_fallback_above_the_trigger() {
    // The incremental mode's "space critical" revert point is
    // `threshold + 0.3`, capped at 0.95. With a threshold above the cap
    // (here 0.97) the uncapped arithmetic would put the revert point
    // *below* the trigger — the clamp must keep it at the threshold so
    // the invariant `trigger <= critical` holds and a blocked queue
    // still falls back to epoch truncation instead of filling the log.
    let world = World::new(20 * 1024);
    let rvm = world.boot_tuned(Tuning {
        truncation_mode: TruncationMode::Incremental,
        truncation_threshold: 0.97,
        incremental_reclaim_bytes: u64::MAX,
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, 4 * PAGE_SIZE))
        .unwrap();

    // Pin page 0 so incremental truncation is blocked at the queue head,
    // then push the log well past 97% utilization. Every commit must
    // keep succeeding: the revert must engage rather than return LogFull.
    let mut long_txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    long_txn.set_range(&region, 0, 8).unwrap();
    for i in 0..120u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region
            .write(&mut txn, 64 + (i % 8) * 128, &[5; 128])
            .unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    let stats = rvm.stats();
    assert!(
        stats.epoch_truncations > 0,
        "blocked incremental at >97% utilization must revert to epoch: {stats:?}"
    );
    assert!(rvm.query().log.utilization < 0.97);
    long_txn.commit(CommitMode::Flush).unwrap();
}

#[test]
fn set_options_toggles_the_background_truncation_thread() {
    let world = World::new(64 * 1024);
    // Born without a background thread, and with a threshold high enough
    // that nothing triggers inline.
    let rvm = world.boot_tuned(Tuning {
        truncation_threshold: 0.95,
        ..Tuning::default()
    });
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    for i in 0..24u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, (i % 4) * 512, &[8; 512]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    assert_eq!(rvm.stats().epoch_truncations, 0);

    // Enabling background truncation must actually spawn the thread: no
    // further commits happen, so only the background thread can notice
    // the lowered threshold and truncate.
    rvm.set_options(Tuning {
        background_truncation: true,
        truncation_threshold: 0.01,
        ..Tuning::default()
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while rvm.stats().epoch_truncations == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        rvm.stats().epoch_truncations > 0,
        "the toggled-on background thread never truncated"
    );

    // Disabling joins the thread; the threshold keeps working inline.
    rvm.set_options(Tuning {
        background_truncation: false,
        truncation_threshold: 0.01,
        ..Tuning::default()
    });
    let before = rvm.stats().epoch_truncations;
    for i in 0..8u64 {
        let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
        region.write(&mut txn, (i % 4) * 512, &[9; 512]).unwrap();
        txn.commit(CommitMode::Flush).unwrap();
    }
    assert!(
        rvm.stats().epoch_truncations > before,
        "inline truncation must take over after the toggle-off"
    );
    rvm.terminate().unwrap();
}

#[test]
fn truncation_after_no_flush_commits_requires_flush_first() {
    let world = World::new(1 << 20);
    let rvm = world.boot();
    let region = rvm
        .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
        .unwrap();
    let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
    region.write(&mut txn, 0, &[9; 32]).unwrap();
    txn.commit(CommitMode::NoFlush).unwrap();

    // Paper semantics: truncate covers the write-ahead log only; the
    // spooled commit is untouched.
    rvm.truncate().unwrap();
    assert_eq!(rvm.query().spooled_transactions, 1);
    use rvm_storage::Device;
    let seg = world.segments.get("seg").unwrap();
    let mut buf = [0u8; 4];
    seg.read_at(0, &mut buf).unwrap();
    assert_eq!(buf, [0; 4], "spooled data must not reach the segment");

    rvm.flush().unwrap();
    rvm.truncate().unwrap();
    seg.read_at(0, &mut buf).unwrap();
    assert_eq!(buf, [9; 4]);
}

#[test]
fn crash_mid_truncation_is_recoverable() {
    use rvm_storage::{CrashPlan, FaultDevice, MemDevice};
    use std::sync::Arc;

    // Drive a workload whose truncation writes through a fault device on
    // the *segment* side; crashes during segment application must leave
    // the log intact so recovery replays.
    for crash_at in [2000u64, 6000, 12000] {
        let log = Arc::new(MemDevice::with_len(64 * 1024));
        let seg_inner = Arc::new(MemDevice::with_len(PAGE_SIZE));
        let seg_fault = Arc::new(FaultDevice::new(
            seg_inner.clone(),
            CrashPlan::torn_at(crash_at),
        ));
        let seg_for_resolver = seg_fault.clone();
        let resolver: rvm::segment::DeviceResolver = Arc::new(move |_n, min| {
            use rvm_storage::Device;
            if seg_for_resolver.as_ref().len().unwrap_or(0) < min {
                seg_for_resolver.as_ref().set_len(min)?;
            }
            Ok(seg_for_resolver.clone() as Arc<dyn rvm_storage::Device>)
        });
        let mut committed = 0u64;
        {
            let rvm = Rvm::initialize(
                Options::new(log.clone())
                    .resolver(resolver)
                    .tuning(Tuning {
                        truncation_threshold: 0.15,
                        ..Tuning::default()
                    })
                    .create_if_empty(),
            )
            .unwrap();
            let Ok(region) = rvm.map(&RegionDescriptor::new("seg", 0, PAGE_SIZE)) else {
                std::mem::forget(rvm);
                continue;
            };
            for i in 1..=40u64 {
                let Ok(mut txn) = rvm.begin_transaction(TxnMode::Restore) else {
                    break;
                };
                if region.put_u64(&mut txn, (i % 16) * 8, i).is_err() {
                    break;
                }
                match txn.commit(CommitMode::Flush) {
                    Ok(()) => committed = i,
                    Err(_) => break,
                }
            }
            std::mem::forget(rvm);
        }

        // Reboot with the (possibly torn) segment image and intact log.
        let seg_resolver = rvm::segment::MemResolver::new();
        seg_resolver.resolve("seg", PAGE_SIZE).unwrap();
        seg_resolver
            .get("seg")
            .unwrap()
            .restore(seg_inner.snapshot());
        let rvm = Rvm::initialize(
            Options::new(log)
                .resolver(seg_resolver.clone().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm
            .map(&RegionDescriptor::new("seg", 0, PAGE_SIZE))
            .unwrap();
        let recovered: Vec<u64> = (0..16).map(|s| region.get_u64(s * 8).unwrap()).collect();
        // Every acked transaction's slot holds a value >= what it wrote
        // at its last update; full prefix semantics as in the crash
        // matrix are guaranteed because the log survived.
        for i in 1..=committed {
            let slot = (i % 16) as usize;
            let latest_writer = (1..=committed).rev().find(|j| j % 16 == i % 16).unwrap();
            assert_eq!(
                recovered[slot], latest_writer,
                "crash_at {crash_at}: slot {slot}"
            );
        }
    }
}
