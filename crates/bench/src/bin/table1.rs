//! Regenerates **Table 1** (transactional throughput, §7.1.2): RVM vs
//! Camelot over 14 account-array sizes and 3 access patterns, mean (sd)
//! of N deterministic trials.
//!
//! Usage: `table1 [--quick] [--trials N] [--txns N]`

use rvm_bench::report::mean_sd;
use rvm_bench::tpca_run::{run_cell, SweepConfig, SystemKind};
use tpca::{rmem_pmem_percent, table1_account_sizes, AccessPattern};

fn main() {
    let mut cfg = SweepConfig::default();
    let mut sizes = table1_account_sizes();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg.txns_per_trial = 8_000;
                cfg.trials = 1;
                sizes = sizes.into_iter().step_by(3).collect();
            }
            "--trials" => {
                i += 1;
                cfg.trials = args[i].parse().expect("--trials N");
            }
            "--txns" => {
                i += 1;
                cfg.txns_per_trial = args[i].parse().expect("--txns N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "Table 1: Transactional Throughput (txn/s), mean (sd) of {} trials",
        cfg.trials
    );
    println!(
        "Benchmark: TPC-A variant (Section 7.1.1), {} transactions per trial",
        cfg.txns_per_trial
    );
    println!(
        "Theoretical maximum from the 17.4 ms log force (Section 7.1.2): {:.1} txn/s",
        1000.0 / 17.4
    );
    println!();
    println!(
        "{:>9} {:>6}  | {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}",
        "Accounts", "Rm/Pm", "RVM seq", "RVM rand", "RVM local", "Cam seq", "Cam rand", "Cam local"
    );
    println!("{}", "-".repeat(105));
    for &accounts in &sizes {
        let pct = rmem_pmem_percent(accounts);
        print!("{accounts:>9} {pct:>5.1}%  |");
        for kind in [SystemKind::Rvm, SystemKind::Camelot] {
            for pattern in AccessPattern::ALL {
                let cell = run_cell(kind, accounts, pattern, &cfg);
                print!(" {:>11}", mean_sd(cell.mean_tps(), cell.sd_tps()));
            }
            if kind == SystemKind::Rvm {
                print!(" |");
            }
        }
        println!();
    }
}
