//! Group commit: the leader/follower pipeline that amortizes log forces
//! across concurrent flush-mode commits.
//!
//! The paper's throughput ceiling is the log force — 17.4 ms per force
//! caps a serialized commit path at 57.4 txn/s (§7.1.2) — and one force
//! per flush commit means N committer threads go no faster than one.
//! Group commit is the classic WAL answer: committers serialize their
//! records *outside* the core lock (already the case), park them in a
//! queue, and the first committer to find no leader becomes one. The
//! leader drains a bounded batch from the queue front, appends every
//! member in queue order under the core lock, issues a **single**
//! `wal.force()` for the whole group, and hands each member its own
//! [`AppendInfo`](crate::log::wal::AppendInfo) through its slot before
//! waking the batch.
//!
//! Lock order: the group lock is taken either alone or *after* a slot
//! lock is released; the leader takes `core` while holding neither. Slot
//! locks nest inside `group` (committer side) and inside `core` (leader
//! side); no path acquires `group` or `core` while holding the other.
//!
//! ## Interleaving with concurrent epoch truncation
//!
//! Epoch truncation releases the core lock while applying its frozen
//! span, so a leader's batch can run *during* a truncation — that is the
//! point of the concurrent protocol. Two consequences for the leader:
//!
//! * **Waiting happens inside `append_with_space`.** If the log cannot
//!   fit the next record while an epoch is in flight, the append waits on
//!   the `epoch_done` condvar (releasing `core`), then retries. The
//!   leader never spins; its stall is bounded by the epoch apply, and is
//!   measured in `truncation_stall_ns`.
//! * **A released lock invalidates the batch checkpoint.** The leader
//!   takes a WAL checkpoint before appending the batch so a mid-batch
//!   append failure can roll the whole batch back. But if an append
//!   waited (lock released and reacquired), another thread may have
//!   appended records past the checkpoint; rolling back would destroy
//!   *their* records. `Core::wait_generation` counts those releases: the
//!   leader only rolls back if the generation is unchanged, and otherwise
//!   leaves the partial batch in the log — harmless, since the failure
//!   path poisons the instance anyway and recovery replays only complete,
//!   committed records.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::Result;
use crate::log::record::RecordRange;
use crate::log::wal::AppendInfo;
use crate::region::RegionInner;

/// The payload a committer parks in the queue and the leader fills in.
pub(crate) struct SlotWork {
    /// The serialized new-value ranges, read by the leader's append.
    pub(crate) ranges: Vec<RecordRange>,
    /// Pages to mark dirty and enqueue for truncation on success.
    pub(crate) region_pages: Vec<(Arc<RegionInner>, Vec<usize>)>,
    /// Set by the leader when the batch completes; the committer takes it.
    pub(crate) outcome: Option<Result<AppendInfo>>,
    /// Whether the log crossed the truncation threshold after the batch.
    pub(crate) over_threshold: bool,
}

/// One committer's pending flush-mode commit.
pub(crate) struct GroupSlot {
    pub(crate) tid: u64,
    /// Unpadded record bytes this slot appends (for max-bytes batching).
    pub(crate) record_bytes: u64,
    pub(crate) work: Mutex<SlotWork>,
}

/// Queue state guarded by the group lock.
#[derive(Default)]
pub(crate) struct GroupState {
    /// Waiting committers, oldest first; durable-log order follows queue
    /// order because batches are drained from the front by one leader at
    /// a time.
    pub(crate) queue: VecDeque<Arc<GroupSlot>>,
    /// Whether some committer currently holds leadership.
    pub(crate) leader_active: bool,
}

/// The commit queue, its leadership flag, and the follower wakeup.
pub(crate) struct GroupCommit {
    pub(crate) state: Mutex<GroupState>,
    /// Signalled after a leader publishes a batch's outcomes and releases
    /// leadership; woken followers re-check their slot or take over.
    pub(crate) wakeup: Condvar,
}

impl GroupCommit {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(GroupState::default()),
            wakeup: Condvar::new(),
        }
    }
}
