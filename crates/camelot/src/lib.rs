//! A performance model of **Camelot**, the paper's baseline (§2, §7).
//!
//! Camelot was a general-purpose transactional facility built on Mach:
//! Master Control, the Camelot and Node Server tasks, and the Recovery,
//! Transaction and Disk Managers, each a separate Mach task communicating
//! by IPC (Figure 1). Recoverable virtual memory was provided through the
//! Disk Manager acting as a Mach external pager, giving Camelot a
//! *single-copy* backing store (no double paging) and `pin`/`unpin`
//! control over dirty pages (§3.2).
//!
//! The paper attributes Camelot's costs to exactly three structural
//! facts, which this simulation encodes:
//!
//! 1. **IPC on every operation.** A Mach RPC cost ~430 µs against 0.7 µs
//!    for a local call (§3.3); every `begin`/`set_range`/`commit` crosses
//!    task boundaries several times, and kernel-thread context switches
//!    come with it. This is why Camelot's CPU per transaction is about
//!    twice RVM's (Figure 9).
//! 2. **An overly aggressive Disk-Manager truncation strategy** (§7.1.2
//!    conjecture): truncation writes *all* dirty pages referenced by the
//!    truncated portion of the log, and it runs frequently, so random
//!    access patterns lose the chance to amortize a page write across
//!    many transactions — the reason Camelot's throughput is sensitive to
//!    locality even when everything fits in memory.
//! 3. **Mach-integrated paging**: the external pager writes dirty pages
//!    to the one backing store, so pages evicted under memory pressure
//!    are usually *clean* and eviction is cheap — Camelot degrades more
//!    gracefully than RVM at high Rmem/Pmem ratios (the convexity of
//!    Figure 8a).
//!
//! The transactional *semantics* here are trivial (the benchmark only
//! commits); what is modelled faithfully is the *cost structure*. All
//! charges land on a shared [`simclock::Clock`].

use std::collections::HashSet;
use std::sync::Arc;

use simclock::{Clock, SimTime};
use simdisk::SimDisk;
use simvm::{SimVm, SpaceId, VM_PAGE_SIZE};

/// The Mach tasks of a Camelot node (Figure 1), for IPC accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Spawns and supervises the rest.
    MasterControl,
    /// The camelot task proper.
    Camelot,
    /// Node configuration database.
    NodeServer,
    /// Log replay after crashes.
    RecoveryManager,
    /// Coordinates begins/commits/aborts.
    TransactionManager,
    /// External pager and log multiplexer.
    DiskManager,
    /// The application's Data Server task.
    DataServer,
}

/// Cost parameters of the Camelot model.
#[derive(Debug, Clone)]
pub struct CamelotParams {
    /// One cross-task Mach RPC (request + reply), charged as CPU.
    pub ipc_cost: SimTime,
    /// A kernel-thread context switch.
    pub context_switch: SimTime,
    /// Straight-line CPU in the managers per transaction, excluding IPC.
    pub base_cpu_per_txn: SimTime,
    /// CPU per pin/unpin pair and bookkeeping per modified range.
    pub cpu_per_range: SimTime,
    /// CPU per byte spooled to the Disk Manager's log.
    pub cpu_per_logged_byte_ns: u64,
    /// Per-range log record overhead, bytes.
    pub log_record_overhead: u64,
    /// The Disk Manager truncates once this many bytes of log accumulate.
    /// Small = aggressive (the §7.1.2 conjecture).
    pub truncation_interval: u64,
    /// IPCs for `begin_transaction` (Data Server ↔ Transaction Manager).
    pub ipcs_begin: u32,
    /// IPCs per modified range (pin via the Disk Manager).
    pub ipcs_per_range: u32,
    /// IPCs for commit (TM coordination + DM log force + replies).
    pub ipcs_commit: u32,
}

impl Default for CamelotParams {
    fn default() -> Self {
        Self {
            // §3.3: 430 µs vs 0.7 µs on the DECstation 5000/200.
            ipc_cost: SimTime::from_micros(430),
            context_switch: SimTime::from_micros(120),
            base_cpu_per_txn: SimTime::from_micros(800),
            // Pin/unpin are kernel calls, not full cross-task RPCs.
            cpu_per_range: SimTime::from_micros(150),
            cpu_per_logged_byte_ns: 40,
            log_record_overhead: 96,
            // Aggressive truncation: about every 224 KiB of log
            // (~1000 TPC-A transactions).
            truncation_interval: 224 << 10,
            ipcs_begin: 1,
            ipcs_per_range: 0,
            ipcs_commit: 3,
        }
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamelotStats {
    /// Transactions committed.
    pub txns_committed: u64,
    /// Disk-Manager truncations.
    pub truncations: u64,
    /// Dirty pages written by truncation.
    pub pages_written: u64,
    /// Bytes appended to the Disk-Manager log.
    pub bytes_logged: u64,
    /// Mach IPCs performed.
    pub ipcs: u64,
}

struct OpenTxn {
    pinned: Vec<u64>,
    logged_bytes: u64,
    dirtied: Vec<u64>,
}

/// A simulated Camelot node serving one Data Server with one recoverable
/// region.
pub struct Camelot {
    clock: Clock,
    params: CamelotParams,
    log_disk: Arc<SimDisk>,
    vm: SimVm,
    space: SpaceId,
    region_len: u64,
    log_used: u64,
    log_write_pos: u64,
    /// Dirty pages referenced by the live (untruncated) log portion, in
    /// log order (first reference first), without duplicates.
    dirty_refs: Vec<u64>,
    dirty_refs_set: HashSet<u64>,
    open: Option<OpenTxn>,
    stats: CamelotStats,
}

impl Camelot {
    /// Builds a node: `vm` pages the recoverable region from its single
    /// backing store (already registered as `space`); the log lives on
    /// `log_disk`.
    pub fn new(
        clock: Clock,
        params: CamelotParams,
        log_disk: Arc<SimDisk>,
        mut vm: SimVm,
        backing: Arc<SimDisk>,
        region_len: u64,
    ) -> Self {
        let pages = region_len.div_ceil(VM_PAGE_SIZE);
        let space = vm.add_space(backing, 0, pages);
        Self {
            clock,
            params,
            log_disk,
            vm,
            space,
            region_len,
            log_used: 0,
            log_write_pos: 0,
            dirty_refs: Vec::new(),
            dirty_refs_set: HashSet::new(),
            open: None,
            stats: CamelotStats::default(),
        }
    }

    /// Region length in bytes.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// Statistics so far.
    pub fn stats(&self) -> CamelotStats {
        self.stats
    }

    /// VM statistics (faults, evictions).
    pub fn vm_stats(&self) -> simvm::VmStats {
        self.vm.stats()
    }

    fn charge_ipcs(&mut self, n: u32) {
        self.stats.ipcs += n as u64;
        self.clock
            .charge_cpu(self.params.ipc_cost * n as u64 + self.params.context_switch * n as u64);
    }

    /// `begin_transaction`: Data Server → Transaction Manager.
    pub fn begin_transaction(&mut self) {
        assert!(self.open.is_none(), "model supports one open transaction");
        self.charge_ipcs(self.params.ipcs_begin);
        self.open = Some(OpenTxn {
            pinned: Vec::new(),
            logged_bytes: 0,
            dirtied: Vec::new(),
        });
    }

    /// Reads `[offset, offset + len)` of the recoverable region: pure VM
    /// traffic, no Camelot involvement.
    pub fn read(&mut self, offset: u64, len: u64) {
        for page in page_span(offset, len) {
            self.vm.touch(self.space, page, false);
        }
    }

    /// Modifies `[offset, offset + len)` inside the open transaction:
    /// pages are touched dirty and pinned via the Disk Manager (§3.2), and
    /// the new values are destined for the log.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn modify(&mut self, offset: u64, len: u64) {
        let pages: Vec<u64> = page_span(offset, len).collect();
        let params_ipcs = self.params.ipcs_per_range;
        self.charge_ipcs(params_ipcs);
        self.clock.charge_cpu(self.params.cpu_per_range);
        for &page in &pages {
            self.vm.touch(self.space, page, true);
            self.vm.pin(self.space, page);
        }
        let txn = self.open.as_mut().expect("no open transaction");
        txn.pinned.extend(&pages);
        txn.dirtied.extend(&pages);
        txn.logged_bytes += len + self.params.log_record_overhead;
    }

    /// `end_transaction`: Transaction Manager coordination, Disk Manager
    /// log force, unpin, dirty-page bookkeeping, and possibly a
    /// truncation.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn end_transaction(&mut self) {
        let txn = self.open.take().expect("no open transaction");
        self.charge_ipcs(self.params.ipcs_commit);
        self.clock.charge_cpu(self.params.base_cpu_per_txn);
        self.clock.charge_cpu(SimTime::from_nanos(
            self.params.cpu_per_logged_byte_ns * txn.logged_bytes,
        ));

        // The Disk Manager forces the log (sequential, one seek+rotation).
        use rvm_storage::Device;
        let buf = vec![0u8; txn.logged_bytes as usize];
        let cap = self.log_disk.len().unwrap_or(1 << 20);
        let pos = self.log_write_pos % (cap - txn.logged_bytes.min(cap));
        let _ = self.log_disk.write_at(pos, &buf);
        let _ = self.log_disk.sync();
        self.log_write_pos += txn.logged_bytes;
        self.stats.bytes_logged += txn.logged_bytes;
        self.log_used += txn.logged_bytes;

        for page in txn.pinned {
            self.vm.unpin(self.space, page);
        }
        for page in txn.dirtied {
            if self.dirty_refs_set.insert(page) {
                self.dirty_refs.push(page);
            }
        }
        self.stats.txns_committed += 1;

        if self.log_used >= self.params.truncation_interval {
            self.truncate();
        }
    }

    /// Disk-Manager truncation: write out *all* dirty pages referenced by
    /// the truncated log portion (§7.1.2), in ascending order (elevator),
    /// then reset the log.
    ///
    /// The aggressiveness the paper conjectures is modelled literally: a
    /// referenced page that the pager has already evicted (and therefore
    /// cleaned) is faulted back in and rewritten anyway — "much higher
    /// levels of paging activity sustained by the Camelot Disk Manager".
    fn truncate(&mut self) {
        let pages = std::mem::take(&mut self.dirty_refs);
        self.dirty_refs_set.clear();
        let n = pages.len() as u64;
        // Pages are processed in the order the log references them — i.e.
        // commit order, not elevator order. Resident dirty pages at least
        // batch into one queued flush; pages the pager has already evicted
        // (and cleaned) are faulted back in and rewritten one at a time,
        // which is exactly where the amortization is lost.
        for &page in &pages {
            if self.vm.is_resident(self.space, page) {
                self.vm.writeback(self.space, page);
            }
        }
        self.vm.sync_space(self.space);
        for &page in &pages {
            if !self.vm.is_resident(self.space, page) {
                self.vm.touch(self.space, page, false);
                self.vm.force_writeback(self.space, page);
                self.vm.sync_space(self.space);
            }
        }
        // Disk Manager CPU for scanning and scheduling the writes.
        self.clock
            .charge_cpu(SimTime::from_micros(200) + SimTime::from_micros(30) * n);
        self.charge_ipcs(2);
        self.stats.pages_written += n;
        self.stats.truncations += 1;
        self.log_used = 0;
    }
}

fn page_span(offset: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = offset / VM_PAGE_SIZE;
    let last = if len == 0 {
        first
    } else {
        (offset + len - 1) / VM_PAGE_SIZE + 1
    };
    first..last
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm_storage::MemDevice;
    use simdisk::DiskParams;
    use simvm::VmParams;

    fn node(frames: usize, region_len: u64) -> (Camelot, Clock) {
        let clock = Clock::new();
        let log_disk = Arc::new(SimDisk::new(
            Arc::new(MemDevice::with_len(64 << 20)),
            clock.clone(),
            DiskParams::circa_1990(),
        ));
        let data_disk = Arc::new(SimDisk::new(
            Arc::new(MemDevice::with_len(256 << 20)),
            clock.clone(),
            DiskParams::circa_1990(),
        ));
        let vm = SimVm::new(clock.clone(), frames, VmParams::default());
        let cam = Camelot::new(
            clock.clone(),
            CamelotParams::default(),
            log_disk,
            vm,
            data_disk,
            region_len,
        );
        (cam, clock)
    }

    fn one_txn(cam: &mut Camelot, offset: u64) {
        cam.begin_transaction();
        cam.read(offset, 128);
        cam.modify(offset, 128);
        cam.end_transaction();
    }

    #[test]
    fn a_transaction_costs_about_a_log_force_plus_overhead() {
        let (mut cam, clock) = node(1024, 1 << 20);
        one_txn(&mut cam, 0); // warm the page
        let before = clock.snapshot();
        one_txn(&mut cam, 0);
        let ms = (clock.snapshot() - before).total.as_millis_f64();
        assert!(
            (17.0..28.0).contains(&ms),
            "txn should cost force + IPC overhead, got {ms} ms"
        );
        assert_eq!(cam.stats().txns_committed, 2);
    }

    #[test]
    fn ipc_makes_camelot_cpu_heavy() {
        let (mut cam, clock) = node(1024, 1 << 20);
        one_txn(&mut cam, 0);
        let before = clock.snapshot();
        one_txn(&mut cam, 0);
        let cpu = (clock.snapshot() - before).cpu;
        // begin(1) + range(1) + commit(3) = 5 IPCs at 430+120 us plus base
        // CPU: comfortably over 2 ms.
        assert!(
            cpu.as_millis_f64() > 2.0,
            "IPC-heavy path expected, got {cpu}"
        );
    }

    #[test]
    fn aggressive_truncation_fires_by_log_volume() {
        let (mut cam, _clock) = node(1024, 1 << 20);
        // Each txn logs ~224 bytes; the 224 KiB interval fires within
        // ~1100 transactions.
        for i in 0..1200 {
            one_txn(&mut cam, (i % 64) * 128);
        }
        assert!(cam.stats().truncations >= 1);
        assert!(cam.stats().pages_written >= 1);
    }

    #[test]
    fn random_access_writes_more_truncation_pages_than_sequential() {
        let region = 4 << 20; // 1024 pages
        let (mut seq, _) = node(4096, region);
        for i in 0..2400u64 {
            one_txn(&mut seq, (i * 128) % region);
        }
        let (mut rnd, _) = node(4096, region);
        // A crude LCG for deterministic "random" offsets.
        let mut x = 12345u64;
        for _ in 0..2400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let account = (x >> 33) % (region / 128);
            one_txn(&mut rnd, account * 128);
        }
        assert!(
            rnd.stats().pages_written > 2 * seq.stats().pages_written,
            "random {} vs sequential {}",
            rnd.stats().pages_written,
            seq.stats().pages_written
        );
    }

    #[test]
    fn paging_degrades_gracefully_because_pages_are_clean() {
        // Region twice the frame pool: evictions happen constantly, but
        // frequent truncation keeps pages clean, so writebacks stay rare
        // relative to evictions.
        let region = 8 << 20; // 2048 pages
        let (mut cam, _clock) = node(1024, region);
        let mut x = 7u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let account = (x >> 33) % (region / 128);
            one_txn(&mut cam, account * 128);
        }
        let vm = cam.vm_stats();
        assert!(vm.evictions > 0);
        assert!(
            (vm.writebacks as f64) < 0.5 * vm.evictions as f64,
            "writebacks {} vs evictions {}",
            vm.writebacks,
            vm.evictions
        );
    }

    #[test]
    fn page_span_helper() {
        assert_eq!(page_span(0, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(page_span(4095, 2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(page_span(8192, 4096).collect::<Vec<_>>(), vec![2]);
        assert_eq!(page_span(100, 0).count(), 0);
    }
}
