//! Post-mortem RVM log inspection (§6).
//!
//! "We realized that the information in RVM's log offered excellent clues
//! to the source of these corruptions. All we had to do was to save a
//! copy of the log before truncation, and to build a post-mortem tool to
//! search and display the history of modifications recorded by the log."
//!
//! This crate is that tool: it opens a log device read-only, walks the
//! live records (forward or backward — the Figure 5 bidirectional
//! displacements at work), and can filter the modification history by
//! segment and byte range. The `rvmlog` binary wraps it for files.

use std::sync::Arc;

use rvm::log::record::TxnRecord;
use rvm::log::status::{read_status, StatusBlock};
use rvm::log::wal::{scan_backward, scan_forward};
use rvm::segment::SegmentId;
use rvm::{Result, RvmError};
use rvm_storage::Device;

/// One modification of one range, as recorded in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Record sequence number.
    pub seq: u64,
    /// Transaction id.
    pub tid: u64,
    /// Logical log offset of the record.
    pub log_offset: u64,
    /// Segment written.
    pub seg: SegmentId,
    /// Segment name, if the segment table knows it.
    pub seg_name: Option<String>,
    /// Byte offset within the segment.
    pub offset: u64,
    /// The new value written.
    pub data: Vec<u8>,
}

/// A read-only view over an RVM log.
pub struct LogInspector {
    dev: Arc<dyn Device>,
    status: StatusBlock,
}

impl LogInspector {
    /// Opens the log, validating its status block.
    pub fn open(dev: Arc<dyn Device>) -> Result<LogInspector> {
        let status = read_status(dev.as_ref())?;
        Ok(LogInspector { dev, status })
    }

    /// The log's status block (head/tail, segment table).
    pub fn status(&self) -> &StatusBlock {
        &self.status
    }

    /// All live committed transaction records, oldest first.
    pub fn records(&self) -> Result<Vec<(u64, TxnRecord)>> {
        let scan = scan_forward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            self.status.seq_at_head,
            None,
        )?;
        Ok(scan.records)
    }

    /// All live records, newest first, via the backward scan.
    pub fn records_backward(&self) -> Result<Vec<(u64, TxnRecord)>> {
        let scan = scan_forward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            self.status.seq_at_head,
            None,
        )?;
        scan_backward(
            self.dev.as_ref(),
            self.status.area_len,
            self.status.head,
            scan.tail,
            scan.next_seq,
        )
    }

    /// The modification history of `[offset, offset + len)` in the named
    /// segment, oldest first — the §6 debugging query.
    pub fn history(&self, segment: &str, offset: u64, len: u64) -> Result<Vec<HistoryEntry>> {
        let seg = self
            .status
            .segment_by_name(segment)
            .ok_or_else(|| RvmError::BadLog(format!("segment '{segment}' not in the log")))?
            .id;
        let mut out = Vec::new();
        for (log_offset, record) in self.records()? {
            for range in &record.ranges {
                let end = range.offset + range.data.len() as u64;
                if range.seg == seg && range.offset < offset + len && end > offset {
                    out.push(HistoryEntry {
                        seq: record.seq,
                        tid: record.tid,
                        log_offset,
                        seg: range.seg,
                        seg_name: Some(segment.to_owned()),
                        offset: range.offset,
                        data: range.data.clone(),
                    });
                }
            }
        }
        Ok(out)
    }

    /// A human-readable summary of the log.
    pub fn summary(&self) -> Result<String> {
        let records = self.records()?;
        let mut out = String::new();
        out.push_str(&format!(
            "log: area {} bytes, head {}, tail {}, {} live record(s)\n",
            self.status.area_len,
            self.status.head,
            self.status.tail,
            records.len()
        ));
        out.push_str("segments:\n");
        for seg in &self.status.segments {
            out.push_str(&format!(
                "  {}: '{}' (min length {})\n",
                seg.id, seg.name, seg.min_len
            ));
        }
        for (off, rec) in &records {
            out.push_str(&format!(
                "  @{off}: seq {} tid {} — {} range(s), {} data byte(s)\n",
                rec.seq,
                rec.tid,
                rec.ranges.len(),
                rec.ranges.iter().map(|r| r.data.len()).sum::<usize>()
            ));
        }
        Ok(out)
    }
}

/// Formats a history entry like the `rvmlog` binary does.
pub fn format_entry(entry: &HistoryEntry) -> String {
    let preview: String = entry
        .data
        .iter()
        .take(16)
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ");
    let ellipsis = if entry.data.len() > 16 { " …" } else { "" };
    format!(
        "seq {:>6}  tid {:>6}  {}[{}..{}): {}{}",
        entry.seq,
        entry.tid,
        entry
            .seg_name
            .clone()
            .unwrap_or_else(|| entry.seg.to_string()),
        entry.offset,
        entry.offset + entry.data.len() as u64,
        preview,
        ellipsis
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvm::segment::MemResolver;
    use rvm::{CommitMode, Options, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
    use rvm_storage::MemDevice;

    /// Builds a log with a known history and "saves a copy before
    /// truncation" by never truncating.
    fn history_world() -> Arc<MemDevice> {
        let log = Arc::new(MemDevice::with_len(1 << 20));
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(MemResolver::new().into_resolver())
                .create_if_empty(),
        )
        .unwrap();
        let region = rvm.map(&RegionDescriptor::new("meta", 0, PAGE_SIZE)).unwrap();
        for i in 0..5u8 {
            let mut txn = rvm.begin_transaction(TxnMode::Restore).unwrap();
            region.write(&mut txn, 100, &[i; 8]).unwrap();
            if i % 2 == 0 {
                region.write(&mut txn, 300, &[0x40 + i; 4]).unwrap();
            }
            txn.commit(CommitMode::Flush).unwrap();
        }
        std::mem::forget(rvm);
        log
    }

    #[test]
    fn summary_lists_records_and_segments() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let summary = inspector.summary().unwrap();
        assert!(summary.contains("5 live record(s)"), "{summary}");
        assert!(summary.contains("'meta'"), "{summary}");
    }

    #[test]
    fn history_filters_by_range() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let h100 = inspector.history("meta", 100, 8).unwrap();
        assert_eq!(h100.len(), 5);
        // Oldest first: values 0..5 in order.
        for (i, entry) in h100.iter().enumerate() {
            assert_eq!(entry.data, vec![i as u8; 8]);
        }
        let h300 = inspector.history("meta", 300, 4).unwrap();
        assert_eq!(h300.len(), 3, "only even iterations wrote 300");
        let none = inspector.history("meta", 2000, 8).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_segment_is_an_error() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        assert!(inspector.history("nope", 0, 8).is_err());
    }

    #[test]
    fn backward_scan_agrees_with_forward() {
        let log = history_world();
        let inspector = LogInspector::open(log).unwrap();
        let fwd = inspector.records().unwrap();
        let mut bwd = inspector.records_backward().unwrap();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn entry_formatting_is_stable() {
        let entry = HistoryEntry {
            seq: 3,
            tid: 12,
            log_offset: 0,
            seg: SegmentId::new(0),
            seg_name: Some("meta".to_owned()),
            offset: 96,
            data: vec![0xAB; 20],
        };
        let line = format_entry(&entry);
        assert!(line.contains("meta[96..116)"), "{line}");
        assert!(line.contains('…'), "long data is elided: {line}");
    }
}
