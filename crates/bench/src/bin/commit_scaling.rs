//! Group-commit scaling: flush-commit throughput versus thread count,
//! grouped versus serialized, over the virtual disk clock.
//!
//! Each cell boots a fresh RVM over a `circa_1990` simulated log disk,
//! splits a fixed transaction budget across N committer threads working
//! disjoint pages, and measures the virtual I/O time the log consumed.
//! Serialized commits pay one ~17.4 ms force each, so throughput is flat
//! (~57 txn/s) no matter how many threads commit; group commit shares
//! one force per batch, so throughput scales with the achieved batch
//! size. The per-cell stats expose the mechanism: `log_forces` falls
//! below `flush_commits` and the disk sees one coalesced extent per
//! batch instead of one per commit.
//!
//! Usage: `commit_scaling [--quick] [--check] [--txns N]`
//!
//! Writes `BENCH_commit_scaling.json` (machine-readable, at the repo
//! root) and `results/commit_scaling.txt` (the table). `--check` exits
//! non-zero unless grouped throughput at 8 threads beats serialized by
//! at least 4x — the CI perf-smoke gate.

use std::sync::{Arc, Barrier};

use rvm::segment::DeviceResolver;
use rvm::{CommitMode, Options, Rvm, Tuning, TxnMode, PAGE_SIZE};
use rvm_storage::{MemDevice, NullDevice};
use simclock::Clock;
use simdisk::{DiskParams, SimDisk};

/// One measured cell of the sweep.
struct Cell {
    mode: &'static str,
    threads: u64,
    txns: u64,
    io_ms: f64,
    txn_per_s: f64,
    log_forces: u64,
    flush_commits: u64,
    batches: u64,
    mean_batch: f64,
    forces_per_commit: f64,
    syncs: u64,
    sync_extents: u64,
}

/// Runs `total` flush commits split across `threads` threads, returning
/// the cell. `grouped` toggles `Tuning::group_commit`.
fn run_cell(threads: u64, total: u64, grouped: bool) -> Cell {
    let clock = Clock::new();
    let log = Arc::new(SimDisk::new(
        Arc::new(MemDevice::with_len(256 << 20)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let data = Arc::new(SimDisk::new(
        Arc::new(NullDevice::new(0)),
        clock.clone(),
        DiskParams::circa_1990(),
    ));
    let data_for_resolver: Arc<dyn rvm_storage::Device> = data;
    let resolver: DeviceResolver = Arc::new(move |_name, min_len| {
        if data_for_resolver.len()? < min_len {
            data_for_resolver.set_len(min_len)?;
        }
        Ok(data_for_resolver.clone())
    });
    let tuning = Tuning {
        group_commit: grouped,
        // A short accumulation window (wall-clock; the virtual disk is
        // not charged) so concurrent committers reliably share a batch.
        group_commit_wait_us: if grouped { 300 } else { 0 },
        // The resolver aliases every name onto one data disk; checksum
        // sidecars are off so catalog writes cannot land on it.
        segment_checksums: false,
        ..Tuning::default()
    };
    let rvm = Arc::new(
        Rvm::initialize(
            Options::new(log.clone())
                .resolver(resolver)
                .tuning(tuning)
                .create_if_empty(),
        )
        .expect("initialize RVM over simulated devices"),
    );
    let region = rvm
        .map(&rvm::RegionDescriptor::new("bench", 0, threads * PAGE_SIZE))
        .expect("map the benchmark region");

    let before_io = clock.io_time();
    let before_stats = rvm.stats();
    let before_disk = log.stats();

    let per_thread = total / threads;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let rvm = Arc::clone(&rvm);
            let region = region.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut payload = [0u8; 256];
                for i in 0..per_thread {
                    payload[..8].copy_from_slice(&(t * per_thread + i).to_le_bytes());
                    let mut txn = rvm.begin_transaction(TxnMode::Restore).expect("begin");
                    region
                        .write(&mut txn, t * PAGE_SIZE + (i % 8) * 256, &payload)
                        .expect("write");
                    txn.commit(CommitMode::Flush).expect("commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("committer thread");
    }

    let txns = per_thread * threads;
    let io_ms = (clock.io_time() - before_io).as_millis_f64();
    let stats = rvm.stats().delta_since(&before_stats);
    let disk = log.stats().delta_since(&before_disk);
    Cell {
        mode: if grouped { "grouped" } else { "serialized" },
        threads,
        txns,
        io_ms,
        txn_per_s: txns as f64 / (io_ms / 1000.0),
        log_forces: stats.log_forces,
        flush_commits: stats.flush_commits,
        batches: stats.group_commit_batches,
        mean_batch: stats.mean_group_batch(),
        forces_per_commit: stats.forces_per_flush_commit(),
        syncs: disk.syncs,
        sync_extents: disk.sync_extents,
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"txns\": {}, ",
            "\"io_ms\": {:.3}, \"txn_per_s\": {:.2}, \"log_forces\": {}, ",
            "\"flush_commits\": {}, \"group_commit_batches\": {}, ",
            "\"mean_batch\": {:.2}, \"forces_per_commit\": {:.4}, ",
            "\"syncs\": {}, \"sync_extents\": {}}}"
        ),
        c.mode,
        c.threads,
        c.txns,
        c.io_ms,
        c.txn_per_s,
        c.log_forces,
        c.flush_commits,
        c.batches,
        c.mean_batch,
        c.forces_per_commit,
        c.syncs,
        c.sync_extents,
    )
}

fn main() {
    let mut total: u64 = 2048;
    let mut threads: Vec<u64> = (1..=16).collect();
    let mut check = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                total = 512;
                threads = vec![1, 2, 4, 8];
            }
            "--check" => check = true,
            "--txns" => {
                i += 1;
                total = args[i].parse().expect("--txns N");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:<11} {:>7} {:>9} {:>11} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "mode",
        "threads",
        "txn/s",
        "io_ms",
        "forces",
        "commits",
        "batches",
        "mean_batch",
        "extents"
    );
    let mut table = String::new();
    table.push_str(&format!(
        "group-commit scaling, {total} flush commits per cell, circa-1990 disk\n\n"
    ));
    table.push_str(&format!(
        "{:<11} {:>7} {:>9} {:>11} {:>8} {:>8} {:>8} {:>10} {:>8}\n",
        "mode",
        "threads",
        "txn/s",
        "io_ms",
        "forces",
        "commits",
        "batches",
        "mean_batch",
        "extents"
    ));
    for &grouped in &[false, true] {
        for &t in &threads {
            let c = run_cell(t, total, grouped);
            let line = format!(
                "{:<11} {:>7} {:>9.1} {:>11.1} {:>8} {:>8} {:>8} {:>10.2} {:>8}",
                c.mode,
                c.threads,
                c.txn_per_s,
                c.io_ms,
                c.log_forces,
                c.flush_commits,
                c.batches,
                c.mean_batch,
                c.sync_extents
            );
            println!("{line}");
            table.push_str(&line);
            table.push('\n');
            cells.push(c);
        }
    }

    let at = |mode: &str, t: u64| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.threads == t)
            .map(|c| c.txn_per_s)
    };
    let gate_threads = *threads.iter().rev().find(|&&t| t <= 8).unwrap_or(&1);
    let speedup = match (at("grouped", gate_threads), at("serialized", gate_threads)) {
        (Some(g), Some(s)) if s > 0.0 => g / s,
        _ => 0.0,
    };
    let summary = format!("\ngrouped vs serialized at {gate_threads} threads: {speedup:.2}x\n");
    println!("{summary}");
    table.push_str(&summary);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"commit_scaling\",\n");
    json.push_str(&format!("  \"total_txns\": {total},\n"));
    json.push_str("  \"disk\": \"circa_1990\",\n");
    json.push_str(&format!(
        "  \"speedup_at_{gate_threads}_threads\": {speedup:.3},\n"
    ));
    json.push_str("  \"cells\": [\n");
    let body: Vec<String> = cells.iter().map(json_cell).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_commit_scaling.json", &json).expect("write JSON");
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/commit_scaling.txt", &table).expect("write table");

    if check && speedup < 4.0 {
        eprintln!("FAIL: grouped@{gate_threads} is only {speedup:.2}x serialized (need >= 4x)");
        std::process::exit(1);
    }
}
