//! Coda-style file-server meta-data (the paper's motivating use, §2.2):
//! a directory structure kept in recoverable memory, updated with
//! *no-flush* transactions for low latency, with periodic flushes giving
//! bounded persistence — exactly how Coda clients used RVM for replay
//! logs (§6).
//!
//! Run with: `cargo run -p rvm-examples --bin fs_metadata`

use std::sync::Arc;

use rvm::segment::MemResolver;
use rvm::{CommitMode, Options, Region, RegionDescriptor, Rvm, TxnMode, PAGE_SIZE};
use rvm_alloc::RvmHeap;
use rvm_storage::MemDevice;

/// Directory entry: 32-byte name + u64 child offset (0 = file).
const ENTRY_SIZE: u64 = 40;
const DIR_CAPACITY: u64 = 16;
const DIR_SIZE: u64 = 8 + DIR_CAPACITY * ENTRY_SIZE; // count + entries

struct MetaStore {
    rvm: Rvm,
    region: Region,
    heap: RvmHeap,
}

impl MetaStore {
    fn mkdir(&self, txn: &mut rvm::Transaction) -> rvm::Result<u64> {
        let dir = self.heap.alloc(&self.region, txn, DIR_SIZE)?;
        self.region.put_u64(txn, dir, 0)?; // entry count
        Ok(dir)
    }

    fn add_entry(
        &self,
        txn: &mut rvm::Transaction,
        dir: u64,
        name: &str,
        child: u64,
    ) -> rvm::Result<()> {
        let count = self.region.get_u64(dir)?;
        assert!(count < DIR_CAPACITY, "directory full");
        let slot = dir + 8 + count * ENTRY_SIZE;
        let mut entry = [0u8; ENTRY_SIZE as usize];
        let bytes = name.as_bytes();
        entry[..bytes.len().min(32)].copy_from_slice(&bytes[..bytes.len().min(32)]);
        entry[32..40].copy_from_slice(&child.to_le_bytes());
        self.region.write(txn, slot, &entry)?;
        self.region.put_u64(txn, dir, count + 1)?;
        Ok(())
    }

    fn list(&self, dir: u64) -> rvm::Result<Vec<(String, u64)>> {
        let count = self.region.get_u64(dir)?;
        let mut out = Vec::new();
        for i in 0..count {
            let slot = dir + 8 + i * ENTRY_SIZE;
            let raw = self.region.read_vec(slot, ENTRY_SIZE)?;
            let name_end = raw[..32].iter().position(|&b| b == 0).unwrap_or(32);
            let name = String::from_utf8_lossy(&raw[..name_end]).into_owned();
            let child = u64::from_le_bytes(raw[32..40].try_into().unwrap());
            out.push((name, child));
        }
        Ok(out)
    }
}

fn main() -> rvm::Result<()> {
    let log = Arc::new(MemDevice::with_len(8 << 20));
    let segments = MemResolver::new();
    let root_offset;

    println!("== server incarnation 1: building the tree ==");
    {
        let rvm = Rvm::initialize(
            Options::new(log.clone())
                .resolver(segments.clone().into_resolver())
                .create_if_empty(),
        )?;
        let region = rvm.map(&RegionDescriptor::new("volume-meta", 0, 64 * PAGE_SIZE))?;
        let mut txn = rvm.begin_transaction(TxnMode::Restore)?;
        let heap = RvmHeap::format(&region, &mut txn)?;
        txn.commit(CommitMode::Flush)?;
        let store = MetaStore { rvm, region, heap };

        // Root directory, committed durably.
        let mut txn = store.rvm.begin_transaction(TxnMode::Restore)?;
        let root = store.mkdir(&mut txn)?;
        txn.commit(CommitMode::Flush)?;
        root_offset = root;

        // `cp src/* docs/` — one no-flush transaction per child, the
        // paper's section 5.2 example. Each commit is cheap (no force).
        let mut txn = store.rvm.begin_transaction(TxnMode::Restore)?;
        let docs = store.mkdir(&mut txn)?;
        store.add_entry(&mut txn, root, "docs", docs)?;
        txn.commit(CommitMode::NoFlush)?;
        for name in ["intro.txt", "design.txt", "eval.txt", "refs.bib"] {
            let mut txn = store.rvm.begin_transaction(TxnMode::Restore)?;
            store.add_entry(&mut txn, docs, name, 0)?;
            txn.commit(CommitMode::NoFlush)?;
        }
        let q = store.rvm.query();
        println!(
            "{} no-flush commit(s) spooled ({} bytes), {} saved by inter-txn optimization",
            q.spooled_transactions, q.spool_bytes, q.stats.bytes_saved_inter
        );

        // Bounded persistence: one explicit flush makes it all durable.
        store.rvm.flush()?;
        println!("flushed: the burst is now permanent");
        store.rvm.terminate()?;
    }

    println!("== server incarnation 2: after restart ==");
    {
        let rvm = Rvm::initialize(
            Options::new(log)
                .resolver(segments.into_resolver())
                .create_if_empty(),
        )?;
        let region = rvm.map(&RegionDescriptor::new("volume-meta", 0, 64 * PAGE_SIZE))?;
        let heap = RvmHeap::open(&region)?;
        let store = MetaStore { rvm, region, heap };

        let root = store.list(root_offset)?;
        println!("/ -> {root:?}");
        let (_, docs) = root.iter().find(|(n, _)| n == "docs").expect("docs dir");
        let listing = store.list(*docs)?;
        println!(
            "/docs -> {:?}",
            listing.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        assert_eq!(listing.len(), 4);
    }
    println!("ok: directory tree survived the restart.");
    Ok(())
}
